"""The Section 8.1 survey of GHC's base/ghc-prim classes and functions."""

from .analysis import (
    ClassSurvey,
    ClassVerdict,
    FunctionSurvey,
    analyse_class,
    survey_classes,
    survey_functions,
)
from .classes_db import CLASSES, ClassEntry, MethodEntry, corpus_by_name, corpus_size
from .functions_db import (
    COMPOSE_NOT_YET_GENERALISED,
    LEVITY_GENERALISED_FUNCTIONS,
    FunctionEntry,
)

__all__ = [name for name in dir() if not name.startswith("_")]
