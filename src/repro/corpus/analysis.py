"""The Section 8.1 survey: which classes and functions can be levity-generalised.

Two analyses are provided:

* :func:`analyse_class` / :func:`survey_classes` — decide, for every class in
  the corpus, whether it can be levity-generalised.  The criterion is the
  conservative reading of Section 5.1 plus ticket #12708:

  1. the class variable must have kind ``Type`` (only then can it be
     re-kinded to ``TYPE r``);
  2. every method must either mention the variable only in *direct* positions
     (immediate argument or result of a function arrow — fine, because the
     per-instance implementations are monomorphic) or have a default
     implementation (in which case the generalised class simply leaves that
     method usable only at lifted instantiations);
  3. all superclasses must themselves be generalisable.

* :func:`survey_functions` — the six already-special-cased functions that
  levity polymorphism generalises "for free" (``error``,
  ``errorWithoutStackTrace``, ``undefined``/⊥, ``oneShot``, ``runRW#``,
  ``($)``), checked against the prelude's actual schemes.

The paper reports 34 / 76 classes; our conservative analysis, which does not
model every per-method idea from the ticket, finds a somewhat smaller set —
EXPERIMENTS.md records both numbers and the per-class differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .classes_db import CLASSES, ClassEntry, corpus_by_name
from .functions_db import LEVITY_GENERALISED_FUNCTIONS, FunctionEntry


@dataclass(frozen=True)
class ClassVerdict:
    """The analysis result for one class."""

    name: str
    package: str
    generalisable: bool
    reason: str

    def pretty(self) -> str:
        verdict = "generalisable" if self.generalisable else "not generalisable"
        return f"{self.name:<18} {verdict:<18} {self.reason}"


def analyse_class(entry: ClassEntry,
                  db: Optional[Dict[str, ClassEntry]] = None,
                  _seen: Optional[frozenset] = None) -> ClassVerdict:
    """Decide whether one class can be levity-generalised."""
    db = db or corpus_by_name()
    seen = _seen or frozenset()
    if entry.name in seen:
        return ClassVerdict(entry.name, entry.package, True,
                            "assumed generalisable (superclass cycle)")
    seen = seen | {entry.name}

    if entry.class_var_kind != "Type":
        return ClassVerdict(
            entry.name, entry.package, False,
            f"class variable has kind {entry.class_var_kind}, not Type")

    for method in entry.methods:
        if not method.var_only_in_direct_positions and not method.has_default:
            return ClassVerdict(
                entry.name, entry.package, False,
                f"method {method.name!r} places the class variable under "
                "another type constructor and has no default")

    for superclass in entry.superclasses:
        parent = db.get(superclass)
        if parent is None:
            continue
        verdict = analyse_class(parent, db, seen)
        if not verdict.generalisable:
            return ClassVerdict(
                entry.name, entry.package, False,
                f"superclass {superclass} is not generalisable "
                f"({verdict.reason})")

    return ClassVerdict(entry.name, entry.package, True,
                        "all methods are representation-agnostic")


@dataclass
class ClassSurvey:
    """The whole-corpus survey result."""

    verdicts: List[ClassVerdict]
    paper_total: int = 76
    paper_generalisable: int = 34

    @property
    def total(self) -> int:
        return len(self.verdicts)

    @property
    def generalisable(self) -> List[ClassVerdict]:
        return [v for v in self.verdicts if v.generalisable]

    @property
    def not_generalisable(self) -> List[ClassVerdict]:
        return [v for v in self.verdicts if not v.generalisable]

    @property
    def generalisable_count(self) -> int:
        return len(self.generalisable)

    @property
    def fraction(self) -> float:
        return self.generalisable_count / self.total if self.total else 0.0

    def summary_rows(self) -> List[Tuple[str, str, str]]:
        """Rows (metric, paper, measured) matching EXPERIMENTS.md's table."""
        return [
            ("classes surveyed", str(self.paper_total), str(self.total)),
            ("levity-generalisable", str(self.paper_generalisable),
             str(self.generalisable_count)),
            ("fraction", f"{self.paper_generalisable / self.paper_total:.2f}",
             f"{self.fraction:.2f}"),
        ]

    def pretty(self) -> str:
        lines = [f"classes surveyed: {self.total} (paper: {self.paper_total})",
                 f"levity-generalisable: {self.generalisable_count} "
                 f"(paper: {self.paper_generalisable})", ""]
        lines.extend(v.pretty() for v in sorted(self.verdicts,
                                                key=lambda v: v.name))
        return "\n".join(lines)


def survey_classes() -> ClassSurvey:
    """Run the analysis over the whole corpus."""
    db = corpus_by_name()
    return ClassSurvey([analyse_class(entry, db) for entry in CLASSES])


@dataclass
class FunctionSurvey:
    """The six levity-generalised functions, checked against the prelude."""

    entries: List[FunctionEntry]
    verified: Dict[str, bool]

    @property
    def count(self) -> int:
        return len(self.entries)

    @property
    def all_verified(self) -> bool:
        return all(self.verified.values())


def survey_functions() -> FunctionSurvey:
    """Check that every Section 8.1 function really has a levity-polymorphic scheme."""
    from ..surface.prelude import prelude_schemes

    schemes = prelude_schemes()
    verified: Dict[str, bool] = {}
    for entry in LEVITY_GENERALISED_FUNCTIONS:
        scheme = schemes.get(entry.prelude_name)
        verified[entry.name] = (scheme is not None
                                and scheme.is_levity_polymorphic())
    return FunctionSurvey(list(LEVITY_GENERALISED_FUNCTIONS), verified)
