"""The six library functions levity-generalised in GHC 8 (Section 8.1).

"We have generalized the type of six library functions where previous
versions of GHC have used special cases in order to deal with the
possibility of unlifted types.  These are ``error``,
``errorWithoutStackTrace``, ``⊥`` [undefined], ``oneShot``, ``runRW#``, and
``($)``."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class FunctionEntry:
    """One of the six generalised functions."""

    name: str                    # name as the paper writes it
    prelude_name: str            # name in repro.surface.prelude
    previously_special_cased: bool
    generalised_type: str        # the new, levity-polymorphic type
    legacy_type: str             # the old type / special case description


LEVITY_GENERALISED_FUNCTIONS: Tuple[FunctionEntry, ...] = (
    FunctionEntry(
        "error", "error", True,
        "forall (r :: Rep) (a :: TYPE r). String -> a",
        "forall (a :: OpenKind). String -> a  (magical OpenKind special case)"),
    FunctionEntry(
        "errorWithoutStackTrace", "errorWithoutStackTrace", True,
        "forall (r :: Rep) (a :: TYPE r). String -> a",
        "forall (a :: OpenKind). String -> a"),
    FunctionEntry(
        "undefined (⊥)", "undefined", True,
        "forall (r :: Rep) (a :: TYPE r). a",
        "forall (a :: OpenKind). a"),
    FunctionEntry(
        "oneShot", "oneShot", True,
        "forall (q r :: Rep) (a :: TYPE q) (b :: TYPE r). (a -> b) -> a -> b",
        "special-cased in the compiler (a magic wired-in identity)"),
    FunctionEntry(
        "runRW#", "runRW#", True,
        "forall (r :: Rep) (o :: TYPE r). (State# RealWorld -> o) -> o",
        "special-cased in the code generator"),
    FunctionEntry(
        "($)", "$", True,
        "forall (r :: Rep) (a :: Type) (b :: TYPE r). (a -> b) -> a -> b",
        "forall a b. (a -> b) -> a -> b plus an ad-hoc special case in the "
        "type checker for unlifted results"),
)

#: ``(.)`` could be generalised the same way but the paper reports GHC chose
#: not to (yet); we model the generalised type in the prelude regardless so
#: the E7 benchmark can exercise it.
COMPOSE_NOT_YET_GENERALISED = FunctionEntry(
    "(.)", ".", False,
    "forall (r :: Rep) a b (c :: TYPE r). (b -> c) -> (a -> b) -> a -> c",
    "forall a b c. (b -> c) -> (a -> b) -> a -> c")
