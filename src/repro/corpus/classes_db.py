"""A hand-encoded corpus of the type classes in GHC 8.0's base and ghc-prim.

Section 8.1 of the paper reports that 34 of the 76 classes in ``base`` and
``ghc-prim`` can be levity-generalised (the full list lives in GHC ticket
#12708).  We cannot read GHC's source here, so this module reconstructs the
class inventory from the documented API of base-4.9 / ghc-prim-0.5 (the
GHC 8.0 library versions).  Each class records the information the
generalisability analysis needs:

* the kind of its class variable (only ``Type``-kinded classes can have
  their variable re-kinded to ``TYPE r``);
* for every method, whether the class variable appears **only** in "direct"
  positions (immediate argument or result of function arrows).  A method
  such as ``showList :: [a] -> ShowS`` places the variable under another
  type constructor (``[]``), whose argument must be lifted, which blocks
  generalisation;
* its superclasses (a class cannot be generalised unless its superclasses
  are).

The encoding is an approximation of the real signatures (documented in
DESIGN.md as a substitution): the aggregate — roughly half of the corpus is
generalisable — is the claim being reproduced, and per-class decisions for
the well-known classes (Eq, Ord, Num, Show, Monoid, Functor, Monad, …)
match the GHC ticket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class MethodEntry:
    """One method: its name and how it mentions the class variable."""

    name: str
    #: True when every occurrence of the class variable is a direct argument
    #: or result of a function arrow (never under another type constructor).
    var_only_in_direct_positions: bool = True
    #: True when the method has a default implementation in the class.  A
    #: non-direct method with a default does not block generalisation: the
    #: generalised class simply leaves that method at its (lifted-only)
    #: default, which is one of the "ideas for generalizing even more
    #: classes" in GHC ticket #12708.
    has_default: bool = False


@dataclass(frozen=True)
class ClassEntry:
    """One class of the base/ghc-prim corpus."""

    name: str
    package: str                       # "base" or "ghc-prim"
    class_var_kind: str                # "Type", "Type -> Type", ...
    methods: Tuple[MethodEntry, ...]
    superclasses: Tuple[str, ...] = ()


def _m(name: str, direct: bool = True, default: bool = False) -> MethodEntry:
    return MethodEntry(name, direct, default)


#: The corpus.  Order follows the rough layout of base's haddocks.
CLASSES: Tuple[ClassEntry, ...] = (
    # -- Prelude / numeric hierarchy (Type-kinded) ---------------------------
    ClassEntry("Eq", "ghc-prim", "Type", (_m("=="), _m("/="))),
    ClassEntry("Ord", "ghc-prim", "Type",
               (_m("compare"), _m("<"), _m("<="), _m(">"), _m(">="),
                _m("max"), _m("min")), ("Eq",)),
    ClassEntry("Num", "base", "Type",
               (_m("+"), _m("-"), _m("*"), _m("negate"), _m("abs"),
                _m("signum"), _m("fromInteger"))),
    ClassEntry("Real", "base", "Type", (_m("toRational"),), ("Num", "Ord")),
    ClassEntry("Integral", "base", "Type",
               (_m("quot"), _m("rem"), _m("div"), _m("mod"),
                _m("quotRem", False),   # quotRem :: a -> a -> (a, a)
                _m("divMod", False, True),
                _m("toInteger")), ("Real", "Enum")),
    ClassEntry("Fractional", "base", "Type",
               (_m("/"), _m("recip"), _m("fromRational")), ("Num",)),
    ClassEntry("Floating", "base", "Type",
               (_m("pi"), _m("exp"), _m("log"), _m("sqrt"), _m("**"),
                _m("logBase"), _m("sin"), _m("cos"), _m("tan"),
                _m("asin"), _m("acos"), _m("atan"), _m("sinh"), _m("cosh"),
                _m("tanh"), _m("asinh"), _m("acosh"), _m("atanh")),
               ("Fractional",)),
    ClassEntry("RealFrac", "base", "Type",
               (_m("properFraction", False),  # returns (b, a)
                _m("truncate"), _m("round"), _m("ceiling"), _m("floor")),
               ("Real", "Fractional")),
    ClassEntry("RealFloat", "base", "Type",
               (_m("floatRadix"), _m("floatDigits"),
                _m("floatRange"),              # a -> (Int, Int): tuple of Ints, not of a
                _m("decodeFloat"),             # a -> (Integer, Int): likewise direct
                _m("encodeFloat"), _m("exponent"), _m("significand"),
                _m("scaleFloat"), _m("isNaN"), _m("isInfinite"),
                _m("isDenormalized"), _m("isNegativeZero"), _m("isIEEE"),
                _m("atan2")), ("RealFrac", "Floating")),
    ClassEntry("Enum", "base", "Type",
               (_m("succ"), _m("pred"), _m("toEnum"), _m("fromEnum"),
                _m("enumFrom", False, True),          # a -> [a]
                _m("enumFromThen", False, True),
                _m("enumFromTo", False, True),
                _m("enumFromThenTo", False, True))),
    ClassEntry("Bounded", "base", "Type", (_m("minBound"), _m("maxBound"))),

    # -- Show / Read ----------------------------------------------------------
    ClassEntry("Show", "base", "Type",
               (_m("showsPrec"), _m("show"),
                _m("showList", False, True))),        # [a] -> ShowS
    ClassEntry("Read", "base", "Type",
               (_m("readsPrec", False),         # Int -> ReadS a = String -> [(a, String)]
                _m("readList", False),
                _m("readPrec", False),
                _m("readListPrec", False))),

    # -- Semigroup / Monoid ----------------------------------------------------
    ClassEntry("Semigroup", "base", "Type",
               (_m("<>"),
                _m("sconcat", False, True),           # NonEmpty a -> a
                _m("stimes", True, True))),
    ClassEntry("Monoid", "base", "Type",
               (_m("mempty"), _m("mappend"),
                _m("mconcat", False, True)),          # [a] -> a
               ("Semigroup",)),

    # -- Functor hierarchy (higher-kinded: not Type) ---------------------------
    ClassEntry("Functor", "base", "Type -> Type",
               (_m("fmap"), _m("<$"))),
    ClassEntry("Applicative", "base", "Type -> Type",
               (_m("pure"), _m("<*>"), _m("*>"), _m("<*"), _m("liftA2")),
               ("Functor",)),
    ClassEntry("Monad", "base", "Type -> Type",
               (_m(">>="), _m(">>"), _m("return"), _m("fail")),
               ("Applicative",)),
    ClassEntry("MonadFail", "base", "Type -> Type", (_m("fail"),), ("Monad",)),
    ClassEntry("MonadFix", "base", "Type -> Type", (_m("mfix"),), ("Monad",)),
    ClassEntry("MonadIO", "base", "Type -> Type", (_m("liftIO"),), ("Monad",)),
    ClassEntry("MonadPlus", "base", "Type -> Type",
               (_m("mzero"), _m("mplus")), ("Alternative", "Monad")),
    ClassEntry("MonadZip", "base", "Type -> Type",
               (_m("mzip"), _m("mzipWith"), _m("munzip")), ("Monad",)),
    ClassEntry("Alternative", "base", "Type -> Type",
               (_m("empty"), _m("<|>"), _m("some"), _m("many")),
               ("Applicative",)),
    ClassEntry("Foldable", "base", "Type -> Type",
               (_m("foldMap"), _m("foldr"), _m("foldl"), _m("toList"),
                _m("null"), _m("length"), _m("elem"), _m("maximum"),
                _m("minimum"), _m("sum"), _m("product"))),
    ClassEntry("Traversable", "base", "Type -> Type",
               (_m("traverse"), _m("sequenceA"), _m("mapM"), _m("sequence")),
               ("Functor", "Foldable")),
    ClassEntry("Bifunctor", "base", "Type -> Type -> Type",
               (_m("bimap"), _m("first"), _m("second"))),
    ClassEntry("Arrow", "base", "Type -> Type -> Type",
               (_m("arr"), _m("first"), _m("second"), _m("***"), _m("&&&")),
               ("Category",)),
    ClassEntry("ArrowChoice", "base", "Type -> Type -> Type",
               (_m("left"), _m("right"), _m("+++"), _m("|||")), ("Arrow",)),
    ClassEntry("ArrowApply", "base", "Type -> Type -> Type",
               (_m("app"),), ("Arrow",)),
    ClassEntry("ArrowZero", "base", "Type -> Type -> Type",
               (_m("zeroArrow"),), ("Arrow",)),
    ClassEntry("ArrowPlus", "base", "Type -> Type -> Type",
               (_m("<+>"),), ("ArrowZero",)),
    ClassEntry("ArrowLoop", "base", "Type -> Type -> Type",
               (_m("loop"),), ("Arrow",)),
    ClassEntry("Category", "base", "k -> k -> Type",
               (_m("id"), _m("."))),

    # -- Data.Functor.Classes (lifted equality/ordering/printing) --------------
    ClassEntry("Eq1", "base", "Type -> Type", (_m("liftEq"),)),
    ClassEntry("Ord1", "base", "Type -> Type", (_m("liftCompare"),), ("Eq1",)),
    ClassEntry("Show1", "base", "Type -> Type",
               (_m("liftShowsPrec"), _m("liftShowList"))),
    ClassEntry("Read1", "base", "Type -> Type",
               (_m("liftReadsPrec"), _m("liftReadList"))),
    ClassEntry("Eq2", "base", "Type -> Type -> Type", (_m("liftEq2"),)),
    ClassEntry("Ord2", "base", "Type -> Type -> Type",
               (_m("liftCompare2"),), ("Eq2",)),
    ClassEntry("Show2", "base", "Type -> Type -> Type",
               (_m("liftShowsPrec2"), _m("liftShowList2"))),
    ClassEntry("Read2", "base", "Type -> Type -> Type",
               (_m("liftReadsPrec2"), _m("liftReadList2"))),

    # -- Bits / FFI / storage ----------------------------------------------------
    ClassEntry("Bits", "base", "Type",
               (_m(".&."), _m(".|."), _m("xor"), _m("complement"),
                _m("shift"), _m("rotate"), _m("zeroBits"), _m("bit"),
                _m("setBit"), _m("clearBit"), _m("complementBit"),
                _m("testBit"), _m("bitSizeMaybe"), _m("bitSize"),
                _m("isSigned"), _m("shiftL"), _m("shiftR"), _m("rotateL"),
                _m("rotateR"), _m("popCount")), ("Eq",)),
    ClassEntry("FiniteBits", "base", "Type",
               (_m("finiteBitSize"), _m("countLeadingZeros"),
                _m("countTrailingZeros")), ("Bits",)),
    ClassEntry("Storable", "base", "Type",
               (_m("sizeOf"), _m("alignment"), _m("peekElemOff"),
                _m("pokeElemOff"), _m("peekByteOff"), _m("pokeByteOff"),
                _m("peek"), _m("poke"))),

    # -- Exceptions / strings / overloading --------------------------------------
    ClassEntry("Exception", "base", "Type",
               (_m("toException"), _m("fromException"),
                _m("displayException")), ("Show",)),
    ClassEntry("IsString", "base", "Type", (_m("fromString"),)),
    ClassEntry("IsList", "base", "Type",
               (_m("fromList", False),          # [Item l] -> l : Item under []
                _m("fromListN", False),
                _m("toList", False))),
    ClassEntry("Ix", "base", "Type",
               (_m("range", False),             # (a, a) -> [a]
                _m("index", False),
                _m("inRange", False),
                _m("rangeSize", False)), ("Ord",)),

    # -- Generics / reflection / data ----------------------------------------------
    ClassEntry("Data", "base", "Type",
               (_m("gfoldl", False), _m("gunfold", False), _m("toConstr"),
                _m("dataTypeOf"), _m("dataCast1", False),
                _m("dataCast2", False), _m("gmapT", False),
                _m("gmapQ", False), _m("gmapM", False)), ("Typeable",)),
    ClassEntry("Typeable", "base", "k", (_m("typeRep#"),)),
    ClassEntry("Generic", "base", "Type",
               (_m("from", False), _m("to", False))),   # Rep a x — under a constructor
    ClassEntry("Generic1", "base", "Type -> Type",
               (_m("from1"), _m("to1"))),
    ClassEntry("Datatype", "base", "k",
               (_m("datatypeName"), _m("moduleName"), _m("packageName"),
                _m("isNewtype"))),
    ClassEntry("Constructor", "base", "k",
               (_m("conName"), _m("conFixity"), _m("conIsRecord"))),
    ClassEntry("Selector", "base", "k", (_m("selName"),)),

    # -- GHC.TypeLits / type-level ---------------------------------------------------
    ClassEntry("KnownNat", "base", "Nat", (_m("natSing"),)),
    ClassEntry("KnownSymbol", "base", "Symbol", (_m("symbolSing"),)),
    ClassEntry("TestEquality", "base", "k -> Type", (_m("testEquality"),)),
    ClassEntry("TestCoercion", "base", "k -> Type", (_m("testCoercion"),)),

    # -- ghc-prim magic classes --------------------------------------------------------
    ClassEntry("Coercible", "ghc-prim", "k", (_m("coerce"),)),
    ClassEntry("IP", "ghc-prim", "Symbol", (_m("ip"),)),

    # -- printf / char -------------------------------------------------------------------
    ClassEntry("PrintfArg", "base", "Type",
               (_m("formatArg"), _m("parseFormat"))),
    ClassEntry("IsChar", "base", "Type", (_m("toChar"), _m("fromChar"))),
    ClassEntry("PrintfType", "base", "Type", (_m("spr", False),)),
    ClassEntry("HPrintfType", "base", "Type", (_m("hspr", False),)),

    # -- concurrency / IO ------------------------------------------------------------------
    ClassEntry("HasResolution", "base", "k", (_m("resolution"),)),
    ClassEntry("GHCiSandboxIO", "base", "Type -> Type",
               (_m("ghciStepIO"),), ("Monad",)),

    # -- numeric conversion helpers (Type-kinded, direct) -------------------------------------
    ClassEntry("BufferedIO", "base", "Type",
               (_m("newBuffer"), _m("fillReadBuffer"), _m("flushWriteBuffer"),
                _m("emptyWriteBuffer"), _m("flushWriteBuffer0"))),
    ClassEntry("RawIO", "base", "Type",
               (_m("read"), _m("readNonBlocking"), _m("write"),
                _m("writeNonBlocking"))),
    ClassEntry("IODevice", "base", "Type",
               (_m("ready"), _m("close"), _m("isTerminal"), _m("isSeekable"),
                _m("seek"), _m("tell"), _m("getSize"), _m("setSize"),
                _m("setEcho"), _m("getEcho"), _m("setRaw"), _m("devType"),
                _m("dup"), _m("dup2"))),
    ClassEntry("Bifoldable", "base", "Type -> Type -> Type",
               (_m("bifold"), _m("bifoldMap"), _m("bifoldr"), _m("bifoldl"))),
    ClassEntry("Bitraversable", "base", "Type -> Type -> Type",
               (_m("bitraverse"),), ("Bifunctor", "Bifoldable")),
    ClassEntry("Contravariant", "base", "Type -> Type",
               (_m("contramap"), _m(">$"))),
    ClassEntry("HasField", "base", "k", (_m("getField"),)),
    ClassEntry("IsLabel", "base", "k", (_m("fromLabel"),)),
)


def corpus_by_name() -> Dict[str, ClassEntry]:
    return {entry.name: entry for entry in CLASSES}


def corpus_size() -> int:
    return len(CLASSES)
