"""Random generation of well-typed L programs.

The paper proves its theorems (Preservation, Progress, Compilation,
Simulation) on paper; we *test* them mechanically by generating large
numbers of well-typed L terms and checking each theorem's statement on every
term and on every step of its evaluation.

The generator is type-directed: ``generate_expr(rng, ctx, type_, depth)``
produces an expression of exactly ``type_`` in context ``ctx``.  It covers
every syntactic form of Figure 2:

* literals, ``I#[·]`` boxes and ``case`` unboxings;
* λ-abstractions and both lazy and strict applications;
* type abstraction/application at the kinds ``TYPE P`` and ``TYPE I``;
* representation abstraction/application (through the levity-polymorphic
  ``error`` and ``myError``-style wrappers — the only way a *compilable*
  program can use them, per Section 5.1);
* occasional uses of ``error`` so the ⊥ outcome is exercised.

Generated terms are guaranteed well-typed by construction; the test-suite
additionally re-checks them with :func:`repro.lang_l.typing.type_of`, which
doubles as a test of the type checker itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..lang_l.syntax import (
    App,
    Case,
    Con,
    Context,
    ERROR,
    INT,
    INT_HASH,
    KIND_INT,
    KIND_PTR,
    I,
    Lam,
    LExpr,
    LKind,
    LType,
    Lit,
    P,
    RepApp,
    RepVarL,
    TArrow,
    TForallRep,
    TForallType,
    TVar,
    TyApp,
    TyLam,
    Var,
    boxed_int,
)

#: The ground types the generator targets directly.
GROUND_TYPES: Tuple[LType, ...] = (INT, INT_HASH)


@dataclass
class GeneratorConfig:
    """Tuning knobs for the random program generator."""

    max_depth: int = 5
    literal_range: Tuple[int, int] = (-100, 100)
    error_probability: float = 0.05
    higher_order_probability: float = 0.4
    polymorphism_probability: float = 0.3


def random_ground_type(rng: random.Random) -> LType:
    """Pick ``Int`` or ``Int#`` uniformly."""
    return rng.choice(GROUND_TYPES)


def random_type(rng: random.Random, depth: int = 2) -> LType:
    """A random *concrete-kinded* type: ground types and arrows over them.

    Arrows always have kind ``TYPE P`` so any generated type can legally be
    a binder type (Section 5.1).
    """
    if depth <= 0 or rng.random() < 0.6:
        return random_ground_type(rng)
    return TArrow(random_type(rng, depth - 1), random_type(rng, depth - 1))


def _variables_of_type(ctx: Context, type_: LType) -> List[str]:
    return [name for name, bound in ctx.term_vars if bound == type_]


def generate_expr(rng: random.Random, ctx: Context, type_: LType,
                  depth: int,
                  config: Optional[GeneratorConfig] = None) -> LExpr:
    """Generate a well-typed expression of type ``type_`` in ``ctx``."""
    config = config or GeneratorConfig()

    # Occasionally produce error instantiated at the target type — this is
    # always possible and exercises representation application.
    if rng.random() < config.error_probability:
        return _error_at(rng, ctx, type_, depth, config)

    variables = _variables_of_type(ctx, type_)
    if variables and (depth <= 0 or rng.random() < 0.3):
        return Var(rng.choice(variables))

    if depth <= 0:
        return _base_case(rng, ctx, type_, config)

    choices = ["base", "application"]
    if isinstance(type_, TArrow):
        choices.extend(["lambda", "lambda", "lambda"])
    if type_ == INT:
        choices.append("box")
    if type_ == INT_HASH:
        choices.append("unbox")
    if rng.random() < config.polymorphism_probability:
        choices.append("polymorphic_id")

    choice = rng.choice(choices)
    if choice == "lambda" and isinstance(type_, TArrow):
        binder = _fresh_var_name(ctx)
        body_ctx = ctx.bind_term(binder, type_.argument)
        body = generate_expr(rng, body_ctx, type_.result, depth - 1, config)
        return Lam(binder, type_.argument, body)
    if choice == "box" and type_ == INT:
        return Con(generate_expr(rng, ctx, INT_HASH, depth - 1, config))
    if choice == "unbox" and type_ == INT_HASH:
        scrutinee = generate_expr(rng, ctx, INT, depth - 1, config)
        binder = _fresh_var_name(ctx)
        body_ctx = ctx.bind_term(binder, INT_HASH)
        body = generate_expr(rng, body_ctx, INT_HASH, depth - 2, config) \
            if depth > 2 and rng.random() < 0.3 else Var(binder)
        return Case(scrutinee, binder, body)
    if choice == "application":
        argument_type = random_type(rng, 1) \
            if rng.random() < config.higher_order_probability \
            else random_ground_type(rng)
        function = generate_expr(rng, ctx, TArrow(argument_type, type_),
                                 depth - 1, config)
        argument = generate_expr(rng, ctx, argument_type, depth - 1, config)
        return App(function, argument)
    if choice == "polymorphic_id":
        return _via_polymorphic_identity(rng, ctx, type_, depth, config)
    return _base_case(rng, ctx, type_, config)


def _base_case(rng: random.Random, ctx: Context, type_: LType,
               config: GeneratorConfig) -> LExpr:
    low, high = config.literal_range
    if type_ == INT_HASH:
        return Lit(rng.randint(low, high))
    if type_ == INT:
        return boxed_int(rng.randint(low, high))
    if isinstance(type_, TArrow):
        binder = _fresh_var_name(ctx)
        body_ctx = ctx.bind_term(binder, type_.argument)
        body = _base_case(rng, body_ctx, type_.result, config)
        # Prefer using the binder when the types line up, so generated
        # functions are not all constant functions.
        if type_.argument == type_.result and rng.random() < 0.5:
            body = Var(binder)
        return Lam(binder, type_.argument, body)
    raise ValueError(f"cannot generate a base case of type {type_.pretty()}")


def _error_at(rng: random.Random, ctx: Context, type_: LType, depth: int,
              config: GeneratorConfig) -> LExpr:
    """``error`` instantiated at the target type (representation application)."""
    rep = P if _kind_of_simple(type_) == KIND_PTR else I
    message = generate_expr(rng, ctx, INT, max(depth - 1, 0), config) \
        if depth > 0 else boxed_int(0)
    return App(TyApp(RepApp(ERROR, rep), type_), message)


def _via_polymorphic_identity(rng: random.Random, ctx: Context, type_: LType,
                              depth: int,
                              config: GeneratorConfig) -> LExpr:
    """Wrap the target in an instantiation of ``Λa:κ. λx:a. x``.

    For pointer-kinded targets this uses type abstraction at ``TYPE P``; for
    ``Int#`` it uses ``TYPE I`` — both are legal because the instantiation is
    at a *concrete* kind (the Instantiation Principle as refined by kinds).
    """
    kind = _kind_of_simple(type_)
    identity = TyLam("gen_a", kind, Lam("gen_x", TVar("gen_a"), Var("gen_x")))
    inner = generate_expr(rng, ctx, type_, depth - 1, config)
    return App(TyApp(identity, type_), inner)


def _kind_of_simple(type_: LType) -> LKind:
    """The kind of a generator-produced type (no free variables, so easy)."""
    return KIND_INT if type_ == INT_HASH else KIND_PTR


def _fresh_var_name(ctx: Context) -> str:
    existing = {name for name, _ in ctx.term_vars}
    index = len(existing)
    name = f"v{index}"
    while name in existing:
        index += 1
        name = f"v{index}"
    return name


def generate_program(seed: int, depth: int = 4,
                     target: Optional[LType] = None,
                     config: Optional[GeneratorConfig] = None) -> LExpr:
    """Generate a closed well-typed program from a seed (deterministic)."""
    rng = random.Random(seed)
    target = target or random_ground_type(rng)
    return generate_expr(rng, Context(), target, depth, config)


def generate_corpus(count: int, seed: int = 0, depth: int = 4,
                    config: Optional[GeneratorConfig] = None
                    ) -> List[Tuple[int, LExpr]]:
    """Generate ``count`` closed programs with seeds ``seed .. seed+count-1``."""
    return [(s, generate_program(s, depth=depth, config=config))
            for s in range(seed, seed + count)]
