"""Executable metatheory for L, M and the compilation between them (Section 6)."""

from .generators import (
    GeneratorConfig,
    generate_corpus,
    generate_expr,
    generate_program,
    random_ground_type,
    random_type,
)
from .theorems import (
    TheoremReport,
    TraceReport,
    check_all,
    check_compilation,
    check_preservation,
    check_progress,
    check_simulation,
)

__all__ = [name for name in dir() if not name.startswith("_")]
