"""Executable statements of the paper's theorems (Section 6).

Each function checks one theorem on one program (or one reduction step) and
returns a :class:`TheoremReport`; :func:`check_all` runs every theorem over a
whole evaluation trace.  The metatheory tests and the E3/E5 benchmarks drive
these checks over thousands of randomly generated programs.

* **Preservation** — if ``Γ ⊢ e : τ`` and ``Γ ⊢ e −→ e'`` then ``Γ ⊢ e' : τ``.
* **Progress** — if ``Γ`` has no term bindings and ``Γ ⊢ e : τ`` then either
  ``e`` steps (possibly to ⊥) or ``e`` is a value.
* **Compilation** — if ``Γ ⊢ e : τ`` and ``Γ ∝ V`` then ``⟦e⟧ᵥΓ`` is defined.
* **Simulation** — if ``Γ ⊢ e : τ`` and ``Γ ⊢ e −→ e'`` then the compilations
  of ``e`` and ``e'`` are joinable M expressions.

The paper leaves one lemma (substitution/compilation for lazy β-reduction)
as an open problem; the Simulation check below *tests* exactly the cases
that lemma covers, so running it over large random corpora is evidence for
the assumption the paper could not prove.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.errors import CompilationError, EvaluationError, TypeCheckError
from ..compile.compiler import VarEnv, compile_expr
from ..lang_l.semantics import Bottom, Step, Stuck, step
from ..lang_l.syntax import Context, LExpr, LType
from ..lang_l.typing import type_of
from ..lang_m.joinability import JoinReport, joinable


@dataclass(frozen=True)
class TheoremReport:
    """The outcome of checking one theorem on one subject."""

    theorem: str
    holds: bool
    detail: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


@dataclass
class TraceReport:
    """Aggregate of theorem checks over a full evaluation trace."""

    program_steps: int = 0
    reports: List[TheoremReport] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        return all(r.holds for r in self.reports)

    def failures(self) -> List[TheoremReport]:
        return [r for r in self.reports if not r.holds]


# ---------------------------------------------------------------------------
# Individual theorems
# ---------------------------------------------------------------------------


def check_preservation(expr: LExpr, ctx: Context = Context()) -> TheoremReport:
    """Preservation for a single step from ``expr``."""
    try:
        before = type_of(ctx, expr)
    except TypeCheckError as exc:
        return TheoremReport("preservation", False,
                             f"subject does not typecheck: {exc}")
    result = step(ctx, expr)
    if result is None or isinstance(result, Bottom):
        return TheoremReport("preservation", True,
                             "no step taken (value or ⊥); vacuously true")
    if isinstance(result, Stuck):
        return TheoremReport("preservation", False,
                             f"well-typed term got stuck: {result.reason}")
    try:
        after = type_of(ctx, result.expr)
    except TypeCheckError as exc:
        return TheoremReport("preservation", False,
                             f"reduct does not typecheck: {exc}")
    if after == before:
        return TheoremReport("preservation", True)
    return TheoremReport(
        "preservation", False,
        f"type changed: {before.pretty()} became {after.pretty()}")


def check_progress(expr: LExpr, ctx: Context = Context()) -> TheoremReport:
    """Progress: a closed well-typed term is a value or can step."""
    if ctx.has_term_bindings():
        return TheoremReport("progress", True,
                             "context has term bindings; theorem vacuous")
    try:
        type_of(ctx, expr)
    except TypeCheckError as exc:
        return TheoremReport("progress", False,
                             f"subject does not typecheck: {exc}")
    if expr.is_value():
        return TheoremReport("progress", True, "expression is a value")
    result = step(ctx, expr)
    if result is None:
        return TheoremReport("progress", False,
                             "not a value, yet no step applies")
    if isinstance(result, Stuck):
        return TheoremReport("progress", False,
                             f"well-typed closed term stuck: {result.reason}")
    return TheoremReport("progress", True)


def check_compilation(expr: LExpr, ctx: Context = Context(),
                      env: VarEnv = VarEnv()) -> TheoremReport:
    """Compilation: a well-typed term (with Γ ∝ V) compiles to M code."""
    try:
        type_of(ctx, expr)
    except TypeCheckError as exc:
        return TheoremReport("compilation", False,
                             f"subject does not typecheck: {exc}")
    if not env.compatible_with(ctx):
        return TheoremReport("compilation", True,
                             "Γ ∝ V does not hold; theorem vacuous")
    try:
        compile_expr(expr, ctx, env)
    except CompilationError as exc:
        return TheoremReport("compilation", False,
                             f"compilation failed on a well-typed term: {exc}")
    return TheoremReport("compilation", True)


def check_simulation(expr: LExpr, ctx: Context = Context(),
                     probe_depth: int = 2,
                     max_steps: int = 200_000) -> TheoremReport:
    """Simulation for one step: ⟦e⟧ and ⟦e'⟧ are joinable."""
    if ctx.has_term_bindings():
        return TheoremReport("simulation", True,
                             "context has term bindings; theorem vacuous")
    try:
        type_of(ctx, expr)
    except TypeCheckError as exc:
        return TheoremReport("simulation", False,
                             f"subject does not typecheck: {exc}")
    result = step(ctx, expr)
    if result is None or isinstance(result, Bottom):
        return TheoremReport("simulation", True,
                             "no step taken; vacuously true")
    if isinstance(result, Stuck):
        return TheoremReport("simulation", False,
                             f"well-typed term got stuck: {result.reason}")
    try:
        compiled_before = compile_expr(expr, ctx).code
        compiled_after = compile_expr(result.expr, ctx).code
    except CompilationError as exc:
        return TheoremReport("simulation", False,
                             f"compilation failed during simulation: {exc}")
    report: JoinReport = joinable(compiled_before, compiled_after,
                                  probe_depth=probe_depth,
                                  max_steps=max_steps)
    if report.joinable:
        return TheoremReport("simulation", True, report.reason)
    return TheoremReport(
        "simulation", False,
        f"compiled redex and reduct are not joinable: {report.reason}")


# ---------------------------------------------------------------------------
# Whole-trace driver
# ---------------------------------------------------------------------------


def check_all(expr: LExpr, ctx: Context = Context(), max_steps: int = 200,
              check_simulation_steps: bool = True,
              probe_depth: int = 2) -> TraceReport:
    """Check every theorem at every step of evaluating ``expr``.

    The trace is cut off after ``max_steps`` reduction steps (generated
    programs normally terminate in far fewer).
    """
    trace_report = TraceReport()
    current = expr
    for _ in range(max_steps):
        trace_report.reports.append(check_progress(current, ctx))
        trace_report.reports.append(check_preservation(current, ctx))
        trace_report.reports.append(check_compilation(current, ctx))
        if check_simulation_steps:
            trace_report.reports.append(
                check_simulation(current, ctx, probe_depth=probe_depth))
        result = step(ctx, current)
        if result is None or isinstance(result, Bottom):
            break
        if isinstance(result, Stuck):
            trace_report.reports.append(
                TheoremReport("progress", False,
                              f"trace got stuck: {result.reason}"))
            break
        current = result.expr
        trace_report.program_steps += 1
    return trace_report
