"""Concrete-syntax frontend for the surface language.

The frontend turns textual ``.lev`` programs — a small Haskell-like
language covering the paper's vocabulary (``forall (r :: Rep)
(a :: TYPE r).`` telescopes, ``Type``/``TYPE r`` kinds, ``Int#``/
``Double#``, unboxed tuples ``(# a, b #)``, lambdas, application,
``let``/``if``/``case``, type signatures) — into the existing
:mod:`repro.surface` AST, with source spans recorded for structured
diagnostics.

* :mod:`repro.frontend.lexer` — hand-written lexer with line/column spans;
* :mod:`repro.frontend.parser` — recursive-descent parser and elaborator.

Public entry points:

* :func:`parse_module` — a whole ``.lev`` program;
* :func:`parse_expr` — a single expression;
* :func:`parse_type` / :func:`parse_scheme` — a type or type scheme, the
  inverse of :mod:`repro.pretty` (see the round-trip property tests).
"""

from .lexer import Lexer, Span, Token, tokenize
from .parser import (
    ParsedModule,
    Parser,
    parse_expr,
    parse_module,
    parse_scheme,
    parse_type,
)

__all__ = [
    "Lexer",
    "Span",
    "Token",
    "tokenize",
    "ParsedModule",
    "Parser",
    "parse_expr",
    "parse_module",
    "parse_scheme",
    "parse_type",
]
