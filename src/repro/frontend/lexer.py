"""A hand-written lexer for the surface language's concrete syntax.

Tokens carry full source spans (1-based line/column of both ends) so the
parser and the driver can attach precise locations to diagnostics.  The
token language is the small Haskell subset the paper's examples use:

* identifiers with optional trailing ``#`` marks (``sumTo#``, ``Int#``,
  ``quotInt#``) and primes;
* symbolic operators (``+#``, ``==##``, ``$``, ``.``, ``->``, ``::``, …);
* unboxed literals ``3#`` and ``2.5##`` alongside boxed ``3``;
* string and character literals with the usual escapes;
* unboxed tuple brackets ``(#`` / ``#)``, parens, brackets, braces;
* ``--`` line comments and nested ``{- … -}`` block comments.

There is no layout algorithm: a token in column 1 always begins a new
top-level declaration (the parser enforces this), and ``case``/``of``
alternatives use explicit ``{ … ; … }`` braces — the same concrete form
:meth:`repro.surface.ast.ECase.pretty` prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.errors import ParseError

#: Characters that may make up a symbolic operator.
SYMBOL_CHARS = set("!#$%&*+./<=>?^|-~:@")

#: Keywords of the surface language.
KEYWORDS = frozenset({
    "forall", "let", "in", "if", "then", "else", "case", "of",
    "where", "data", "class", "instance", "module", "import",
})

#: Symbolic tokens with reserved meaning (never infix operators).
RESERVED_SYMBOLS = frozenset({"::", "->", "=>", "=", "|", "@"})


@dataclass(frozen=True)
class Span:
    """A half-open source region, 1-based lines and columns."""

    line: int
    column: int
    end_line: int
    end_column: int

    def merge(self, other: "Span") -> "Span":
        return Span(self.line, self.column, other.end_line, other.end_column)

    def pretty(self) -> str:
        return f"{self.line}:{self.column}"

    def __repr__(self) -> str:
        return f"Span({self.line}:{self.column}-{self.end_line}:{self.end_column})"


@dataclass(frozen=True)
class Token:
    """One lexeme with its kind, semantic value and source span."""

    kind: str      # conid varid symbol keyword int inthash doublehash
                   # string char lparen rparen lhash rhash lbracket rbracket
                   # lbrace rbrace comma semi backslash underscore eof
    text: str
    value: object
    span: Span

    @property
    def line(self) -> int:
        return self.span.line

    @property
    def column(self) -> int:
        return self.span.column

    def is_symbol(self, text: str) -> bool:
        return self.kind == "symbol" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.span.pretty()})"


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\",
            '"': '"', "'": "'", "0": "\0"}

#: ASCII digits only: unicode "digits" like '²' satisfy str.isdigit() but
#: are not valid in numeric literals (found by the parser fuzz test).
_ASCII_DIGITS = frozenset("0123456789")


class Lexer:
    """Tokenise surface-language source text."""

    def __init__(self, source: str, filename: str = "<input>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level cursor ----------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        taken = self.source[self.pos:self.pos + count]
        for ch in taken:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return taken

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.line, self.column)

    def _span_from(self, line: int, column: int) -> Span:
        return Span(line, column, self.line, self.column)

    # -- whitespace and comments --------------------------------------------

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-" and \
                    self._peek(2) not in SYMBOL_CHARS - {"-"}:
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "{" and self._peek(1) == "-":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start_line, start_column = self.line, self.column
        self._advance(2)
        depth = 1
        while depth:
            if self.pos >= len(self.source):
                raise ParseError("unterminated block comment",
                                 start_line, start_column)
            if self._peek() == "{" and self._peek(1) == "-":
                self._advance(2)
                depth += 1
            elif self._peek() == "-" and self._peek(1) == "}":
                self._advance(2)
                depth -= 1
            else:
                self._advance()

    # -- token scanners ------------------------------------------------------

    def _scan_name(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while True:
            ch = self._peek()
            if ch and (ch.isalnum() or ch in "_'"):
                self._advance()
            else:
                break
        while self._peek() == "#":
            self._advance()
        text = self.source[start:self.pos]
        span = self._span_from(line, column)
        if text in KEYWORDS:
            return Token("keyword", text, text, span)
        if text == "_":
            return Token("underscore", text, text, span)
        kind = "conid" if text[0].isupper() else "varid"
        return Token(kind, text, text, span)

    def _scan_number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self._peek() in _ASCII_DIGITS:
            self._advance()
        has_dot = False
        if self._peek() == "." and self._peek(1) in _ASCII_DIGITS:
            has_dot = True
            self._advance()
            while self._peek() in _ASCII_DIGITS:
                self._advance()
        digits = self.source[start:self.pos]
        hashes = 0
        while self._peek() == "#" and hashes < 2:
            self._advance()
            hashes += 1
        span = self._span_from(line, column)
        text = self.source[start:self.pos]
        if hashes == 2:
            return Token("doublehash", text, float(digits), span)
        if hashes == 1:
            if has_dot:
                raise ParseError(
                    f"malformed literal {text!r}: a fractional literal needs "
                    "two trailing hashes (Double#)", line, column)
            return Token("inthash", text, int(digits), span)
        if has_dot:
            raise ParseError(
                f"unsupported literal {text!r}: boxed fractional literals "
                "are not in the surface language (use e.g. 2.5##)",
                line, column)
        return Token("int", text, int(digits), span)

    def _scan_string(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        self._advance()  # opening quote
        chunks: List[str] = []
        while True:
            ch = self._peek()
            if ch == "" or ch == "\n":
                raise ParseError("unterminated string literal", line, column)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                escape = self._advance()
                if escape not in _ESCAPES:
                    raise ParseError(f"unknown escape \\{escape}",
                                     self.line, self.column)
                chunks.append(_ESCAPES[escape])
            else:
                chunks.append(self._advance())
        span = self._span_from(line, column)
        return Token("string", self.source[start:self.pos],
                     "".join(chunks), span)

    def _scan_char(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "\\":
            self._advance()
            escape = self._advance()
            if escape not in _ESCAPES:
                raise ParseError(f"unknown escape \\{escape}",
                                 self.line, self.column)
            value = _ESCAPES[escape]
        elif ch == "" or ch == "\n":
            raise ParseError("unterminated character literal", line, column)
        else:
            value = self._advance()
        if self._peek() != "'":
            raise ParseError("unterminated character literal", line, column)
        self._advance()
        return Token("char", repr(value), value,
                     self._span_from(line, column))

    def _scan_symbol(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self._peek() in SYMBOL_CHARS:
            self._advance()
        text = self.source[start:self.pos]
        return Token("symbol", text, text, self._span_from(line, column))

    # -- the main loop -------------------------------------------------------

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                out.append(Token("eof", "", None,
                                 Span(self.line, self.column,
                                      self.line, self.column)))
                return out
            out.append(self._next_token())

    _SINGLE = {
        ")": "rparen", "[": "lbracket", "]": "rbracket",
        "{": "lbrace", "}": "rbrace", ",": "comma", ";": "semi",
    }

    def _next_token(self) -> Token:
        ch = self._peek()
        line, column = self.line, self.column

        if ch == "(":
            if self._peek(1) == "#" and self._peek(2) not in SYMBOL_CHARS:
                self._advance(2)
                return Token("lhash", "(#", "(#",
                             self._span_from(line, column))
            self._advance()
            return Token("lparen", "(", "(", self._span_from(line, column))

        if ch == "#" and self._peek(1) == ")":
            self._advance(2)
            return Token("rhash", "#)", "#)", self._span_from(line, column))

        if ch in self._SINGLE:
            self._advance()
            return Token(self._SINGLE[ch], ch, ch,
                         self._span_from(line, column))

        if ch == "\\":
            self._advance()
            return Token("backslash", "\\", "\\",
                         self._span_from(line, column))

        if ch == '"':
            return self._scan_string()
        if ch == "'":
            return self._scan_char()
        if ch in _ASCII_DIGITS:
            return self._scan_number()
        if ch.isalpha() or ch == "_":
            return self._scan_name()
        if ch in SYMBOL_CHARS:
            return self._scan_symbol()

        raise self._error(f"unexpected character {ch!r}")


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Tokenise ``source``; the final token always has kind ``eof``."""
    return Lexer(source, filename).tokens()
