"""Recursive-descent parser for the surface language's concrete syntax.

The parser elaborates source text directly into the existing
:mod:`repro.surface.ast` / :mod:`repro.surface.types` nodes, so everything
downstream (inference, the levity checks, the cost-model evaluator, the
L→M compiler bridge) works on parsed programs unchanged.

Grammar (``[]`` optional, ``{}`` repetition; see ``docs/FRONTEND.md`` for
the full reference)::

    module  ::= [ 'module' conid 'where' ] { 'import' conid } { decl }
    decl    ::= var '::' type                      -- type signature
              | var { var } '=' expr               -- function binding
    type    ::= 'forall' { binder } '.' type
              | context '=>' type
              | btype [ '->' type ]
    btype   ::= atype { atype }
    atype   ::= conid | varid | '(' type ')' | '(#' [ type {',' type} ] '#)'
              | '(' ')' | '(' ',' ')' | '[' ']'
    binder  ::= varid | '(' varid '::' kind ')'
    kind    ::= akind [ '->' kind ]
    akind   ::= 'Type' | 'Rep' | 'Constraint' | 'TYPE' rep | '(' kind ')'
    rep     ::= RepConName | varid | 'TupleRep' '[' [ rep {',' rep} ] ']'
              | 'SumRep' '[' [ rep {'|' rep} ] ']' | '(' rep ')'
    expr    ::= '\\' { apat } '->' expr
              | 'let' var [ '::' type [';' var] ] '=' expr 'in' expr
              | 'if' expr 'then' expr 'else' expr
              | 'case' expr 'of' '{' alt { ';' alt } [';'] '}'
              | opexpr [ '::' type ]
    opexpr  ::= [ '-' ] fexp { SYMBOL opexpr }     -- precedence climbing
    fexp    ::= aexp { aexp }
    aexp    ::= varid | conid | literal | '(' expr ')' | '(' SYMBOL ')'
              | '(#' [ expr {',' expr} ] '#)' | '(' ')'
    alt     ::= conid { varid } '->' expr | [ '-' ] INT '->' expr
              | [ '-' ] INT# '->' expr
              | '(#' varid {',' varid} '#)' '->' expr | '_' '->' expr
    apat    ::= varid | '(' varid '::' type ')'

Layout is deliberately minimal: **a token in column 1 always begins a new
top-level declaration**.  Expressions and types may continue across lines
as long as continuation lines are indented.  ``case`` alternatives use
explicit braces and semicolons (the same concrete form the AST pretty
printer emits), so no offside rule is needed.

Free lowercase type variables in a signature are implicitly quantified at
kind ``Type`` in first-occurrence order — mirroring both Haskell's implicit
quantification and the display-defaulted output of
:func:`repro.pretty.render_scheme`.  Representation variables must be bound
explicitly by a ``forall (r :: Rep).`` telescope ("never infer levity
polymorphism" applies to the concrete syntax too).

Every error raised here is a :class:`~repro.core.errors.ParseError`
carrying a 1-based line/column position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.errors import ParseError
from ..core.kinds import (
    CONSTRAINT,
    Kind,
    REP_KIND,
    TYPE_LIFTED,
    TypeKind,
)
from ..core.rep import (
    ADDR_REP,
    CHAR_REP,
    DOUBLE_REP,
    FLOAT_REP,
    INT_REP,
    LIFTED,
    Rep,
    RepVar,
    SumRep,
    TupleRep,
    UNLIFTED,
    WORD_REP,
)
from ..surface.ast import (
    Alternative,
    Decl,
    EAnn,
    EApp,
    EBool,
    ECase,
    EIf,
    ELam,
    ELet,
    ELitChar,
    ELitDoubleHash,
    ELitInt,
    ELitIntHash,
    ELitString,
    EUnboxedTuple,
    EVar,
    Expr,
    FunBind,
    ImportDecl,
    Module,
    ModuleHeader,
    TypeSig,
)
from ..surface.types import (
    BUILTIN_TYCONS,
    Binder,
    ClassConstraint,
    ForAllTy,
    FunTy,
    QualTy,
    SType,
    TyApp,
    TyVar,
    UnboxedTupleTy,
)
from .lexer import RESERVED_SYMBOLS, SYMBOL_CHARS, Span, Token, tokenize

#: Names of the nullary representation constructors.
REP_CONSTANTS: Dict[str, Rep] = {
    "LiftedRep": LIFTED,
    "UnliftedRep": UNLIFTED,
    "IntRep": INT_REP,
    "WordRep": WORD_REP,
    "CharRep": CHAR_REP,
    "AddrRep": ADDR_REP,
    "FloatRep": FLOAT_REP,
    "DoubleRep": DOUBLE_REP,
}

#: Infix operator table: name -> (precedence, associativity).
#: Unknown symbolic operators default to ``(9, "left")``.
OPERATOR_TABLE: Dict[str, Tuple[int, str]] = {
    "$": (0, "right"),
    "||": (2, "right"),
    "&&": (3, "right"),
    "==#": (4, "left"), "/=#": (4, "left"),
    "<#": (4, "left"), "<=#": (4, "left"),
    ">#": (4, "left"), ">=#": (4, "left"),
    "==##": (4, "left"), "<##": (4, "left"),
    "+#": (6, "left"), "-#": (6, "left"),
    "+": (6, "left"), "-": (6, "left"),
    "+##": (6, "left"), "-##": (6, "left"),
    "++": (6, "right"),
    "*#": (7, "left"), "*##": (7, "left"), "/##": (7, "left"),
    "*": (7, "left"),
    ".": (9, "right"),
}

#: Precedence of prefix negation (Haskell's unary minus sits at 6, the same
#: level as the binary ``-``).
NEGATE_PREC = 6


def _negated(operand: Expr) -> Expr:
    """Fold prefix minus into literals; elaborate to ``negate`` otherwise."""
    if isinstance(operand, ELitInt):
        return ELitInt(-operand.value)
    if isinstance(operand, ELitIntHash):
        return ELitIntHash(-operand.value)
    if isinstance(operand, ELitDoubleHash):
        return ELitDoubleHash(-operand.value)
    return EApp(EVar("negate"), operand)


def _decl_key(decl: Decl) -> Tuple[str, str]:
    """The ``decl_spans`` key of a declaration (kind tag + name)."""
    if isinstance(decl, TypeSig):
        return ("sig", decl.name)
    if isinstance(decl, ModuleHeader):
        return ("module", decl.name)
    if isinstance(decl, ImportDecl):
        return ("import", decl.name)
    return ("bind", decl.name)


def validate_module_decls(decls: List[Decl], decl_span_list: List[Span],
                          default_name: str) -> str:
    """Enforce module-shape rules and return the module's name.

    A ``module M where`` header must be the *first* declaration (which also
    rules out duplicates), and ``import`` declarations must precede all
    signatures and bindings.  Shared by :meth:`Parser.parse_module` and
    :func:`parse_module_incremental` so both paths reject exactly the same
    shapes with the same spans.
    """
    name = default_name
    seen_code = False
    for index, decl in enumerate(decls):
        span = decl_span_list[index]
        if isinstance(decl, ModuleHeader):
            if index != 0:
                raise ParseError(
                    "the 'module ... where' header must be the first "
                    "declaration in the file", span.line, span.column)
            name = decl.name
        elif isinstance(decl, ImportDecl):
            if seen_code:
                raise ParseError(
                    "imports must appear before all other declarations",
                    span.line, span.column)
        else:
            seen_code = True
    return name


@dataclass
class ParsedModule:
    """A parsed module plus the span bookkeeping the driver needs."""

    module: Module
    filename: str
    source: str
    #: Span of each declaration, keyed by ("sig" | "bind", name).
    decl_spans: Dict[Tuple[str, str], Span] = field(default_factory=dict)
    #: Spans of expression nodes, keyed by id(node) (nodes are not interned).
    expr_spans: Dict[int, Span] = field(default_factory=dict)
    #: Span of every declaration instance, parallel to ``module.decls``
    #: (unlike ``decl_spans`` this keeps duplicates: the dependency planner
    #: needs the source slice of *each* declaration).
    decl_span_list: List[Span] = field(default_factory=list)
    #: Optional memoised free-variable references per declaration (parallel
    #: to ``module.decls``; None entries for non-bindings).  Filled by the
    #: incremental parser so the dependency planner need not re-walk
    #: unchanged ASTs; ``None`` as a whole means "compute on demand".
    decl_refs: Optional[List[Optional[FrozenSet[str]]]] = None

    def span_of_binding(self, name: str) -> Optional[Span]:
        """Best span for diagnostics about the binding ``name``."""
        return (self.decl_spans.get(("bind", name))
                or self.decl_spans.get(("sig", name)))

    def span_of_expr(self, expr: Expr) -> Optional[Span]:
        return self.expr_spans.get(id(expr))


class _TypeScope:
    """Lexical scope of ``forall``-bound type/representation variables."""

    def __init__(self) -> None:
        self.frames: List[Dict[str, Kind]] = []
        #: Free type variables, in first-occurrence order (implicit forall).
        self.implicit: Dict[str, None] = {}

    def push(self) -> None:
        self.frames.append({})

    def pop(self) -> None:
        self.frames.pop()

    def bind(self, name: str, kind: Kind) -> None:
        self.frames[-1][name] = kind

    def lookup(self, name: str) -> Optional[Kind]:
        for frame in reversed(self.frames):
            if name in frame:
                return frame[name]
        return None


class Parser:
    """A recursive-descent parser over the token stream."""

    def __init__(self, source: str, filename: str = "<input>") -> None:
        self.filename = filename
        self.source = source
        self.tokens = tokenize(source, filename)
        self.pos = 0
        self.scope = _TypeScope()
        self.expr_spans: Dict[int, Span] = {}

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def _at_eof(self) -> bool:
        return self._peek().kind == "eof"

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, token.line, token.column)

    def _expect(self, kind: str, what: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise self._error(f"expected {what}, found {token.text!r}"
                              if token.kind != "eof"
                              else f"expected {what}, found end of input")
        return self._next()

    def _expect_symbol(self, text: str) -> Token:
        token = self._peek()
        if not token.is_symbol(text):
            raise self._error(f"expected {text!r}, found "
                              + (repr(token.text) if token.kind != "eof"
                                 else "end of input"))
        return self._next()

    def _continues(self) -> bool:
        """May the current construct consume the next token?

        Column 1 is reserved for new top-level declarations, so any token
        there ends whatever expression or type is being parsed.
        """
        token = self._peek()
        return token.kind != "eof" and token.column != 1

    def _note(self, expr: Expr, span: Span) -> Expr:
        self.expr_spans[id(expr)] = span
        return expr

    # =======================================================================
    # Modules and declarations
    # =======================================================================

    def parse_module(self, name: str = "Main",
                     validate: bool = True) -> ParsedModule:
        decls: List[Decl] = []
        decl_spans: Dict[Tuple[str, str], Span] = {}
        decl_span_list: List[Span] = []
        while not self._at_eof():
            token = self._peek()
            if token.kind == "semi":
                self._next()
                continue
            if token.column != 1:
                raise self._error(
                    "declarations must start in column 1 "
                    f"(found {token.text!r} at column {token.column})")
            decl, span = self._parse_decl()
            decls.append(decl)
            decl_span_list.append(span)
            decl_spans.setdefault(_decl_key(decl), span)
        if validate:
            name = validate_module_decls(decls, decl_span_list, name)
        parsed = ParsedModule(Module(name, decls), self.filename, self.source,
                              decl_spans, self.expr_spans, decl_span_list)
        return parsed

    def _parse_decl(self) -> Tuple[Decl, Span]:
        start = self._peek().span
        token = self._peek()
        if token.is_keyword("module"):
            self._next()
            name_token = self._expect("conid", "a module name")
            where = self._peek()
            if not where.is_keyword("where"):
                raise self._error("expected 'where' after the module name")
            self._next()
            return (ModuleHeader(name_token.text),
                    start.merge(self._previous_span()))
        if token.is_keyword("import"):
            self._next()
            name_token = self._expect("conid", "a module name")
            return (ImportDecl(name_token.text),
                    start.merge(self._previous_span()))
        name = self._parse_decl_name()
        if self._peek().is_symbol("::"):
            self._next()
            type_ = self.parse_signature_type()
            return TypeSig(name, type_), start.merge(self._previous_span())
        params: List[str] = []
        while self._peek().kind == "varid":
            params.append(self._next().text)
        self._expect_symbol("=")
        body = self.parse_expr()
        return (FunBind(name, params, body),
                start.merge(self._previous_span()))

    def _parse_decl_name(self) -> str:
        token = self._peek()
        if token.kind == "varid":
            return self._next().text
        if token.kind == "lparen" and self._peek(1).kind == "symbol" \
                and self._peek(2).kind == "rparen":
            self._next()
            name = self._next().text
            self._next()
            return name
        raise self._error("expected a declaration "
                          "(name :: type  or  name args = expr)")

    def _previous_span(self) -> Span:
        return self.tokens[max(self.pos - 1, 0)].span

    # =======================================================================
    # Types
    # =======================================================================

    def parse_signature_type(self) -> SType:
        """A top-level signature type with implicit quantification."""
        outer_implicit = self.scope.implicit
        self.scope.implicit = {}
        try:
            type_ = self.parse_type()
            free = list(self.scope.implicit)
        finally:
            self.scope.implicit = outer_implicit
        if free:
            type_ = ForAllTy(tuple(Binder(n, TYPE_LIFTED) for n in free),
                             type_)
        return type_

    def parse_type(self) -> SType:
        token = self._peek()
        if token.is_keyword("forall"):
            return self._parse_forall()
        context = self._try_parse_context()
        if context is not None:
            body = self.parse_type()
            return QualTy(context, body)
        left = self._parse_btype()
        if self._continues() and self._peek().is_symbol("->"):
            self._next()
            return FunTy(left, self.parse_type())
        return left

    def _parse_forall(self) -> SType:
        self._next()  # 'forall'
        binders: List[Binder] = []
        self.scope.push()
        try:
            while not self._peek().is_symbol("."):
                binders.append(self._parse_forall_binder())
            self._next()  # '.'
            if not binders:
                raise self._error("a forall needs at least one binder")
            body = self.parse_type()
        finally:
            self.scope.pop()
        return ForAllTy(binders, body)

    def _parse_forall_binder(self) -> Binder:
        token = self._peek()
        if token.kind == "varid":
            self._next()
            self.scope.bind(token.text, TYPE_LIFTED)
            return Binder(token.text, TYPE_LIFTED)
        if token.kind == "lparen":
            self._next()
            name = self._expect("varid", "a type variable").text
            self._expect_symbol("::")
            kind = self.parse_kind()
            self._expect("rparen", "')'")
            self.scope.bind(name, kind)
            return Binder(name, kind)
        raise self._error("expected a forall binder "
                          "(a  or  (a :: kind))")

    def _try_parse_context(self) -> Optional[Tuple[ClassConstraint, ...]]:
        """Parse ``C ty =>`` or ``(C1 t1, ..., Cn tn) =>`` with backtracking."""
        saved = self.pos
        saved_implicit = dict(self.scope.implicit)
        try:
            constraints: List[ClassConstraint] = []
            if self._peek().kind == "lparen":
                self._next()
                if self._peek().kind != "rparen":
                    constraints.append(self._parse_constraint())
                    while self._peek().kind == "comma":
                        self._next()
                        constraints.append(self._parse_constraint())
                self._expect("rparen", "')'")
            else:
                constraints.append(self._parse_constraint())
            self._expect_symbol("=>")
            return tuple(constraints)
        except ParseError:
            self.pos = saved
            self.scope.implicit = saved_implicit
            return None

    def _parse_constraint(self) -> ClassConstraint:
        name = self._expect("conid", "a class name").text
        argument = self._parse_atype()
        return ClassConstraint(name, argument)

    def _parse_btype(self) -> SType:
        type_ = self._parse_atype()
        while self._continues() and self._starts_atype():
            type_ = TyApp(type_, self._parse_atype())
        return type_

    def _starts_atype(self) -> bool:
        token = self._peek()
        return token.kind in ("conid", "varid", "lparen", "lhash", "lbracket")

    def _parse_atype(self) -> SType:
        token = self._peek()

        if token.kind == "conid":
            self._next()
            tycon = BUILTIN_TYCONS.get(token.text)
            if tycon is None:
                raise self._error(
                    f"unknown type constructor {token.text!r}", token)
            return tycon

        if token.kind == "varid":
            self._next()
            kind = self.scope.lookup(token.text)
            if kind is None:
                # Implicitly quantified at kind Type.
                self.scope.implicit.setdefault(token.text, None)
                kind = TYPE_LIFTED
            if kind == REP_KIND:
                raise self._error(
                    f"representation variable {token.text!r} used as a type "
                    "(it may only appear inside TYPE ...)", token)
            return TyVar(token.text, kind)

        if token.kind == "lbracket":
            self._next()
            self._expect("rbracket", "']' (the list type constructor '[]')")
            return BUILTIN_TYCONS["[]"]

        if token.kind == "lhash":
            self._next()
            components: List[SType] = []
            if self._peek().kind != "rhash":
                components.append(self.parse_type())
                while self._peek().kind == "comma":
                    self._next()
                    components.append(self.parse_type())
            self._expect("rhash", "'#)'")
            return UnboxedTupleTy(components)

        if token.kind == "lparen":
            self._next()
            nxt = self._peek()
            if nxt.kind == "rparen":
                self._next()
                return BUILTIN_TYCONS["()"]
            if nxt.kind == "comma":
                self._next()
                self._expect("rparen", "')' (the pair constructor '(,)')")
                return BUILTIN_TYCONS["(,)"]
            inner = self.parse_type()
            self._expect("rparen", "')'")
            return inner

        raise self._error(f"expected a type, found "
                          + (repr(token.text) if token.kind != "eof"
                             else "end of input"))

    # -- kinds and representations -------------------------------------------

    def parse_kind(self) -> Kind:
        kind = self._parse_akind()
        if self._continues() and self._peek().is_symbol("->"):
            self._next()
            from ..core.kinds import ArrowKind
            return ArrowKind(kind, self.parse_kind())
        return kind

    def _parse_akind(self) -> Kind:
        token = self._peek()
        if token.kind == "conid":
            if token.text == "Type":
                self._next()
                return TYPE_LIFTED
            if token.text == "Rep":
                self._next()
                return REP_KIND
            if token.text == "Constraint":
                self._next()
                return CONSTRAINT
            if token.text == "TYPE":
                self._next()
                return TypeKind(self._parse_rep())
            raise self._error(f"unknown kind {token.text!r}", token)
        if token.kind == "lparen":
            self._next()
            kind = self.parse_kind()
            self._expect("rparen", "')'")
            return kind
        raise self._error("expected a kind (Type, TYPE r, Rep, Constraint)")

    def _parse_rep(self) -> Rep:
        token = self._peek()
        if token.kind == "conid":
            if token.text == "TupleRep":
                self._next()
                return TupleRep(self._parse_rep_list("comma"))
            if token.text == "SumRep":
                self._next()
                return SumRep(self._parse_rep_list("bar"))
            rep = REP_CONSTANTS.get(token.text)
            if rep is None:
                raise self._error(
                    f"unknown representation {token.text!r}", token)
            self._next()
            return rep
        if token.kind == "varid":
            kind = self.scope.lookup(token.text)
            if kind != REP_KIND:
                raise self._error(
                    f"representation variable {token.text!r} is not bound by "
                    "a forall (r :: Rep) telescope", token)
            self._next()
            return RepVar(token.text)
        if token.kind == "lparen":
            self._next()
            rep = self._parse_rep()
            self._expect("rparen", "')'")
            return rep
        raise self._error("expected a runtime representation")

    def _parse_rep_list(self, separator: str) -> List[Rep]:
        self._expect("lbracket", "'['")
        reps: List[Rep] = []
        if self._peek().kind != "rbracket":
            reps.append(self._parse_rep())
            while ((separator == "comma" and self._peek().kind == "comma")
                   or (separator == "bar" and self._peek().is_symbol("|"))):
                self._next()
                reps.append(self._parse_rep())
        self._expect("rbracket", "']'")
        return reps

    # =======================================================================
    # Expressions
    # =======================================================================

    def parse_expr(self) -> Expr:
        start = self._peek().span
        expr = self._parse_op_expr(0)
        if self._continues() and self._peek().is_symbol("::"):
            self._next()
            type_ = self.parse_signature_type()
            expr = EAnn(expr, type_)
        return self._note(expr, start.merge(self._previous_span()))

    def _parse_special(self) -> Optional[Expr]:
        """Lambda / let / if / case — forms that extend as far as possible."""
        token = self._peek()
        if token.kind == "backslash":
            return self._parse_lambda()
        if token.is_keyword("let"):
            return self._parse_let()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("case"):
            return self._parse_case()
        return None

    def _parse_op_expr(self, min_prec: int) -> Expr:
        start = self._peek().span
        if self._peek().is_symbol("-"):
            # Prefix negation (the only prefix operator, exactly as in
            # Haskell).  Its operand extends over tighter operators only, so
            # ``- a * b`` negates the product while ``- a + b`` adds to the
            # negation; the negation itself then participates as a left
            # operand at precedence NEGATE_PREC.  Like Haskell's "cannot mix"
            # rule, a negation may not itself be the operand of a
            # tighter-binding operator: ``a *# - b`` must be written
            # ``a *# (- b)`` (otherwise the operand parse would swallow the
            # rest of the tighter chain and mis-group it).
            if min_prec > NEGATE_PREC:
                raise self._error(
                    "prefix '-' cannot be the operand of an operator that "
                    "binds more tightly than subtraction; parenthesise the "
                    "negation")
            self._next()
            operand = self._parse_op_expr(NEGATE_PREC + 1)
            left = self._note(_negated(operand),
                              start.merge(self._previous_span()))
        else:
            special = self._parse_special()
            if special is not None:
                # Lambda/let/if bodies extend maximally, so no operator can
                # follow them here; a brace-delimited case, however, may be
                # the left operand of an infix operator — fall into the loop.
                left = special
            else:
                left = self._parse_fexp()
        while self._continues():
            token = self._peek()
            if token.kind != "symbol" or token.text in RESERVED_SYMBOLS:
                break
            prec, assoc = OPERATOR_TABLE.get(token.text, (9, "left"))
            if prec < min_prec:
                break
            self._next()
            right = self._parse_op_expr(prec + 1 if assoc == "left" else prec)
            left = EApp(EApp(EVar(token.text), left), right)
            self._note(left, start.merge(self._previous_span()))
        return left

    def _parse_fexp(self) -> Expr:
        start = self._peek().span
        expr = self._parse_aexp()
        while self._continues() and self._starts_aexp():
            argument = self._parse_aexp()
            expr = EApp(expr, argument)
            self._note(expr, start.merge(self._previous_span()))
        return expr

    def _starts_aexp(self) -> bool:
        token = self._peek()
        return token.kind in ("varid", "conid", "int", "inthash",
                              "doublehash", "string", "char",
                              "lparen", "lhash")

    def _parse_aexp(self) -> Expr:
        token = self._peek()
        span = token.span

        if token.kind == "varid":
            self._next()
            return self._note(EVar(token.text), span)

        if token.kind == "conid":
            self._next()
            if token.text == "True":
                return self._note(EBool(True), span)
            if token.text == "False":
                return self._note(EBool(False), span)
            return self._note(EVar(token.text), span)

        if token.kind == "int":
            self._next()
            return self._note(ELitInt(token.value), span)
        if token.kind == "inthash":
            self._next()
            return self._note(ELitIntHash(token.value), span)
        if token.kind == "doublehash":
            self._next()
            return self._note(ELitDoubleHash(token.value), span)
        if token.kind == "string":
            self._next()
            return self._note(ELitString(token.value), span)
        if token.kind == "char":
            self._next()
            return self._note(ELitChar(token.value), span)

        if token.kind == "lhash":
            self._next()
            components: List[Expr] = []
            if self._peek().kind != "rhash":
                components.append(self.parse_expr())
                while self._peek().kind == "comma":
                    self._next()
                    components.append(self.parse_expr())
            end = self._expect("rhash", "'#)'")
            return self._note(EUnboxedTuple(components),
                              span.merge(end.span))

        if token.kind == "lparen":
            self._next()
            nxt = self._peek()
            if nxt.kind == "rparen":
                end = self._next()
                return self._note(EVar("()"), span.merge(end.span))
            if nxt.kind == "symbol" and nxt.text not in RESERVED_SYMBOLS \
                    and self._peek(1).kind == "rparen":
                self._next()
                end = self._next()
                return self._note(EVar(nxt.text), span.merge(end.span))
            inner = self.parse_expr()
            end = self._expect("rparen", "')'")
            return self._note(inner, span.merge(end.span))

        raise self._error("expected an expression, found "
                          + (repr(token.text) if token.kind != "eof"
                             else "end of input"))

    # -- the special forms ----------------------------------------------------

    def _parse_lambda(self) -> Expr:
        start = self._next().span  # '\'
        binders: List[Tuple[str, Optional[SType]]] = []
        while True:
            token = self._peek()
            if token.kind == "varid":
                self._next()
                binders.append((token.text, None))
            elif token.kind == "lparen":
                self._next()
                name = self._expect("varid", "a lambda binder").text
                self._expect_symbol("::")
                annotation = self.parse_type()
                self._expect("rparen", "')'")
                binders.append((name, annotation))
            else:
                break
        if not binders:
            raise self._error("a lambda needs at least one binder")
        self._expect_symbol("->")
        body = self.parse_expr()
        for name, annotation in reversed(binders):
            body = ELam(name, body, annotation)
        return self._note(body, start.merge(self._previous_span()))

    def _parse_let(self) -> Expr:
        start = self._next().span  # 'let'
        name = self._expect("varid", "a let binder").text
        signature: Optional[SType] = None
        if self._peek().is_symbol("::"):
            self._next()
            signature = self.parse_signature_type()
            if self._peek().kind == "semi":
                # Accept the printed form  let x :: t; x = rhs in body.
                self._next()
                again = self._expect("varid", f"{name!r} (the signed binder)")
                if again.text != name:
                    raise self._error(
                        f"let signature names {name!r} but the binding is "
                        f"for {again.text!r}", again)
        self._expect_symbol("=")
        rhs = self.parse_expr()
        if not self._peek().is_keyword("in"):
            raise self._error("expected 'in' to close the let binding")
        self._next()
        body = self.parse_expr()
        return self._note(ELet(name, rhs, body, signature),
                          start.merge(self._previous_span()))

    def _parse_if(self) -> Expr:
        start = self._next().span  # 'if'
        condition = self.parse_expr()
        if not self._peek().is_keyword("then"):
            raise self._error("expected 'then'")
        self._next()
        consequent = self.parse_expr()
        if not self._peek().is_keyword("else"):
            raise self._error("expected 'else'")
        self._next()
        alternative = self.parse_expr()
        return self._note(EIf(condition, consequent, alternative),
                          start.merge(self._previous_span()))

    def _parse_case(self) -> Expr:
        start = self._next().span  # 'case'
        scrutinee = self.parse_expr()
        if not self._peek().is_keyword("of"):
            raise self._error("expected 'of'")
        self._next()
        self._expect("lbrace", "'{' (case alternatives use explicit braces)")
        alternatives: List[Alternative] = []
        while True:
            if self._peek().kind == "rbrace":
                break
            alternatives.append(self._parse_alternative())
            if self._peek().kind == "semi":
                self._next()
                continue
            break
        end = self._expect("rbrace", "'}'")
        if not alternatives:
            raise self._error("a case expression needs at least one "
                              "alternative", end)
        return self._note(ECase(scrutinee, alternatives),
                          start.merge(self._previous_span()))

    def _parse_alternative(self) -> Alternative:
        token = self._peek()
        if token.kind == "underscore":
            self._next()
            constructor = "_"
            binders: List[str] = []
        elif token.kind == "int":
            self._next()
            constructor = str(token.value)
            binders = []
        elif token.kind == "inthash":
            self._next()
            constructor = f"{token.value}#"
            binders = []
        elif token.is_symbol("-") and self._peek(1).kind in ("int", "inthash"):
            self._next()
            literal = self._next()
            constructor = (f"{-literal.value}#" if literal.kind == "inthash"
                           else str(-literal.value))
            binders = []
        elif token.kind == "conid":
            self._next()
            constructor = token.text
            binders = []
            while self._peek().kind == "varid":
                binders.append(self._next().text)
        elif token.kind == "lhash":
            self._next()
            constructor = "(#,#)"
            binders = []
            if self._peek().kind != "rhash":
                binders.append(self._expect("varid", "a pattern binder").text)
                while self._peek().kind == "comma":
                    self._next()
                    binders.append(
                        self._expect("varid", "a pattern binder").text)
            self._expect("rhash", "'#)'")
        else:
            raise self._error("expected a pattern (constructor, literal, "
                              "unboxed tuple, or _)")
        self._expect_symbol("->")
        rhs = self.parse_expr()
        return Alternative(constructor, binders, rhs)


# ---------------------------------------------------------------------------
# Incremental (block-memoised) module parsing
# ---------------------------------------------------------------------------
#
# The binding-level driver re-parses a module on every incremental check to
# re-derive the dependency plan.  Since a token in column 1 always begins a
# new top-level declaration, a module splits into independent *declaration
# blocks* with a cheap line scanner; each block's parse depends only on the
# block's own text, so a session can memoise block parses and re-lex/parse
# only the blocks that actually changed.  Spans inside a memoised block are
# stored block-relative and re-based by line offset on assembly.


#: Memoised block parses are dropped wholesale past this many entries
#: (a simple bound; block texts are small but sessions are long-lived).
_BLOCK_MEMO_LIMIT = 65536


@dataclass(frozen=True)
class _BlockParse:
    """The (block-relative) parse of one declaration block."""

    decls: Tuple[Decl, ...]
    decl_span_list: Tuple[Span, ...]
    expr_spans: Dict[int, Span]
    #: Free-variable references per decl (None for type signatures) —
    #: computed once so the dependency planner skips the AST walk.
    refs: Tuple[Optional[FrozenSet[str]], ...] = ()
    #: (message-without-position-prefix, line, column) when the block does
    #: not parse; memoising failures keeps erroring files cheap too.
    error: Optional[Tuple[str, int, int]] = None


def _line_starts_decl(line: str, depth: int) -> bool:
    """Does this line put a token in column 1 (i.e. start a declaration)?

    Mirrors the lexer: inside a block comment nothing starts; a line
    comment (``--`` not followed by another symbol character) and a block
    comment opener are trivia, not tokens.
    """
    if depth > 0 or not line or line[0] in " \t\r":
        return False
    if line.startswith("{-"):
        return False
    if line.startswith("--"):
        after = line[2:3]
        if not after or after not in SYMBOL_CHARS - {"-"}:
            return False
    return True


def _scan_line_trivia(line: str, depth: int) -> int:
    """Advance the block-comment depth across one line.

    Replicates exactly the lexer's trivia rules: nested ``{- -}`` comments
    (inside which nothing else is special), ``--`` line comments, string
    literals and character literals (primes inside identifiers are *not*
    character-literal openers).
    """
    i, n = 0, len(line)
    prev_name_char = False
    while i < n:
        ch = line[i]
        if depth:
            if ch == "{" and line[i + 1:i + 2] == "-":
                depth += 1
                i += 2
            elif ch == "-" and line[i + 1:i + 2] == "}":
                depth -= 1
                i += 2
            else:
                i += 1
            continue
        if ch == '"':
            i += 1
            while i < n and line[i] != '"':
                i += 2 if line[i] == "\\" else 1
            i += 1
            prev_name_char = False
            continue
        if ch == "'" and not prev_name_char:
            j = i + 1
            if line[j:j + 1] == "\\":
                j += 2
            elif j < n:
                j += 1
            i = j + 1 if line[j:j + 1] == "'" else i + 1
            prev_name_char = False
            continue
        if ch == "-" and line[i + 1:i + 2] == "-":
            after = line[i + 2:i + 3]
            if not after or after not in SYMBOL_CHARS - {"-"}:
                break  # line comment: the rest of the line is trivia
            i += 1
            prev_name_char = False
            continue
        if ch == "{" and line[i + 1:i + 2] == "-":
            depth += 1
            i += 2
            prev_name_char = False
            continue
        prev_name_char = ch.isalnum() or ch in "_'#"
        i += 1
    return depth


def split_decl_blocks(source: str) -> List[Tuple[int, str]]:
    """Split a module into ``(start_line, text)`` declaration blocks.

    Block boundaries are the lines that put a token in column 1; trivia
    before the first declaration forms a preamble block of its own.  The
    concatenation of all block texts (newline-joined) is the source.
    """
    lines = source.split("\n")
    starts: List[int] = []
    depth = 0
    for index, line in enumerate(lines):
        if _line_starts_decl(line, depth):
            starts.append(index)
        depth = _scan_line_trivia(line, depth)
    if not starts or starts[0] != 0:
        starts.insert(0, 0)
    blocks: List[Tuple[int, str]] = []
    for position, start in enumerate(starts):
        stop = starts[position + 1] if position + 1 < len(starts) \
            else len(lines)
        blocks.append((start + 1, "\n".join(lines[start:stop])))
    return blocks


def _parse_block(text: str) -> _BlockParse:
    parser = Parser(text, "<block>")
    try:
        # Module-shape validation (header first, imports before code) is
        # positional across the whole file, so it runs on assembly in
        # parse_module_incremental, not per block.
        parsed = parser.parse_module(validate=False)
    except ParseError as exc:
        message = str(exc)
        prefix = f"{exc.line}:{exc.column}: "
        if message.startswith(prefix):
            message = message[len(prefix):]
        return _BlockParse((), (), {}, (),
                           (message, exc.line, exc.column))
    refs = tuple(
        decl.rhs.free_vars() - frozenset(decl.params)
        if isinstance(decl, FunBind) else None
        for decl in parsed.module.decls)
    return _BlockParse(tuple(parsed.module.decls),
                       tuple(parsed.decl_span_list),
                       dict(parsed.expr_spans), refs)


def _shift_span(span: Span, delta: int) -> Span:
    if delta == 0:
        return span
    return Span(span.line + delta, span.column,
                span.end_line + delta, span.end_column)


def parse_module_incremental(source: str, filename: str = "<input>",
                             name: str = "Main",
                             memo: Optional[Dict[str, _BlockParse]] = None
                             ) -> ParsedModule:
    """Parse a module block by block, reusing memoised block parses.

    Produces exactly what :func:`parse_module` produces (same declaration
    order, spans, expression-span table), but a block whose text is
    already in ``memo`` skips lexing and parsing entirely — the payoff
    that makes warm incremental re-checks parse only the edited bindings.
    """
    decls: List[Decl] = []
    decl_spans: Dict[Tuple[str, str], Span] = {}
    expr_spans: Dict[int, Span] = {}
    decl_span_list: List[Span] = []
    decl_refs: List[Optional[FrozenSet[str]]] = []
    used_blocks: set = set()
    for start_line, text in split_decl_blocks(source):
        block = memo.get(text) if memo is not None else None
        if block is None:
            block = _parse_block(text)
            if memo is not None:
                if len(memo) >= _BLOCK_MEMO_LIMIT:
                    memo.clear()
                memo[text] = block
        if id(block) in used_blocks:
            # The same block text occurs twice in one module (duplicate
            # definitions).  Sharing the memoised AST would collide the
            # id()-keyed expression spans — the second occurrence would
            # overwrite the first's positions — so duplicates get fresh
            # nodes.
            block = _parse_block(text)
        used_blocks.add(id(block))
        delta = start_line - 1
        if block.error is not None:
            message, line, column = block.error
            raise ParseError(message, line + delta if line else line, column)
        for decl, span in zip(block.decls, block.decl_span_list):
            absolute = _shift_span(span, delta)
            decls.append(decl)
            decl_span_list.append(absolute)
            decl_spans.setdefault(_decl_key(decl), absolute)
        decl_refs.extend(block.refs)
        for node_id, span in block.expr_spans.items():
            expr_spans[node_id] = _shift_span(span, delta)
    name = validate_module_decls(decls, decl_span_list, name)
    return ParsedModule(Module(name, decls), filename, source,
                        decl_spans, expr_spans, decl_span_list, decl_refs)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def parse_module(source: str, filename: str = "<input>",
                 name: str = "Main") -> ParsedModule:
    """Parse a whole surface module from source text."""
    return Parser(source, filename).parse_module(name)


def parse_expr(source: str, filename: str = "<input>") -> Expr:
    """Parse a single expression (must consume the whole input)."""
    parser = Parser(source, filename)
    expr = parser.parse_expr()
    if not parser._at_eof():
        raise parser._error("unexpected input after expression")
    return expr


def parse_type(source: str, filename: str = "<input>") -> SType:
    """Parse a type, implicitly quantifying free lowercase variables."""
    parser = Parser(source, filename)
    type_ = parser.parse_signature_type()
    if not parser._at_eof():
        raise parser._error("unexpected input after type")
    return type_


def parse_scheme(source: str, filename: str = "<input>"):
    """Parse a type and view it as an inference :class:`Scheme`."""
    from ..infer.schemes import Scheme

    return Scheme.from_type(parse_type(source, filename))
