"""Type-directed generation of well-typed surface programs (corpus fuzzing).

The generator synthesizes random ``.lev`` programs that are **well-typed by
construction**: every expression is built *at* a target type, every binder
and call site is assembled from pieces whose types are known, and "never
infer levity polymorphism" is respected (representation-polymorphic bindings
always carry an explicit ``forall (r :: Rep)`` signature).  Programs are
emitted as concrete source text, so every generated program flows through
the real lexer and parser — not the AST backdoor.

Two further design points make the corpus *checkable*, not just parseable:

* **Reference semantics by construction.**  Alongside each expression the
  generator builds an independent Python closure computing its value (exact
  integers, IEEE doubles, Python tuples/strings/bools).  The differential
  harness compares the cost-model evaluator's output against this reference
  — a third semantic backend next to the evaluator and the Figure-7 M
  machine, in the cross-validation spirit of ESBMC-PLC.  Reference functions
  are total on everything the generated ``main`` can reach: calls to
  ``error``/``undefined`` only ever appear in positions the generator can
  prove dead (unused lazy lets, untaken branches of constant scrutinees,
  bindings ``main`` never calls).

* **An L-fragment mode.**  A slice of the corpus (``fragment_bias``) is
  generated inside the compilable fragment of ``repro.driver.lower`` —
  ``Int``/``Int#`` arrows, annotated lambdas, ``I#`` boxing, the unboxing
  ``case``, signed lets, no recursion, no primops — so the evaluator↔machine
  differential oracle engages on a guaranteed share of programs instead of
  by accident.

Randomness flows through the tiny :class:`Choices` interface so the same
generator runs off a seeded :class:`random.Random` (CLI, benchmarks) or off
hypothesis draws (property tests — which buys hypothesis-driven shrinking of
any counterexample for free, see :mod:`repro.fuzz.strategies`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.kinds import REP_KIND, TypeKind
from ..core.rep import RepVar
from ..surface.ast import (
    Alternative,
    Decl,
    EAnn,
    EApp,
    EBool,
    ECase,
    EIf,
    ELam,
    ELet,
    ELitDoubleHash,
    ELitInt,
    ELitIntHash,
    ELitString,
    EUnboxedTuple,
    EVar,
    Expr,
    FunBind,
    Module,
    TypeSig,
    apply,
)
from ..surface.types import (
    BOOL_TY,
    Binder,
    DOUBLE_HASH_TY,
    ForAllTy,
    FunTy,
    INT_HASH_TY,
    INT_TY,
    MAYBE_TY,
    STRING_TY,
    SType,
    TyApp,
    TyVar,
    UnboxedTupleTy,
    fun,
)

__all__ = [
    "Choices",
    "GenOptions",
    "GenProgram",
    "GeneratorError",
    "ProgramGenerator",
    "generate_corpus",
    "generate_program",
    "render_value",
]

#: The environment a reference function runs in: binder name -> value.
Env = Dict[str, object]
#: The independent reference semantics of a generated expression.
RefFn = Callable[[Env], object]

MAYBE_INT_TY = TyApp(MAYBE_TY, INT_TY)
PAIR_HASH_TY = UnboxedTupleTy((INT_HASH_TY, INT_HASH_TY))
MIXED_PAIR_TY = UnboxedTupleTy((INT_HASH_TY, DOUBLE_HASH_TY))

#: Types of kind ``Type`` (boxed and lifted) — the only legal instantiations
#: of the lifted binders of ``($)`` and ``(.)``.
LIFTED_TYPES: Tuple[SType, ...] = (INT_TY, BOOL_TY, STRING_TY, MAYBE_INT_TY)
#: First-order types the general structural machinery ranges over.
SCALAR_TYPES: Tuple[SType, ...] = (INT_HASH_TY, INT_TY, DOUBLE_HASH_TY,
                                   BOOL_TY)
#: The only types the compilable L fragment knows.
FRAGMENT_TYPES: Tuple[SType, ...] = (INT_TY, INT_HASH_TY)

#: ``forall (r :: Rep) (a :: TYPE r). String -> a`` — the error-like shape.
LEVITY_POLY_SIG: SType = ForAllTy(
    (Binder("r", REP_KIND), Binder("a", TypeKind(RepVar("r")))),
    FunTy(STRING_TY, TyVar("a", TypeKind(RepVar("r")))))


class GeneratorError(Exception):
    """The generator violated one of its own invariants (a fuzzer bug)."""


# ---------------------------------------------------------------------------
# Randomness
# ---------------------------------------------------------------------------


class Choices:
    """The randomness interface the generator draws from.

    The default implementation wraps a seeded :class:`random.Random`; the
    hypothesis strategy substitutes draws from the choice sequence, which
    makes every generated program shrinkable.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def int_between(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def pick(self, options: Sequence):
        if not options:
            raise GeneratorError("pick() from an empty option list")
        return options[self._rng.randrange(len(options))]

    def chance(self, probability: float) -> bool:
        return self._rng.random() < probability


# ---------------------------------------------------------------------------
# Options and results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GenOptions:
    """Tuning knobs for the generator."""

    #: Maximum expression depth (structural nodes consume one unit each).
    depth: int = 4
    #: Maximum number of helper bindings before ``main``.
    max_bindings: int = 4
    #: Share of programs generated inside the compilable L fragment.
    fragment_bias: float = 0.3
    #: Occasionally emit 15–18 digit literals (catches precision bugs).
    big_literals: bool = True


@dataclass(frozen=True)
class GenProgram:
    """One generated program plus everything the oracles need."""

    filename: str
    source: str
    module: Module
    #: Intended full type of every binding (signature or anchored inference).
    intended: Dict[str, SType]
    #: Bindings deliberately generated *without* a signature (inference must
    #: still agree with the intended type exactly).
    unsigned: frozenset
    #: Generated inside the compilable L fragment (the machine oracle is
    #: then mandatory, not best-effort).
    fragment: bool
    main_type: SType
    #: The reference semantics' rendering of ``main`` (None for function
    #: types, which have no canonical printed value).
    expected_value: Optional[str]
    #: Flavors of the helper bindings (for coverage accounting).
    flavors: Tuple[str, ...] = ()


# ---------------------------------------------------------------------------
# Reference-semantics helpers
# ---------------------------------------------------------------------------


def _exact_quot(a: int, b: int) -> int:
    """``quotInt#``: truncate-towards-zero division; ⊥ at ``b == 0``.

    Deliberately a *different formulation* from the evaluator's primop
    (``int()`` on an exact rational truncates toward zero), so a bug in one
    implementation cannot hide in the other — the whole point of the
    reference oracle.  Division by zero raises, matching the bottom
    outcome all execution backends now share; the generator only emits
    non-zero literal divisors, so a raise here means a generator bug.
    """
    if b == 0:
        raise ZeroDivisionError("quotInt# by zero is bottom")
    from fractions import Fraction

    return int(Fraction(a, b))


def _exact_rem(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("remInt# by zero is bottom")
    return a - b * _exact_quot(a, b)


#: name -> (operand type, result type, python semantics) for binary primops
#: and boxed helpers the generator emits in infix/section form.
_INT_HASH_OPS = {
    "+#": lambda a, b: a + b,
    "-#": lambda a, b: a - b,
    "*#": lambda a, b: a * b,
}
_INT_HASH_CMPS = {
    "<#": lambda a, b: int(a < b),
    ">#": lambda a, b: int(a > b),
    "<=#": lambda a, b: int(a <= b),
    ">=#": lambda a, b: int(a >= b),
    "==#": lambda a, b: int(a == b),
    "/=#": lambda a, b: int(a != b),
}
_INT_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}
_DOUBLE_OPS = {
    "+##": lambda a, b: a + b,
    "-##": lambda a, b: a - b,
    "*##": lambda a, b: a * b,
}
_DOUBLE_CMPS = {
    "<##": lambda a, b: int(a < b),
    "==##": lambda a, b: int(a == b),
}


def _binop(op: str, left: Expr, right: Expr) -> Expr:
    return EApp(EApp(EVar(op), left), right)


def _curry(fn: Callable[..., object], arity: int) -> object:
    """View an n-ary Python function as a curried chain of 1-ary closures."""
    if arity == 0:
        return fn()

    def take(collected: Tuple[object, ...]):
        def step(value: object):
            got = collected + (value,)
            if len(got) == arity:
                return fn(*got)
            return take(got)
        return step
    return take(())


def _dead(env: Env) -> object:
    raise GeneratorError(
        "the reference semantics reached code the generator placed as dead")


def render_value(type_: SType, value: object) -> Optional[str]:
    """Render a reference value the way the evaluator's ``show`` would.

    Returns None for types without a canonical printed form (functions).
    """
    if isinstance(type_, FunTy):
        return None
    if type_ == INT_HASH_TY:
        return f"{value}#"
    if type_ == DOUBLE_HASH_TY:
        return f"{value}##"
    if type_ == INT_TY:
        return f"(I# {value}#)"
    if type_ == BOOL_TY:
        return "True" if value else "False"
    if type_ == STRING_TY:
        return repr(value)
    if type_ == MAYBE_INT_TY:
        return "Nothing" if value is None else f"(Just (I# {value}#))"
    if isinstance(type_, UnboxedTupleTy):
        parts = [render_value(component, item)
                 for component, item in zip(type_.components, value)]
        if any(part is None for part in parts):
            return None
        return f"(# {', '.join(parts)} #)"
    return None


# ---------------------------------------------------------------------------
# Generation context
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Ctx:
    """What the expression generator may use at the current position."""

    vars: Tuple[Tuple[str, SType], ...] = ()
    depth: int = 4
    #: The expression will actually be evaluated by ``main`` — no calls to
    #: ``error``/``undefined``/unsafe bindings outside provably dead spots.
    runnable: bool = True
    #: Stay inside the compilable L fragment.
    fragment: bool = False
    #: The enclosing binding has no signature: every sub-expression must
    #: pin its type without help (annotated lambda binders, no bare
    #: ``Nothing``), so inference lands exactly on the intended type.
    anchored: bool = False
    #: Keep integer magnitudes tiny (conversion operands, loop bounds).
    small: bool = False

    def with_var(self, name: str, type_: SType) -> "_Ctx":
        kept = tuple((n, t) for n, t in self.vars if n != name)
        return replace(self, vars=kept + ((name, type_),))

    def deeper(self) -> "_Ctx":
        return replace(self, depth=self.depth - 1)


@dataclass(frozen=True)
class _TopBinding:
    """A helper binding earlier in the module, available for calls."""

    name: str
    type: SType
    #: Curried reference value (a Python closure chain for functions).
    ref: object
    #: May ``main``'s live call graph reach this binding?
    safe: bool
    #: Stays inside the L fragment (so fragment programs may call it).
    fragment: bool
    #: Per-parameter generation hints (``"small"`` bounds loop counters).
    hints: Tuple[Optional[str], ...] = ()


def _param_types(type_: SType) -> Tuple[List[SType], SType]:
    params: List[SType] = []
    current = type_
    while isinstance(current, FunTy):
        params.append(current.argument)
        current = current.result
    return params, current


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------


class ProgramGenerator:
    """Type-directed program synthesis over one :class:`Choices` stream."""

    def __init__(self, choices: Choices,
                 options: Optional[GenOptions] = None) -> None:
        self.choices = choices
        self.options = options or GenOptions()
        self._counter = 0
        self._bindings: List[_TopBinding] = []

    # -- small utilities -----------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _int_value(self, ctx: _Ctx) -> int:
        if ctx.small:
            return self.choices.int_between(-9, 99)
        if self.options.big_literals and self.choices.chance(0.07):
            magnitude = self.choices.int_between(10 ** 14, 10 ** 18)
            return -magnitude if self.choices.chance(0.3) else magnitude
        return self.choices.int_between(-99, 99)

    def _double_value(self) -> float:
        # Eighths of small integers render without exponents and round-trip
        # the lexer exactly.
        return self.choices.int_between(-800, 800) / 8.0

    def _string_value(self) -> str:
        return f"s{self.choices.int_between(0, 99)}"

    # -- leaves ---------------------------------------------------------------

    def _leaves(self, target: SType, ctx: _Ctx) -> List[Callable]:
        out: List[Callable] = []
        if target == INT_HASH_TY:
            out.append(lambda: self._const(ELitIntHash, self._int_value(ctx)))
        elif target == INT_TY:
            out.append(lambda: self._const(ELitInt, self._int_value(ctx)))
        elif target == DOUBLE_HASH_TY:
            out.append(lambda: self._const(ELitDoubleHash,
                                           self._double_value()))
        elif target == BOOL_TY:
            out.append(lambda: self._bool_leaf())
        elif target == STRING_TY:
            out.append(lambda: self._const(ELitString, self._string_value()))
        elif target == MAYBE_INT_TY:
            out.append(lambda: self._just_leaf(ctx))
            if not ctx.anchored:
                out.append(lambda: (EVar("Nothing"), lambda env: None))
        elif isinstance(target, UnboxedTupleTy):
            out.append(lambda: self._tuple_node(target,
                                                replace(ctx, depth=0)))
        for name, type_ in ctx.vars:
            if type_ == target:
                out.append(self._var_leaf(name))
        return out

    @staticmethod
    def _const(node, value):
        return node(value), (lambda env: value)

    def _bool_leaf(self):
        value = self.choices.chance(0.5)
        return EBool(value), (lambda env: value)

    def _just_leaf(self, ctx: _Ctx):
        value = self._int_value(ctx)
        return EApp(EVar("Just"), ELitInt(value)), (lambda env: value)

    @staticmethod
    def _var_leaf(name: str):
        return lambda: (EVar(name), (lambda env, _n=name: env[_n]))

    # -- the main dispatch ----------------------------------------------------

    def gen(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        if isinstance(target, FunTy):
            return self._gen_function(target, ctx)
        leaves = self._leaves(target, ctx)
        if ctx.depth <= 0:
            return self.choices.pick(leaves)()
        nodes = self._nodes(target, ctx)
        if nodes and self.choices.chance(0.75):
            return self.choices.pick(nodes)()
        return self.choices.pick(leaves)()

    # -- compound nodes -------------------------------------------------------

    def _nodes(self, target: SType, ctx: _Ctx) -> List[Callable]:
        inner = ctx.deeper()
        out: List[Callable] = []

        if target == INT_HASH_TY:
            out.extend(self._int_hash_nodes(inner))
        elif target == INT_TY:
            out.extend(self._int_nodes(inner))
        elif target == DOUBLE_HASH_TY:
            out.extend(self._double_nodes(inner))
        elif target == BOOL_TY:
            out.extend(self._bool_nodes(inner))
        elif target == STRING_TY and not ctx.fragment:
            out.append(lambda: self._op_node("appendString", STRING_TY,
                                             STRING_TY, inner,
                                             lambda a, b: a + b))
        elif isinstance(target, UnboxedTupleTy) and not ctx.fragment:
            out.append(lambda: self._tuple_node(target, inner))

        # Structural forms available at (almost) every target type.
        out.append(lambda: self._let_node(target, inner))
        out.append(lambda: self._case_node(target, inner))
        out.append(lambda: self._app_node(target, inner))
        out.append(lambda: (lambda pair:
                            (EAnn(pair[0], target), pair[1]))(
                                self.gen(target, inner)))
        calls = self._call_builders(target, inner)
        out.extend(calls)
        if not ctx.fragment:
            out.append(lambda: self._if_node(target, inner))
            out.append(lambda: self._dollar_node(target, inner))
            out.append(lambda: self._one_shot_node(target, inner))
            out.append(lambda: self._run_rw_node(target, inner))
            if not ctx.small:
                out.append(lambda: self._compose_node(target, inner))
            if ctx.runnable:
                out.append(lambda: self._dead_branch_node(target, inner))
                out.append(lambda: self._dead_let_node(target, inner))
            else:
                out.append(lambda: self._bottom_node(target))
        return out

    def _bottom_node(self, target: SType) -> Tuple[Expr, RefFn]:
        """⊥ at any representation — only reachable from dead bindings.

        Always annotated: a bare ⊥ has a free representation variable, and
        in an unconstrained position (unsigned let rhs, unused argument)
        rep-defaulting would pin it to LiftedRep — a type error at an
        unboxed target, or a levity violation at a lambda binder.
        """
        choices = ["error", "undefined"]
        levity = [binding for binding in self._bindings
                  if binding.type == LEVITY_POLY_SIG]
        if levity:
            choices.append("levity-call")
        choice = self.choices.pick(choices)
        if choice == "undefined":
            bottom: Expr = EVar("undefined")
        elif choice == "levity-call":
            binding = self.choices.pick(levity)
            bottom = EApp(EVar(binding.name),
                          ELitString(self._string_value()))
        else:
            bottom = EApp(EVar("error"), ELitString(self._string_value()))
        return EAnn(bottom, target), _dead

    # scalar-specific producers ------------------------------------------------

    def _op_node(self, op: str, operand: SType, result: SType, ctx: _Ctx,
                 semantics) -> Tuple[Expr, RefFn]:
        left, left_ref = self.gen(operand, ctx)
        right, right_ref = self.gen(operand, ctx)
        return (_binop(op, left, right),
                lambda env: semantics(left_ref(env), right_ref(env)))

    def _unary_node(self, op: str, operand: SType, ctx: _Ctx,
                    semantics) -> Tuple[Expr, RefFn]:
        inner, inner_ref = self.gen(operand, ctx)
        return EApp(EVar(op), inner), (lambda env: semantics(inner_ref(env)))

    def _int_hash_nodes(self, ctx: _Ctx) -> List[Callable]:
        def arith():
            op = self.choices.pick(sorted(_INT_HASH_OPS))
            return self._op_node(op, INT_HASH_TY, INT_HASH_TY, ctx,
                                 _INT_HASH_OPS[op])

        def compare():
            op = self.choices.pick(sorted(_INT_HASH_CMPS))
            return self._op_node(op, INT_HASH_TY, INT_HASH_TY, ctx,
                                 _INT_HASH_CMPS[op])

        def double_compare():
            op = self.choices.pick(sorted(_DOUBLE_CMPS))
            return self._op_node(op, DOUBLE_HASH_TY, INT_HASH_TY, ctx,
                                 _DOUBLE_CMPS[op])

        def quot_rem():
            # The divisor is a non-zero *literal*: quot/rem by zero is
            # bottom (§ satellite: unified across evaluator, machine and
            # reference), and a dynamic zero would poison the reference
            # value of every enclosing expression.
            op = self.choices.pick(["quotInt#", "remInt#"])
            semantics = _exact_quot if op == "quotInt#" else _exact_rem
            left, left_ref = self.gen(INT_HASH_TY, ctx)
            divisor = self._int_value(ctx)
            if divisor == 0:
                divisor = 7
            return (apply(EVar(op), left, ELitIntHash(divisor)),
                    lambda env: semantics(left_ref(env), divisor))

        def negate():
            return self._unary_node("negateInt#", INT_HASH_TY, ctx,
                                    lambda a: -a)

        def unbox():
            return self._unbox_case_node(INT_HASH_TY, ctx)

        if ctx.fragment:
            # With fix + primops in L/M the fragment covers the whole
            # Int# primop set; only Double# comparisons stay out (their
            # operand type is not in the fragment).
            return [arith, compare, quot_rem, negate, unbox]
        return [arith, compare, double_compare, quot_rem, negate, unbox]

    def _unbox_case_node(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        """``case <Int expr> of { I# x -> <Int# expr using x> }``."""
        scrutinee, scrutinee_ref = self.gen(INT_TY, ctx)
        binder = self._fresh("u")
        body_ctx = ctx.with_var(binder, INT_HASH_TY)
        body, body_ref = self.gen(target, body_ctx)
        expr = ECase(scrutinee, [Alternative("I#", [binder], body)])
        return expr, (lambda env:
                      body_ref({**env, binder: scrutinee_ref(env)}))

    def _int_nodes(self, ctx: _Ctx) -> List[Callable]:
        def box():
            inner, inner_ref = self.gen(INT_HASH_TY, ctx)
            return EApp(EVar("I#"), inner), inner_ref

        if ctx.fragment:
            return [box]

        def arith():
            op = self.choices.pick(sorted(_INT_OPS))
            return self._op_node(op, INT_TY, INT_TY, ctx, _INT_OPS[op])

        def negate():
            return self._unary_node("negate", INT_TY, ctx, lambda a: -a)

        return [arith, negate, box]

    def _double_nodes(self, ctx: _Ctx) -> List[Callable]:
        def arith():
            op = self.choices.pick(sorted(_DOUBLE_OPS))
            return self._op_node(op, DOUBLE_HASH_TY, DOUBLE_HASH_TY, ctx,
                                 _DOUBLE_OPS[op])

        def divide():
            # The divisor is a non-zero literal, so division is total and
            # float-exact on both sides.
            left, left_ref = self.gen(DOUBLE_HASH_TY, ctx)
            divisor = self._double_value()
            if divisor == 0.0:
                divisor = 8.0
            return (_binop("/##", left, ELitDoubleHash(divisor)),
                    lambda env: left_ref(env) / divisor)

        def negate():
            return self._unary_node("negateDouble#", DOUBLE_HASH_TY, ctx,
                                    lambda a: -a)

        def from_int():
            # Small operands only: float(huge int) could overflow a double.
            inner, inner_ref = self.gen(INT_HASH_TY,
                                        replace(ctx, small=True, depth=1))
            return (EApp(EVar("int2Double#"), inner),
                    lambda env: float(inner_ref(env)))

        return [arith, divide, negate, from_int]

    def _bool_nodes(self, ctx: _Ctx) -> List[Callable]:
        def compare():
            op = self.choices.pick(["eqInt", "ltInt"])
            semantics = (lambda a, b: a == b) if op == "eqInt" \
                else (lambda a, b: a < b)
            left, left_ref = self.gen(INT_TY, ctx)
            right, right_ref = self.gen(INT_TY, ctx)
            return (apply(EVar(op), left, right),
                    lambda env: semantics(left_ref(env), right_ref(env)))

        def negate():
            return self._unary_node("not", BOOL_TY, ctx, lambda a: not a)

        def connective():
            op = self.choices.pick(["&&", "||"])
            semantics = (lambda a, b: a and b) if op == "&&" \
                else (lambda a, b: a or b)
            return self._op_node(op, BOOL_TY, BOOL_TY, ctx, semantics)

        return [compare, negate, connective]

    def _tuple_node(self, target: UnboxedTupleTy,
                    ctx: _Ctx) -> Tuple[Expr, RefFn]:
        pieces = [self.gen(component, ctx)
                  for component in target.components]
        refs = [ref for _, ref in pieces]
        return (EUnboxedTuple([expr for expr, _ in pieces]),
                lambda env: tuple(ref(env) for ref in refs))

    # structural producers ----------------------------------------------------

    def _if_node(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        condition, condition_ref = self.gen(BOOL_TY, ctx)
        consequent, consequent_ref = self.gen(target, ctx)
        alternative, alternative_ref = self.gen(target, ctx)
        return (EIf(condition, consequent, alternative),
                lambda env: consequent_ref(env) if condition_ref(env)
                else alternative_ref(env))

    def _let_node(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        pool = FRAGMENT_TYPES if ctx.fragment else SCALAR_TYPES
        rhs_type = self.choices.pick(list(pool))
        name = self._fresh("v")
        rhs, rhs_ref = self.gen(rhs_type, ctx)
        body, body_ref = self.gen(target, ctx.with_var(name, rhs_type))
        signed = ctx.fragment or self.choices.chance(0.5)
        expr = ELet(name, rhs, body, signature=rhs_type if signed else None)
        return expr, (lambda env:
                      body_ref({**env, name: rhs_ref(env)}))

    def _dead_let_node(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        """A *lazy* let whose rhs is ⊥ — never forced because never used.

        The binder gets a boxed, lifted signature, so the thunk is legal
        (an unboxed let would be strict, and forcing it would crash).
        """
        name = self._fresh("dead")
        rhs = EApp(EVar("error"), ELitString("never forced"))
        body, body_ref = self.gen(target, ctx)
        expr = ELet(name, rhs, body, signature=INT_TY)
        return expr, body_ref

    def _dead_branch_node(self, target: SType,
                          ctx: _Ctx) -> Tuple[Expr, RefFn]:
        """``case K# of { K# -> live ; _ -> error … }`` — a dead branch."""
        key = self.choices.int_between(-9, 9)
        live, live_ref = self.gen(target, ctx)
        dead = EApp(EVar("error"), ELitString("unreachable"))
        expr = ECase(ELitIntHash(key),
                     [Alternative(f"{key}#", [], live),
                      Alternative("_", [], dead)])
        return expr, live_ref

    def _case_node(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        if ctx.fragment:
            # Literal cases lower to L's case-lit form, so the fragment
            # exercises both case shapes the compiler knows about.
            scrutinee_type = self.choices.pick([INT_HASH_TY, INT_TY])
            if scrutinee_type == INT_TY and self.choices.chance(0.5):
                return self._unbox_case_node(target, ctx)
            return self._literal_case_node(target, scrutinee_type, ctx)
        scrutinee_type = self.choices.pick(
            [INT_HASH_TY, INT_TY, BOOL_TY, MAYBE_INT_TY, PAIR_HASH_TY])
        if scrutinee_type == BOOL_TY:
            return self._bool_case_node(target, ctx)
        if scrutinee_type == MAYBE_INT_TY:
            return self._maybe_case_node(target, ctx)
        if scrutinee_type == PAIR_HASH_TY:
            return self._pair_case_node(target, ctx)
        if scrutinee_type == INT_TY and self.choices.chance(0.5):
            return self._unbox_case_node(target, ctx)
        return self._literal_case_node(target, scrutinee_type, ctx)

    def _literal_case_node(self, target: SType, scrutinee_type: SType,
                           ctx: _Ctx) -> Tuple[Expr, RefFn]:
        """Literal alternatives (Int# or boxed Int patterns) plus ``_``."""
        scrutinee, scrutinee_ref = self.gen(scrutinee_type, ctx)
        count = self.choices.int_between(1, 2)
        keys: List[int] = []
        while len(keys) < count:
            key = self.choices.int_between(-9, 9)
            if key not in keys:
                keys.append(key)
        suffix = "#" if scrutinee_type == INT_HASH_TY else ""
        alternatives = []
        branch_refs = []
        for key in keys:
            rhs, rhs_ref = self.gen(target, ctx)
            alternatives.append(Alternative(f"{key}{suffix}", [], rhs))
            branch_refs.append((key, rhs_ref))
        default, default_ref = self.gen(target, ctx)
        alternatives.append(Alternative("_", [], default))

        def ref(env: Env) -> object:
            value = scrutinee_ref(env)
            for key, rhs_ref in branch_refs:
                if value == key:
                    return rhs_ref(env)
            return default_ref(env)

        return ECase(scrutinee, alternatives), ref

    def _bool_case_node(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        scrutinee, scrutinee_ref = self.gen(BOOL_TY, ctx)
        on_true, true_ref = self.gen(target, ctx)
        on_false, false_ref = self.gen(target, ctx)
        alternatives = [Alternative("True", [], on_true),
                        Alternative("False", [], on_false)]
        if self.choices.chance(0.5):
            alternatives.reverse()
        return (ECase(scrutinee, alternatives),
                lambda env: true_ref(env) if scrutinee_ref(env)
                else false_ref(env))

    def _maybe_case_node(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        scrutinee, scrutinee_ref = self.gen(MAYBE_INT_TY, ctx)
        binder = self._fresh("j")
        just_rhs, just_ref = self.gen(target, ctx.with_var(binder, INT_TY))
        nothing_rhs, nothing_ref = self.gen(target, ctx)
        alternatives = [Alternative("Just", [binder], just_rhs),
                        Alternative("Nothing", [], nothing_rhs)]
        if self.choices.chance(0.5):
            alternatives.reverse()

        def ref(env: Env) -> object:
            value = scrutinee_ref(env)
            if value is None:
                return nothing_ref(env)
            return just_ref({**env, binder: value})

        return ECase(scrutinee, alternatives), ref

    def _pair_case_node(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        scrutinee, scrutinee_ref = self.gen(PAIR_HASH_TY, ctx)
        first, second = self._fresh("t"), self._fresh("t")
        body_ctx = ctx.with_var(first, INT_HASH_TY) \
                      .with_var(second, INT_HASH_TY)
        body, body_ref = self.gen(target, body_ctx)
        expr = ECase(scrutinee, [Alternative("(#,#)", [first, second], body)])

        def ref(env: Env) -> object:
            left, right = scrutinee_ref(env)
            return body_ref({**env, first: left, second: right})

        return expr, ref

    def _app_node(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        """A general application ``f x`` at a generated function type."""
        pool = FRAGMENT_TYPES if ctx.fragment else SCALAR_TYPES
        argument_type = self.choices.pick(list(pool))
        function, function_ref = self.gen(FunTy(argument_type, target), ctx)
        argument, argument_ref = self.gen(argument_type, ctx)
        return (EApp(function, argument),
                lambda env: function_ref(env)(argument_ref(env)))

    def _dollar_node(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        """``f $ x`` — ``x`` lifted, the result at any representation."""
        argument_type = self.choices.pick(list(LIFTED_TYPES))
        function, function_ref = self.gen(FunTy(argument_type, target), ctx)
        argument, argument_ref = self.gen(argument_type, ctx)
        return (_binop("$", function, argument),
                lambda env: function_ref(env)(argument_ref(env)))

    def _one_shot_node(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        pool = SCALAR_TYPES
        argument_type = self.choices.pick(list(pool))
        function, function_ref = self.gen(FunTy(argument_type, target), ctx)
        argument, argument_ref = self.gen(argument_type, ctx)
        return (apply(EVar("oneShot"), function, argument),
                lambda env: function_ref(env)(argument_ref(env)))

    def _run_rw_node(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        """``runRW# (\\s -> e)`` — the state token is the empty tuple."""
        state = self._fresh("s")
        body, body_ref = self.gen(target, ctx)
        return (EApp(EVar("runRW#"), ELam(state, body)), body_ref)

    def _compose_node(self, target: SType, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        middle_type = self.choices.pick(list(LIFTED_TYPES))
        argument_type = self.choices.pick(list(LIFTED_TYPES))
        outer, outer_ref = self.gen(FunTy(middle_type, target), ctx)
        inner, inner_ref = self.gen(FunTy(argument_type, middle_type), ctx)
        argument, argument_ref = self.gen(argument_type, ctx)
        return (apply(EVar("."), outer, inner, argument),
                lambda env: outer_ref(env)(inner_ref(env)(argument_ref(env))))

    def _call_builders(self, target: SType, ctx: _Ctx) -> List[Callable]:
        """Saturated calls to earlier top-level bindings returning target."""
        out: List[Callable] = []
        for binding in self._bindings:
            if ctx.runnable and not binding.safe:
                continue
            if ctx.fragment and not binding.fragment:
                continue
            params, result = _param_types(binding.type)
            if result != target or not params:
                continue
            out.append(self._make_call(binding, params, ctx))
        # Saturated calls through function-typed local variables.
        for name, type_ in ctx.vars:
            params, result = _param_types(type_)
            if result != target or not params:
                continue
            out.append(self._make_var_call(name, params, ctx))
        return out

    def _make_call(self, binding: _TopBinding, params: List[SType],
                   ctx: _Ctx) -> Callable:
        def build() -> Tuple[Expr, RefFn]:
            argument_pairs = []
            for index, param in enumerate(params):
                hint = binding.hints[index] if index < len(binding.hints) \
                    else None
                if hint == "small":
                    value = self.choices.int_between(0, 40)
                    argument_pairs.append(
                        (ELitIntHash(value), lambda env, _v=value: _v))
                else:
                    argument_pairs.append(self.gen(param, ctx))
            refs = [ref for _, ref in argument_pairs]

            def ref(env: Env, _refs=refs, _fn=binding.ref) -> object:
                value = _fn
                for argument_ref in _refs:
                    value = value(argument_ref(env))
                return value

            return (apply(EVar(binding.name),
                          *[expr for expr, _ in argument_pairs]), ref)
        return build

    def _make_var_call(self, name: str, params: List[SType],
                       ctx: _Ctx) -> Callable:
        def build() -> Tuple[Expr, RefFn]:
            argument_pairs = [self.gen(param, ctx) for param in params]
            refs = [ref for _, ref in argument_pairs]

            def ref(env: Env) -> object:
                value = env[name]
                for argument_ref in refs:
                    value = value(argument_ref(env))
                return value

            return (apply(EVar(name),
                          *[expr for expr, _ in argument_pairs]), ref)
        return build

    # -- function-typed targets ------------------------------------------------

    _SECTION_TYPES: Dict[str, SType] = {}

    def _section_candidates(self, target: SType) -> List[str]:
        if not ProgramGenerator._SECTION_TYPES:
            table = {
                "+#": fun(INT_HASH_TY, INT_HASH_TY, INT_HASH_TY),
                "-#": fun(INT_HASH_TY, INT_HASH_TY, INT_HASH_TY),
                "*#": fun(INT_HASH_TY, INT_HASH_TY, INT_HASH_TY),
                "+": fun(INT_TY, INT_TY, INT_TY),
                "*": fun(INT_TY, INT_TY, INT_TY),
                "negate": fun(INT_TY, INT_TY),
                "negateInt#": fun(INT_HASH_TY, INT_HASH_TY),
                "not": fun(BOOL_TY, BOOL_TY),
                "I#": fun(INT_HASH_TY, INT_TY),
            }
            ProgramGenerator._SECTION_TYPES = table
        return [name for name, type_
                in ProgramGenerator._SECTION_TYPES.items()
                if type_ == target]

    _SECTION_SEMANTICS = {
        "+#": _curry(lambda a, b: a + b, 2),
        "-#": _curry(lambda a, b: a - b, 2),
        "*#": _curry(lambda a, b: a * b, 2),
        "+": _curry(lambda a, b: a + b, 2),
        "*": _curry(lambda a, b: a * b, 2),
        "negate": lambda a: -a,
        "negateInt#": lambda a: -a,
        "not": lambda a: not a,
        "I#": lambda a: a,
    }

    def _gen_function(self, target: FunTy, ctx: _Ctx) -> Tuple[Expr, RefFn]:
        leaves: List[Callable] = []
        for name, type_ in ctx.vars:
            if type_ == target:
                leaves.append(self._var_leaf(name))
        for binding in self._bindings:
            if binding.type != target:
                continue
            if ctx.runnable and not binding.safe:
                continue
            if ctx.fragment and not binding.fragment:
                continue
            leaves.append(lambda _b=binding:
                          (EVar(_b.name), lambda env: _b.ref))
        if not ctx.fragment:
            for op in self._section_candidates(target):
                semantics = self._SECTION_SEMANTICS[op]
                leaves.append(lambda _op=op, _s=semantics:
                              (EVar(_op), lambda env: _s))

        def lam() -> Tuple[Expr, RefFn]:
            name = self._fresh("x")
            annotate = ctx.fragment or ctx.anchored or self.choices.chance(0.6)
            body_ctx = ctx.deeper().with_var(name, target.argument)
            body, body_ref = self.gen(target.result, body_ctx)
            expr = ELam(name, body,
                        annotation=target.argument if annotate else None)
            return expr, (lambda env:
                          lambda value: body_ref({**env, name: value}))

        if ctx.depth <= 0 or not self.choices.chance(0.85):
            if leaves and self.choices.chance(0.5):
                return self.choices.pick(leaves)()
            return lam()

        nodes: List[Callable] = [lam]
        if not ctx.fragment:
            def one_shot() -> Tuple[Expr, RefFn]:
                inner, inner_ref = self.gen(target, ctx.deeper())
                return EApp(EVar("oneShot"), inner), inner_ref
            nodes.append(one_shot)
            if isinstance(target, FunTy) and target.argument in LIFTED_TYPES \
                    and not isinstance(target.result, FunTy):
                def compose_section() -> Tuple[Expr, RefFn]:
                    middle = self.choices.pick(list(LIFTED_TYPES))
                    outer, outer_ref = self.gen(FunTy(middle, target.result),
                                                ctx.deeper())
                    inner, inner_ref = self.gen(FunTy(target.argument,
                                                      middle), ctx.deeper())
                    return (apply(EVar("."), outer, inner),
                            lambda env: (lambda value:
                                         outer_ref(env)(
                                             inner_ref(env)(value))))
                nodes.append(compose_section)
        else:
            def fragment_let() -> Tuple[Expr, RefFn]:
                return self._let_node(target, ctx.deeper())
            nodes.append(fragment_let)
        pool = leaves + nodes
        return self.choices.pick(pool)()

    # -- top-level binding flavors ---------------------------------------------

    def _register(self, name: str, type_: SType, ref: object, safe: bool,
                  fragment: bool,
                  hints: Tuple[Optional[str], ...] = ()) -> None:
        self._bindings.append(
            _TopBinding(name, type_, ref, safe, fragment, hints))

    def _fn_binding(self, name: str, param_types: List[SType],
                    result_type: SType, ctx: _Ctx,
                    signed: bool = True) -> Tuple[List[Decl], SType]:
        params = [self._fresh("p") for _ in param_types]
        body_ctx = replace(ctx, vars=tuple(zip(params, param_types)),
                           depth=self.options.depth,
                           anchored=not signed)
        body, body_ref = self.gen(result_type, body_ctx)
        full_type = fun(*param_types, result_type) if param_types \
            else result_type
        decls: List[Decl] = []
        if signed:
            decls.append(TypeSig(name, full_type))
        decls.append(FunBind(name, params, body))
        if params:
            ref: object = _curry(
                lambda *values: body_ref(dict(zip(params, values))),
                len(params))
        else:
            ref = body_ref({})
        self._register(name, full_type, ref, safe=ctx.runnable,
                       fragment=ctx.fragment)
        return decls, full_type

    def _flavor_arith_hash(self, ctx: _Ctx):
        name = self._fresh("hash")
        arity = self.choices.int_between(1, 3)
        return name, self._fn_binding(name, [INT_HASH_TY] * arity,
                                      INT_HASH_TY, ctx)

    def _flavor_arith_boxed(self, ctx: _Ctx):
        name = self._fresh("boxed")
        arity = self.choices.int_between(1, 2)
        return name, self._fn_binding(name, [INT_TY] * arity, INT_TY, ctx)

    def _flavor_double(self, ctx: _Ctx):
        name = self._fresh("dbl")
        return name, self._fn_binding(name, [DOUBLE_HASH_TY],
                                      DOUBLE_HASH_TY, ctx)

    def _flavor_bool(self, ctx: _Ctx):
        name = self._fresh("pred")
        return name, self._fn_binding(name, [INT_TY], BOOL_TY, ctx)

    def _flavor_box(self, ctx: _Ctx):
        name = self._fresh("box")
        return name, self._fn_binding(name, [INT_HASH_TY], INT_TY, ctx)

    def _flavor_unbox(self, ctx: _Ctx):
        name = self._fresh("unbox")
        return name, self._fn_binding(name, [INT_TY], INT_HASH_TY, ctx)

    def _flavor_pair(self, ctx: _Ctx):
        name = self._fresh("pair")
        target = self.choices.pick([PAIR_HASH_TY, MIXED_PAIR_TY])
        return name, self._fn_binding(name, [INT_HASH_TY], target, ctx)

    def _flavor_higher(self, ctx: _Ctx):
        name = self._fresh("ho")
        inner = self.choices.pick([fun(INT_TY, INT_TY),
                                   fun(INT_HASH_TY, INT_HASH_TY)])
        result = inner.result
        return name, self._fn_binding(name, [inner, inner.argument],
                                      result, ctx)

    def _flavor_string(self, ctx: _Ctx):
        name = self._fresh("str")
        return name, self._fn_binding(name, [STRING_TY], STRING_TY, ctx)

    def _flavor_const(self, ctx: _Ctx):
        """A zero-parameter binding, sometimes *unsigned* (anchored mode)."""
        name = self._fresh("val")
        pool = FRAGMENT_TYPES if ctx.fragment else SCALAR_TYPES
        result = self.choices.pick(list(pool))
        signed = ctx.fragment or self.choices.chance(0.5)
        return name, self._fn_binding(name, [], result, ctx, signed=signed)

    def _flavor_loop(self, ctx: _Ctx):
        """A structurally terminating counted loop.

        Now that ``fix`` is in L, loops are fragment-eligible: they
        lower, compile and run on the M machine like everything else.
        """
        name = self._fresh("loop")
        step = self.choices.int_between(1, 5)
        kind = self.choices.pick(["sum", "sum_scaled", "count"])
        factor = self.choices.int_between(2, 9)
        if kind == "sum":
            update = _binop("+#", EVar("acc"), EVar("n"))
            advance = lambda acc, n: acc + n
        elif kind == "sum_scaled":
            update = _binop("+#", EVar("acc"),
                            _binop("*#", EVar("n"), ELitIntHash(factor)))
            advance = lambda acc, n: acc + n * factor
        else:
            update = _binop("+#", EVar("acc"), ELitIntHash(1))
            advance = lambda acc, n: acc + 1
        body = ECase(
            _binop("<=#", EVar("n"), ELitIntHash(0)),
            [Alternative("1#", [],  EVar("acc")),
             Alternative("_", [],
                         apply(EVar(name), update,
                               _binop("-#", EVar("n"), ELitIntHash(step))))])
        full_type = fun(INT_HASH_TY, INT_HASH_TY, INT_HASH_TY)

        def run(acc: int, n: int) -> int:
            while n > 0:
                acc = advance(acc, n)
                n -= step
            return acc

        decls = [TypeSig(name, full_type),
                 FunBind(name, ["acc", "n"], body)]
        self._register(name, full_type, _curry(run, 2), safe=True,
                       fragment=True, hints=(None, "small"))
        return name, (decls, full_type)

    def _flavor_levity(self, ctx: _Ctx):
        """An error-like levity-polymorphic binding (never called live)."""
        name = self._fresh("err")
        parameter = self._fresh("msg")
        variant = self.choices.pick(["error", "errorWithoutStackTrace",
                                     "append", "dollar"])
        if variant == "append":
            rhs: Expr = EApp(EVar("error"),
                             apply(EVar("appendString"), EVar(parameter),
                                   ELitString("!")))
        elif variant == "dollar":
            rhs = _binop("$", EVar("error"), EVar(parameter))
        else:
            rhs = EApp(EVar(variant), EVar(parameter))
        decls = [TypeSig(name, LEVITY_POLY_SIG),
                 FunBind(name, [parameter], rhs)]
        self._register(name, LEVITY_POLY_SIG, _dead, safe=False,
                       fragment=False)
        return name, (decls, LEVITY_POLY_SIG)

    def _flavor_deadcode(self, ctx: _Ctx):
        """A binding main never calls; ⊥ may appear anywhere inside it."""
        name = self._fresh("unsafe")
        result = self.choices.pick(list(SCALAR_TYPES))
        dead_ctx = replace(ctx, runnable=False)
        return name, self._fn_binding(name, [INT_TY], result, dead_ctx)

    # -- whole programs ---------------------------------------------------------

    _FULL_FLAVORS = ("arith_hash", "arith_boxed", "double", "bool", "box",
                     "unbox", "pair", "higher", "string", "const", "loop",
                     "levity", "deadcode")
    _FRAGMENT_FLAVORS = ("frag_fn", "frag_const", "loop")

    def _helper_binding(self, flavor: str, ctx: _Ctx):
        if flavor == "arith_hash":
            return self._flavor_arith_hash(ctx)
        if flavor == "arith_boxed":
            return self._flavor_arith_boxed(ctx)
        if flavor == "double":
            return self._flavor_double(ctx)
        if flavor == "bool":
            return self._flavor_bool(ctx)
        if flavor == "box":
            return self._flavor_box(ctx)
        if flavor == "unbox":
            return self._flavor_unbox(ctx)
        if flavor == "pair":
            return self._flavor_pair(ctx)
        if flavor == "higher":
            return self._flavor_higher(ctx)
        if flavor == "string":
            return self._flavor_string(ctx)
        if flavor == "loop":
            return self._flavor_loop(ctx)
        if flavor == "levity":
            return self._flavor_levity(ctx)
        if flavor == "deadcode":
            return self._flavor_deadcode(ctx)
        if flavor == "frag_fn":
            name = self._fresh("fn")
            arity = self.choices.int_between(1, 2)
            types = [self.choices.pick(list(FRAGMENT_TYPES))
                     for _ in range(arity)]
            result = self.choices.pick(list(FRAGMENT_TYPES))
            return name, self._fn_binding(name, types, result, ctx)
        return self._flavor_const(ctx)

    def program(self, index: int,
                filename: Optional[str] = None) -> GenProgram:
        """Generate one complete program."""
        self._counter = 0
        self._bindings = []
        fragment = self.choices.chance(self.options.fragment_bias)
        base_ctx = _Ctx(depth=self.options.depth, fragment=fragment)

        decls: List[Decl] = []
        intended: Dict[str, SType] = {}
        unsigned: List[str] = []
        flavors: List[str] = []
        helper_count = self.choices.int_between(1, self.options.max_bindings)
        flavor_pool = self._FRAGMENT_FLAVORS if fragment \
            else self._FULL_FLAVORS
        for _ in range(helper_count):
            flavor = self.choices.pick(list(flavor_pool))
            flavors.append(flavor)
            name, (binding_decls, full_type) = self._helper_binding(
                flavor, base_ctx)
            decls.extend(binding_decls)
            intended[name] = full_type
            if not any(isinstance(decl, TypeSig) and decl.name == name
                       for decl in binding_decls):
                unsigned.append(name)

        main_type = self._main_type(fragment)
        main_ctx = replace(base_ctx, depth=self.options.depth)
        body, body_ref = self.gen(main_type, main_ctx)
        decls.append(TypeSig("main", main_type))
        decls.append(FunBind("main", [], body))
        intended["main"] = main_type

        if isinstance(main_type, FunTy):
            expected: Optional[str] = None
        else:
            try:
                expected = render_value(main_type, body_ref({}))
            except GeneratorError:
                raise
            except Exception as exc:  # pragma: no cover - generator bug
                raise GeneratorError(
                    f"reference semantics crashed: {exc!r}") from exc

        module = Module("Main", decls)
        name = filename or f"fuzz_{index:05d}.lev"
        lines = [f"-- generated by repro.fuzz (program {index})"]
        lines.extend(decl.pretty() for decl in decls)
        source = "\n".join(lines) + "\n"
        return GenProgram(
            filename=name, source=source, module=module, intended=intended,
            unsigned=frozenset(unsigned), fragment=fragment,
            main_type=main_type, expected_value=expected,
            flavors=tuple(flavors))

    def _main_type(self, fragment: bool) -> SType:
        if fragment:
            if self.choices.chance(0.15):
                argument = self.choices.pick(list(FRAGMENT_TYPES))
                result = self.choices.pick(list(FRAGMENT_TYPES))
                return FunTy(argument, result)
            return self.choices.pick(list(FRAGMENT_TYPES))
        roll = self.choices.int_between(0, 99)
        if roll < 30:
            return INT_HASH_TY
        if roll < 55:
            return INT_TY
        if roll < 65:
            return DOUBLE_HASH_TY
        if roll < 75:
            return BOOL_TY
        if roll < 85:
            return self.choices.pick([PAIR_HASH_TY, MIXED_PAIR_TY])
        if roll < 90:
            return MAYBE_INT_TY
        if roll < 95:
            return STRING_TY
        argument = self.choices.pick(list(SCALAR_TYPES))
        result = self.choices.pick(list(SCALAR_TYPES))
        return FunTy(argument, result)


# ---------------------------------------------------------------------------
# Seeded entry points
# ---------------------------------------------------------------------------


def generate_program(seed: int, index: int,
                     options: Optional[GenOptions] = None,
                     prefix: str = "fuzz") -> GenProgram:
    """Deterministically generate program ``index`` of corpus ``seed``."""
    rng = random.Random(f"repro-fuzz:{seed}:{index}")
    generator = ProgramGenerator(Choices(rng), options)
    return generator.program(index, filename=f"{prefix}_{index:05d}.lev")


def generate_corpus(seed: int, count: int,
                    options: Optional[GenOptions] = None,
                    prefix: str = "fuzz") -> List[GenProgram]:
    """A reproducible corpus: program ``i`` depends only on ``(seed, i)``."""
    return [generate_program(seed, index, options, prefix)
            for index in range(count)]
