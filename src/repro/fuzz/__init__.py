"""Corpus fuzzing: type-directed program generation + differential checking.

* :mod:`repro.fuzz.generator` — synthesize well-typed ``.lev`` programs by
  construction, together with independent reference semantics;
* :mod:`repro.fuzz.harness` — the differential oracles (type-check /
  round-trip / run / reference value / evaluator↔M-machine);
* :mod:`repro.fuzz.strategies` — hypothesis strategies and shrinking.

See ``docs/FUZZ.md`` for the design and the oracle table, and
``python -m repro fuzz --help`` for the CLI.
"""

from .generator import (
    Choices,
    GenOptions,
    GenProgram,
    GeneratorError,
    ProgramGenerator,
    generate_corpus,
    generate_program,
    render_value,
)
from .harness import DifferentialHarness, FuzzFailure, FuzzReport
from .strategies import (
    HAVE_HYPOTHESIS,
    generated_programs,
    save_counterexample,
    shrink_counterexample,
)

__all__ = [
    "Choices",
    "DifferentialHarness",
    "FuzzFailure",
    "FuzzReport",
    "GenOptions",
    "GenProgram",
    "GeneratorError",
    "HAVE_HYPOTHESIS",
    "ProgramGenerator",
    "generate_corpus",
    "generate_program",
    "generated_programs",
    "render_value",
    "save_counterexample",
    "shrink_counterexample",
]
