"""The differential harness: generated programs against six oracles.

Every generated program (:class:`repro.fuzz.generator.GenProgram`) carries
its intended binding types, a reference value for ``main`` and a flag saying
whether it was generated inside the compilable L fragment.  The harness
drives each program through the real pipeline and checks:

=================  ==========================================================
oracle             property checked
=================  ==========================================================
``typecheck``      the program parses and type-checks; inference lands on the
                   generator's intended type for **every** binding (rendered
                   schemes compared exactly — including the deliberately
                   unsigned bindings, whose type inference must reconstruct)
``roundtrip``      ``parse(source)`` equals the generated AST, and
                   ``parse(pretty(parse(source)))`` is a fixpoint — the
                   printer and parser stay inverses over the whole grammar
``run``            ``main`` evaluates without error on the cost-model
                   evaluator
``reference``      the evaluator's value equals the generator's independent
                   reference semantics (exact integers — this is the oracle
                   that caught the ``quotInt#`` float-precision bug)
``differential``   every entry that lowers runs on the Figure-7 M machine
                   and must agree with the evaluator (agreement on ⊥
                   included); fragment-mode programs *must* engage the
                   machine (a silently skipped cross-check is itself a
                   failure), and skips vs not-comparable results are
                   counted separately (``machine_engaged`` /
                   ``machine_not_comparable`` /
                   ``machine_skipped_out_of_fragment``)
``validate``       per-program translation validation
                   (:mod:`repro.validate`): each recorded L step is
                   compiled and discharged as a §6.3 joinability
                   obligation, plus an uncapped end-to-end answer check
=================  ==========================================================

The type-check pass can be fanned out through the sharded batch checker
(``jobs=``/``cache=`` are forwarded to
:meth:`repro.driver.session.Session.check_many`), which is how the CLI and
``bench_e14`` run 1000+-program corpora.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import ParseError
from ..driver.session import CheckResult, DriverOptions, Session
from ..frontend.parser import parse_module
from ..infer.schemes import Scheme
from ..pretty.printer import render_scheme
from .generator import GenProgram

__all__ = [
    "DifferentialHarness",
    "FuzzFailure",
    "FuzzReport",
]


@dataclass(frozen=True)
class FuzzFailure:
    """One oracle violation on one generated program."""

    oracle: str      # "typecheck" | "roundtrip" | "run" | "reference"
    #                # | "differential" | "validate"
    filename: str
    message: str
    source: str

    def pretty(self) -> str:
        return f"[{self.oracle}] {self.filename}: {self.message}"


@dataclass
class FuzzReport:
    """Outcome of a corpus run."""

    programs: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def bump(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    def pretty(self, max_failures: int = 5) -> str:
        lines = [f"fuzz: {self.programs} program(s), "
                 f"{len(self.failures)} failure(s)"]
        for key in sorted(self.counters):
            lines.append(f"  {key}: {self.counters[key]}")
        for failure in self.failures[:max_failures]:
            lines.append(failure.pretty())
            lines.append("--- source " + "-" * 40)
            lines.append(failure.source.rstrip())
            lines.append("-" * 51)
        if len(self.failures) > max_failures:
            lines.append(f"... and {len(self.failures) - max_failures} more")
        return "\n".join(lines)


class DifferentialHarness:
    """Run generated programs through the pipeline and all oracles."""

    def __init__(self, options: Optional[DriverOptions] = None,
                 session: Optional[Session] = None,
                 validate: bool = True,
                 align_steps: int = 12) -> None:
        self.session = session or Session(options)
        #: Discharge the per-program Simulation obligations (the sixth
        #: oracle) for every program that engages the machine.  The small
        #: ``align_steps`` default keeps corpus runs inside a test-suite
        #: time budget; the end-to-end answer comparison is uncapped.
        self.validate = validate
        self.align_steps = align_steps

    # -- single programs -------------------------------------------------------

    def check_program(self, program: GenProgram,
                      check: Optional[CheckResult] = None,
                      report: Optional[FuzzReport] = None
                      ) -> List[FuzzFailure]:
        """All oracle violations for one program (empty list = clean)."""
        failures: List[FuzzFailure] = []

        def fail(oracle: str, message: str) -> None:
            failures.append(FuzzFailure(oracle, program.filename, message,
                                        program.source))

        if check is None:
            check = self.session.check(program.source, program.filename)
        if not check.ok:
            fail("typecheck", "; ".join(d.pretty() for d in check.errors))
            return failures
        self._check_intended_types(program, check, fail)
        self._check_roundtrip(program, fail)
        self._check_execution(program, fail, report, check)
        return failures

    def _check_intended_types(self, program: GenProgram, check: CheckResult,
                              fail) -> None:
        printer_options = self.session.options.printer_options()
        rendered_by_name = {binding.name: binding.rendered
                            for binding in check.bindings}
        for name, intended in program.intended.items():
            want = render_scheme(Scheme.from_type(intended), printer_options)
            got = rendered_by_name.get(name)
            if got != want:
                kind = "unsigned " if name in program.unsigned else ""
                fail("typecheck",
                     f"{kind}binding {name!r} inferred {got!r}, the "
                     f"generator intended {want!r}")

    def _check_roundtrip(self, program: GenProgram, fail) -> None:
        try:
            reparsed = parse_module(program.source, program.filename).module
        except ParseError as exc:
            fail("roundtrip", f"generated source failed to re-parse: {exc}")
            return
        if reparsed != program.module:
            fail("roundtrip",
                 "parse(source) differs from the generated AST")
            return
        printed = reparsed.pretty()
        try:
            again = parse_module(printed, program.filename).module
        except ParseError as exc:
            fail("roundtrip",
                 f"pretty-printed module failed to re-parse: {exc}\n"
                 f"--- printed ---\n{printed}")
            return
        if again != reparsed:
            fail("roundtrip", "parse . pretty is not a fixpoint")

    def _check_execution(self, program: GenProgram, fail,
                         report: Optional[FuzzReport],
                         check: Optional[CheckResult] = None) -> None:
        if check is not None and check.parsed is not None:
            # Full in-process results carry the parse tree and schemes, so
            # the run stage must not pay for a second parse+infer pass.
            run = self.session.run_from_check(check)
        else:
            # Slim results (sharded workers / cache hits) cannot seed the
            # evaluator; re-check in-process for the execution oracles.
            run = self.session.run(program.source, program.filename)
        if not run.ok:
            fail("run", "; ".join(d.pretty() for d in run.check.errors))
            return
        if program.expected_value is not None \
                and run.value != program.expected_value:
            fail("reference",
                 f"evaluator produced {run.value!r}, the reference "
                 f"semantics computed {program.expected_value!r}")
        if run.machine_agrees is False:
            fail("differential",
                 f"M machine produced {run.machine_value!r} "
                 f"({run.machine_steps} steps), the evaluator produced "
                 f"{run.value!r}")
        # The cross-check outcome is genuinely three-valued, and the old
        # `machine_agrees is None` test conflated two of them: "the
        # machine ran but the result is a function" and "the machine
        # never ran".  `machine_skipped` separates them.
        engaged = run.machine_value is not None
        if program.fragment and not engaged:
            fail("differential",
                 "fragment-mode program skipped the machine cross-check: "
                 + (run.machine_skipped
                    or "no lowering diagnostic recorded"))
        if report is not None:
            if engaged:
                report.bump("machine_engaged")
                if run.machine_agrees is None:
                    report.bump("machine_not_comparable")
            elif run.machine_skipped is not None:
                report.bump("machine_skipped_out_of_fragment")
            if program.expected_value is not None:
                report.bump("reference_checked")
        if engaged and self.validate:
            self._check_validation(program, fail, report, run)

    def _check_validation(self, program: GenProgram, fail,
                          report: Optional[FuzzReport], run) -> None:
        """Discharge the per-program Simulation obligations (§6.3)."""
        from ..validate import validate_check

        verdict = validate_check(self.session, run.check,
                                 align_steps=self.align_steps)
        if not verdict.engaged:
            # The entry lowered a moment ago (the machine engaged), so a
            # skip here means L evaluation did not settle inside the
            # validator's budget — informational, not a finding.
            if report is not None:
                report.bump("validation_skipped")
            return
        if report is not None:
            report.bump("validated")
            report.bump("obligations_discharged",
                        verdict.obligations_checked)
        if not verdict.ok:
            fail("validate", verdict.pretty())

    # -- corpora ---------------------------------------------------------------

    def run_corpus(self, programs: Sequence[GenProgram],
                   jobs: Optional[int] = None,
                   cache=None, stats=None) -> FuzzReport:
        """Check a whole corpus; ``jobs``/``cache`` shard the type-check pass
        through :meth:`Session.check_many` — at binding granularity, so a
        re-fuzz over a mostly-unchanged corpus re-checks only the bindings
        that actually changed (``stats`` observes the unit cache exactly as
        ``repro check --stats`` does).  The run/roundtrip oracles are
        inherently in-process."""
        report = FuzzReport()
        checks: List[Optional[CheckResult]]
        if jobs is not None and jobs > 1 or cache is not None \
                or stats is not None:
            checks = list(self.session.check_many(
                [(program.filename, program.source) for program in programs],
                jobs=jobs, cache=cache, stats=stats))
        else:
            checks = [None] * len(programs)
        for program, check in zip(programs, checks):
            report.programs += 1
            if program.fragment:
                report.bump("fragment_programs")
            report.bump("bindings", len(program.intended))
            report.bump("unsigned_bindings", len(program.unsigned))
            report.failures.extend(
                self.check_program(program, check, report))
        return report
