"""Closure-compilation backend: lower type-checked bindings to Python closures.

The tree-walking :class:`~repro.runtime.evaluator.Evaluator` rediscovers the
paper's calling conventions on every step — it re-dispatches on AST node
type, re-derives parameter strictness from the callee, and re-resolves names
through a fallback chain.  This module compiles each type-checked
``FunBind`` *once* into a nested Python closure in which all of that is
baked in at compile time:

* variable access is a Python local (an "environment index"), not a dict
  lookup;
* parameter strictness comes from the scheme's kinds — unboxed/unlifted
  arguments are forced at the call site, lifted arguments are passed as
  pointers (thunked only when the tree-walker would thunk them);
* saturated primop applications call the primop implementation directly;
* literals, nullary constructors and other compile-time-known values are
  pre-built constants;
* saturated tail calls to top-level functions return a :class:`TailCall`
  token that a trampoline in :meth:`CompiledFunction.call` dispatches
  without growing the Python stack.

The compiler's unit of output is *Python source text* (one ``_bind``
definition per binding).  Source text is what the per-unit codegen cache in
``driver/batch.py`` stores (persisted in the ``codegen/`` shard table of
the v4 store, ``driver/store.py``): generating it is the expensive phase, while
``exec`` + linking against a live evaluator is cheap and happens on every
load.  The generated code runs against the same heap and the same value
types as the tree-walker, so compiled and interpreted closures mix freely
(a compiled function may call an interpreted one and vice versa) and every
observable value — including the printed form of closures, thunks and
constructor cells — is identical.  Only the cost counters differ: the
compiled path models no costs, which is the point.

Anything the code generator does not understand falls back, per binding, to
the tree-walker (:class:`FallbackFunction`), so ``compiled=True`` is always
safe to request.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..telemetry import REGISTRY as _REGISTRY, TRACER as _TRACER
from ..surface.ast import (
    EAnn,
    EApp,
    EBool,
    ECase,
    EIf,
    ELam,
    ELet,
    ELitChar,
    ELitDoubleHash,
    ELitInt,
    ELitIntHash,
    ELitString,
    EUnboxedTuple,
    EVar,
    Expr,
)
from .evaluator import (
    CONSTRUCTOR_ARITIES,
    PRIMOP_TABLE,
    _BOXED_HELPERS,
    _is_strict_type,
    ProgramFunction,
)
from .values import (
    CompiledClosure,
    ConstructorCell,
    HeapRef,
    StringValue,
    Thunk,
    UnboxedDouble,
    UnboxedInt,
    UnboxedTupleValue,
)

__all__ = [
    "CompiledFunction",
    "CompiledProgram",
    "FallbackFunction",
    "TailCall",
    "UnsupportedExpression",
    "generate_function_source",
    "generate_expression_source",
    "CODEGEN_VERSION",
]

#: Bump when the code generator's output changes shape: the driver folds this
#: into the on-disk codegen cache key, so stale generated code is never
#: re-linked after a compiler change.
CODEGEN_VERSION = 1

#: Sentinel returned by :meth:`CompiledProgram.eval_expression` when the
#: expression cannot be compiled and the caller should tree-walk instead.
FALLBACK = object()

_MISSING = object()


class UnsupportedExpression(Exception):
    """Raised during codegen for constructs the compiler does not lower."""


# ---------------------------------------------------------------------------
# Runtime pieces referenced by generated code
# ---------------------------------------------------------------------------


class TailCall:
    """A saturated tail call, returned to the trampoline instead of made."""

    __slots__ = ("target", "args")

    def __init__(self, target, args):
        self.target = target
        self.args = args


class CompiledFunction:
    """A compiled top-level binding (or lambda) with its convention baked in."""

    __slots__ = ("name", "arity", "param_strict", "body", "runtime",
                 "_coerce", "_value_ref")

    def __init__(self, name: str, arity: int, param_strict: Tuple[bool, ...],
                 body: Callable, runtime) -> None:
        self.name = name
        self.arity = arity
        self.param_strict = param_strict
        self.body = body
        self.runtime = runtime           # the owning Evaluator
        self._coerce = any(param_strict)
        self._value_ref = None

    def call(self, *args):
        """Enter the function with *unprepared* arguments.

        Arguments arriving from generic application sites are coerced here
        to the baked calling convention (strict parameters forced).  Tail
        calls emitted by the code generator skip this: their arguments were
        already prepared at the call site, so the trampoline below jumps
        straight to the target's body.
        """
        if _REGISTRY.enabled:
            _REGISTRY.counter("runtime.compiled_calls").inc()
        if self._coerce:
            force = self.runtime.force
            args = tuple(force(a) if s else a
                         for s, a in zip(self.param_strict, args))
        result = self.body(*args)
        if type(result) is TailCall:
            # Telemetry decides the loop variant *once* before bouncing:
            # the disabled trampoline is byte-identical to the untraced
            # original (one attribute load + branch per call, not per
            # bounce).
            if _REGISTRY.enabled:
                return self._bounce_counted(result)
            while type(result) is TailCall:
                target = result.target
                if type(target) is CompiledFunction:
                    result = target.body(*result.args)
                else:                    # a FallbackFunction: no trampoline
                    result = target.call(*result.args)
        return result

    def _bounce_counted(self, result):
        """The metered trampoline (``runtime.trampoline_bounces``)."""
        bounces = 0
        while type(result) is TailCall:
            bounces += 1
            target = result.target
            if type(target) is CompiledFunction:
                result = target.body(*result.args)
            else:                        # a FallbackFunction: no trampoline
                result = target.call(*result.args)
        _REGISTRY.counter("runtime.trampoline_bounces").inc(bounces)
        return result

    def value_ref(self):
        """The function as a heap value (memoised, statically allocated).

        Zero-parameter bindings are CAFs: referencing one hands out a thunk
        over its body, exactly like the tree-walker.
        """
        ref = self._value_ref
        if ref is None:
            if self.arity == 0:
                obj = Thunk(lambda: self.call())
            else:
                obj = CompiledClosure(self)
            ref = self.runtime.heap.allocate(obj, static=True)
            self._value_ref = ref
        return ref


class FallbackFunction:
    """A binding the compiler skipped; applications tree-walk as before."""

    __slots__ = ("name", "arity", "evaluator", "function")

    def __init__(self, evaluator, function: ProgramFunction) -> None:
        self.name = function.name
        self.arity = len(function.params)
        self.evaluator = evaluator
        self.function = function

    def value_ref(self):
        return self.evaluator._tree_closure_value(self.function)

    def call(self, *args):
        if _REGISTRY.enabled:
            _REGISTRY.counter("runtime.fallback_calls").inc()
        value = self.value_ref()
        evaluator = self.evaluator
        for argument in args:
            value = evaluator.apply_value(value, argument, already_value=True)
        return value


def _boxed_is(force, obj, want: int) -> bool:
    """Does a (forced) heap object match a boxed integer-literal pattern?"""
    if isinstance(obj, ConstructorCell) and obj.constructor == "I#":
        field = force(obj.fields[0])
        return isinstance(field, UnboxedInt) and field.value == want
    return False


#: Names the generated code resolves through the evaluator at link time —
#: everything here is resolvable without raising, so the lookup is safe to
#: hoist out of the function body.
def _is_safe_global(name: str) -> bool:
    return (name in PRIMOP_TABLE or name in CONSTRUCTOR_ARITIES
            or name in _BOXED_HELPERS
            or name in ("appendString", "error", "errorWithoutStackTrace"))


_LITERALS = (ELitInt, ELitIntHash, ELitDoubleHash, ELitChar, ELitString,
             EBool)


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


class _ModuleInfo:
    """Arity and strictness of every top-level binding, for call sites."""

    def __init__(self, functions: Dict[str, ProgramFunction]) -> None:
        self.functions = {
            name: (len(pf.params), pf.param_strict)
            for name, pf in functions.items()
        }


def _unwrap(expr: Expr) -> Expr:
    while isinstance(expr, EAnn):
        expr = expr.expr
    return expr


def _flatten(expr: EApp) -> Tuple[Expr, List[Expr]]:
    args: List[Expr] = []
    head: Expr = expr
    while isinstance(head, EApp):
        args.append(head.argument)
        head = head.function
    args.reverse()
    return head, args


class _Emitter:
    def __init__(self, info: _ModuleInfo) -> None:
        self.info = info
        self.prelude: List[str] = []     # const definitions inside _bind
        self.body: List[str] = []        # statements inside _f
        self.indent = 2
        self._fresh = 0
        self._consts: Dict[str, str] = {}
        #: Locals statically known to be in weak-head normal form (raw
        #: unboxed values or primop results): forcing them is a no-op the
        #: generated code can skip.
        self._whnf: set = set()

    # -- small utilities ---------------------------------------------------

    def fresh(self, stem: str) -> str:
        self._fresh += 1
        return f"_{stem}{self._fresh}"

    def stmt(self, text: str) -> None:
        self.body.append("    " * self.indent + text)

    def const(self, key: str, expr: str, whnf: bool = False) -> str:
        name = self._consts.get(key)
        if name is None:
            name = self.fresh("c")
            self._consts[key] = name
            self.prelude.append(f"    {name} = {expr}")
            if whnf:
                self._whnf.add(name)
        return name

    def materialize(self, expr: str) -> str:
        if expr.isidentifier():
            return expr
        whnf = expr in self._whnf
        temp = self.fresh("t")
        self.stmt(f"{temp} = {expr}")
        if whnf:
            self._whnf.add(temp)
        return temp

    def forced(self, expr: str) -> str:
        if expr in self._whnf:
            return expr
        return f"_force({expr})"

    # -- statement-free analysis ------------------------------------------

    def _is_simple(self, expr: Expr) -> bool:
        """Will compiling ``expr`` in expression position emit no statements?

        Used to preserve the tree-walker's left-to-right evaluation order:
        an argument whose successor needs statements must be materialised
        into a temporary first.
        """
        expr = _unwrap(expr)
        if isinstance(expr, (EVar,) + _LITERALS):
            return True
        if isinstance(expr, EUnboxedTuple):
            return all(self._is_simple(c) for c in expr.components)
        if isinstance(expr, EApp):
            head, args = _flatten(expr)
            head = _unwrap(head)
            if not isinstance(head, EVar):
                return False
            name = head.name
            if name in self.info.functions:
                arity, strictness = self.info.functions[name]
                if arity == 0 or len(args) != arity:
                    return False
                return all(self._simple_arg(a, s)
                           for a, s in zip(args, strictness))
            if name in PRIMOP_TABLE and len(args) == PRIMOP_TABLE[name][0]:
                return all(self._is_simple(a) for a in args)
            if name in CONSTRUCTOR_ARITIES and \
                    len(args) == CONSTRUCTOR_ARITIES[name] and args:
                return all(self._is_simple(a) for a in args)
            return False
        return False

    def _simple_arg(self, arg: Expr, strict: bool) -> bool:
        if strict:
            return self._is_simple(arg)
        return isinstance(arg, (EVar,) + _LITERALS)

    # -- expressions -------------------------------------------------------

    def emit_expr(self, expr: Expr, scope: Dict[str, str]) -> str:
        if isinstance(expr, EVar):
            return self._emit_var(expr.name, scope)
        if isinstance(expr, ELitInt):
            return self.const(
                f"int:{expr.value}",
                f"_alloc(ConstructorCell('I#', (UnboxedInt({expr.value}),)),"
                f" True)")
        if isinstance(expr, ELitIntHash):
            return self.const(f"int#:{expr.value}",
                              f"UnboxedInt({expr.value})", whnf=True)
        if isinstance(expr, ELitDoubleHash):
            return self.const(f"double#:{expr.value!r}",
                              f"UnboxedDouble({expr.value!r})", whnf=True)
        if isinstance(expr, ELitChar):
            return self.const(
                f"char:{expr.value!r}",
                f"_alloc(ConstructorCell('C#', (UnboxedInt({ord(expr.value)}"
                f"),)), True)")
        if isinstance(expr, ELitString):
            return self.const(f"str:{expr.value!r}",
                              f"StringValue({expr.value!r})", whnf=True)
        if isinstance(expr, EBool):
            constructor = "True" if expr.value else "False"
            return self.const(
                f"bool:{constructor}",
                f"_alloc(ConstructorCell({constructor!r}, ()), True)")
        if isinstance(expr, EAnn):
            return self.emit_expr(expr.expr, scope)
        if isinstance(expr, ELam):
            return self._emit_lambda(expr, scope)
        if isinstance(expr, ELet):
            inner = self._emit_let(expr, scope)
            return self.emit_expr(expr.body, inner)
        if isinstance(expr, EIf):
            join = self.fresh("t")
            condition = self.emit_expr(expr.condition, scope)
            self.stmt(f"if _bool({condition}):")
            self.indent += 1
            value = self.emit_expr(expr.consequent, scope)
            self.stmt(f"{join} = {value}")
            self.indent -= 1
            self.stmt("else:")
            self.indent += 1
            value = self.emit_expr(expr.alternative, scope)
            self.stmt(f"{join} = {value}")
            self.indent -= 1
            return join
        if isinstance(expr, EUnboxedTuple):
            return self._emit_unboxed_tuple(expr, scope)
        if isinstance(expr, ECase):
            return self._emit_case(expr, scope, tail=False)
        if isinstance(expr, EApp):
            return self._emit_app(expr, scope, tail=False)
        raise UnsupportedExpression(f"cannot compile {expr!r}")

    def _emit_var(self, name: str, scope: Dict[str, str]) -> str:
        if name in scope:
            return scope[name]
        if name in self.info.functions:
            return f"G[{name!r}].value_ref()"
        if name == "undefined":
            return "R.raise_undefined()"
        if _is_safe_global(name):
            return self.const(f"gv:{name}", f"_gv({name!r})")
        return f"_gv({name!r})"

    def _emit_lambda(self, expr: ELam, scope: Dict[str, str]) -> str:
        function = self.fresh("lam")
        param = self.fresh("v")
        inner = dict(scope)
        inner[expr.var] = param
        self.stmt(f"def {function}({param}):")
        self.indent += 1
        self.emit_tail(expr.body, inner)
        self.indent -= 1
        return f"_alloc(CompiledClosure(_mklam({function})))"

    def _emit_let(self, expr: ELet, scope: Dict[str, str]) -> Dict[str, str]:
        binder = self.fresh("v")
        if expr.signature is not None and _is_strict_type(expr.signature):
            # Figure 7's strict let!: an unboxed/unlifted binder cannot be a
            # thunk, so the rhs is evaluated eagerly (as the tree-walker
            # does).
            value = self.emit_expr(expr.rhs, scope)
            self.stmt(f"{binder} = {self.forced(value)}")
            self._whnf.add(binder)
        else:
            thunk = self.fresh("th")
            self.stmt(f"def {thunk}():")
            self.indent += 1
            value = self.emit_expr(expr.rhs, scope)
            self.stmt(f"return {value}")
            self.indent -= 1
            self.stmt(f"{binder} = _alloc(Thunk({thunk}))")
        inner = dict(scope)
        inner[expr.var] = binder
        return inner

    def _emit_unboxed_tuple(self, expr: EUnboxedTuple,
                            scope: Dict[str, str]) -> str:
        parts = []
        components = list(expr.components)
        for index, component in enumerate(components):
            value = self.forced(self.emit_expr(component, scope))
            if any(not self._is_simple(later)
                   for later in components[index + 1:]):
                value = self.materialize(value)
            parts.append(value)
        inner = "".join(f"{p}, " for p in parts)
        return self._mark_whnf_expr(f"UnboxedTupleValue(({inner}))")

    def _mark_whnf_expr(self, expr: str) -> str:
        self._whnf.add(expr)
        return expr

    # -- application -------------------------------------------------------

    def _emit_app(self, expr: EApp, scope: Dict[str, str],
                  tail: bool) -> Optional[str]:
        head, args = _flatten(expr)
        head = _unwrap(head)

        if isinstance(head, EVar) and head.name not in scope:
            name = head.name
            if name in self.info.functions:
                arity, strictness = self.info.functions[name]
                if 0 < arity <= len(args):
                    return self._emit_known_call(name, arity, strictness,
                                                 args, scope, tail)
            elif name in PRIMOP_TABLE:
                arity, _ = PRIMOP_TABLE[name]
                if len(args) >= arity:
                    return self._emit_primop_call(name, arity, args, scope,
                                                  tail)
            elif name in CONSTRUCTOR_ARITIES:
                arity = CONSTRUCTOR_ARITIES[name]
                if 0 < arity <= len(args):
                    return self._emit_constructor_call(name, arity, args,
                                                       scope, tail)

        value = self.materialize(self.emit_expr(head, scope))
        return self._emit_generic_chain(value, args, scope, tail)

    def _emit_known_call(self, name: str, arity: int,
                         strictness: Tuple[bool, ...], args: List[Expr],
                         scope: Dict[str, str], tail: bool) -> Optional[str]:
        direct, rest = args[:arity], args[arity:]
        parts = []
        for index, argument in enumerate(direct):
            value = self._emit_call_arg(argument, strictness[index], scope)
            if any(not self._simple_arg(later, strictness[index + 1 + off])
                   for off, later in enumerate(direct[index + 1:])):
                value = self.materialize(value)
            parts.append(value)
        arg_tuple = ", ".join(parts)
        if not rest and tail:
            self.stmt(f"return TailCall(G[{name!r}], ({arg_tuple},))")
            return None
        value = self.materialize(f"G[{name!r}].call({arg_tuple})")
        return self._emit_generic_chain(value, rest, scope, tail)

    def _emit_call_arg(self, argument: Expr, strict: bool,
                       scope: Dict[str, str]) -> str:
        if strict:
            return self.forced(self.emit_expr(argument, scope))
        if isinstance(argument, EVar) and argument.name in scope:
            return scope[argument.name]
        if isinstance(argument, _LITERALS):
            return self.emit_expr(argument, scope)
        # Everything else is thunked, exactly as the tree-walker does — a
        # non-variable lazy argument must *print* as a thunk too.
        thunk = self.fresh("th")
        self.stmt(f"def {thunk}():")
        self.indent += 1
        value = self.emit_expr(argument, scope)
        self.stmt(f"return {value}")
        self.indent -= 1
        return f"_alloc(Thunk({thunk}))"

    def _emit_primop_call(self, name: str, arity: int, args: List[Expr],
                          scope: Dict[str, str], tail: bool) -> Optional[str]:
        implementation = self.const(f"primop:{name}",
                                    f"R.primop_impl({name!r})")
        direct, rest = args[:arity], args[arity:]
        parts = self._emit_ordered_strict_args(direct, scope)
        call = f"{implementation}({', '.join(parts)})"
        self._whnf.add(call)
        if not rest:
            if tail:
                self.stmt(f"return {call}")
                return None
            return call
        value = self.materialize(call)
        return self._emit_generic_chain(value, rest, scope, tail)

    def _emit_constructor_call(self, name: str, arity: int, args: List[Expr],
                               scope: Dict[str, str],
                               tail: bool) -> Optional[str]:
        direct, rest = args[:arity], args[arity:]
        parts = self._emit_ordered_strict_args(direct, scope)
        inner = "".join(f"{p}, " for p in parts)
        call = f"_alloc(ConstructorCell({name!r}, ({inner})))"
        if not rest:
            if tail:
                self.stmt(f"return {call}")
                return None
            return call
        value = self.materialize(call)
        return self._emit_generic_chain(value, rest, scope, tail)

    def _emit_ordered_strict_args(self, args: List[Expr],
                                  scope: Dict[str, str]) -> List[str]:
        parts = []
        for index, argument in enumerate(args):
            value = self.forced(self.emit_expr(argument, scope))
            if any(not self._is_simple(later)
                   for later in args[index + 1:]):
                value = self.materialize(value)
            parts.append(value)
        return parts

    def _emit_generic_chain(self, value: str, args: List[Expr],
                            scope: Dict[str, str],
                            tail: bool) -> Optional[str]:
        for argument in args:
            if isinstance(argument, EVar) and argument.name in scope:
                value = self.materialize(
                    f"_appv({value}, {scope[argument.name]})")
            elif isinstance(argument, _LITERALS):
                literal = self.emit_expr(argument, scope)
                value = self.materialize(f"_appv({value}, {literal})")
            else:
                thunk = self.fresh("th")
                self.stmt(f"def {thunk}():")
                self.indent += 1
                result = self.emit_expr(argument, scope)
                self.stmt(f"return {result}")
                self.indent -= 1
                value = self.materialize(f"_appt({value}, {thunk})")
        if tail:
            self.stmt(f"return {value}")
            return None
        return value

    # -- case --------------------------------------------------------------

    def _emit_case(self, expr: ECase, scope: Dict[str, str],
                   tail: bool) -> Optional[str]:
        scrutinee = self.materialize(
            self.forced(self.emit_expr(expr.scrutinee, scope)))
        self._whnf.add(scrutinee)

        needs_object = any(
            self._alt_kind(alt) in ("constructor", "boxed-int")
            for alt in expr.alternatives)
        obj = None
        if needs_object:
            obj = self.fresh("o")
            self.stmt(f"{obj} = _heap.load({scrutinee}) "
                      f"if isinstance({scrutinee}, HeapRef) else None")

        if not expr.alternatives:
            self.stmt(f"R.no_match({scrutinee})")
            if tail:
                self.stmt(f"return {scrutinee}")  # unreachable; for syntax
                return None
            return scrutinee

        join = None if tail else self.fresh("t")
        for index, alternative in enumerate(expr.alternatives):
            condition, bindings = self._alt_condition(alternative, scrutinee,
                                                      obj)
            keyword = "if" if index == 0 else "elif"
            self.stmt(f"{keyword} {condition}:")
            self.indent += 1
            inner = dict(scope)
            for surface_name, access in bindings:
                binder = self.fresh("v")
                self.stmt(f"{binder} = {access}")
                inner[surface_name] = binder
            if tail:
                self.emit_tail(alternative.rhs, inner)
            else:
                value = self.emit_expr(alternative.rhs, inner)
                self.stmt(f"{join} = {value}")
            self.indent -= 1
        self.stmt("else:")
        self.indent += 1
        self.stmt(f"R.no_match({scrutinee})")
        self.indent -= 1
        return join

    @staticmethod
    def _alt_kind(alternative) -> str:
        constructor = alternative.constructor
        if constructor == "_":
            return "wildcard"
        if constructor.endswith("#") and \
                constructor[:-1].lstrip("-").isdigit():
            return "unboxed-int"
        if constructor.lstrip("-").isdigit():
            return "boxed-int"
        if constructor == "(#,#)":
            return "tuple"
        return "constructor"

    def _alt_condition(self, alternative, scrutinee: str,
                       obj: Optional[str]):
        kind = self._alt_kind(alternative)
        if kind == "wildcard":
            return "True", []
        if kind == "unboxed-int":
            want = int(alternative.constructor[:-1])
            return (f"isinstance({scrutinee}, UnboxedInt) "
                    f"and {scrutinee}.value == {want}"), []
        if kind == "boxed-int":
            want = int(alternative.constructor)
            return f"_boxed_is(_force, {obj}, {want})", []
        if kind == "tuple":
            bindings = [(binder, f"{scrutinee}.components[{k}]")
                        for k, binder in enumerate(alternative.binders)]
            return f"isinstance({scrutinee}, UnboxedTupleValue)", bindings
        bindings = [(binder, f"{obj}.fields[{k}]")
                    for k, binder in enumerate(alternative.binders)]
        return (f"isinstance({obj}, ConstructorCell) "
                f"and {obj}.constructor == {alternative.constructor!r}"), \
            bindings

    # -- tail position -----------------------------------------------------

    def emit_tail(self, expr: Expr, scope: Dict[str, str]) -> None:
        if isinstance(expr, EAnn):
            self.emit_tail(expr.expr, scope)
            return
        if isinstance(expr, EIf):
            condition = self.emit_expr(expr.condition, scope)
            self.stmt(f"if _bool({condition}):")
            self.indent += 1
            self.emit_tail(expr.consequent, scope)
            self.indent -= 1
            self.stmt("else:")
            self.indent += 1
            self.emit_tail(expr.alternative, scope)
            self.indent -= 1
            return
        if isinstance(expr, ECase):
            self._emit_case(expr, scope, tail=True)
            return
        if isinstance(expr, ELet):
            inner = self._emit_let(expr, scope)
            self.emit_tail(expr.body, inner)
            return
        if isinstance(expr, EApp):
            self._emit_app(expr, scope, tail=True)
            return
        value = self.emit_expr(expr, scope)
        self.stmt(f"return {value}")


_BIND_PRELUDE = [
    "    _force = R.force",
    "    _heap = R.heap",
    "    _alloc = _heap.allocate",
    "    _bool = R.bool_result",
    "    _gv = R.global_value",
    "    _appv = R.apply_arg_value",
    "    _appt = R.apply_arg_thunk",
    "    _mklam = C.make_lambda",
]


def generate_function_source(function: ProgramFunction,
                             info: _ModuleInfo) -> str:
    """Compile one top-level binding to the source of its ``_bind``."""
    emitter = _Emitter(info)
    scope: Dict[str, str] = {}
    parameters: List[str] = []
    for index, parameter in enumerate(function.params):
        name = emitter.fresh("v")
        scope[parameter] = name
        parameters.append(name)
        if function.param_strict[index]:
            # call() coerces strict parameters before entering the body, and
            # compiled tail-call sites prepare them likewise: inside the body
            # they are always already forced.
            emitter._whnf.add(name)
    emitter.emit_tail(function.body, scope)
    lines = ["def _bind(R, G, C):"]
    lines.extend(_BIND_PRELUDE)
    lines.extend(emitter.prelude)
    lines.append(f"    def _f({', '.join(parameters)}):")
    lines.extend(emitter.body)
    lines.append("    return _f")
    return "\n".join(lines) + "\n"


def generate_expression_source(expr: Expr, env_names: List[str],
                               info: _ModuleInfo) -> str:
    """Compile a standalone expression (REPL line, entry rhs) to source."""
    emitter = _Emitter(info)
    scope: Dict[str, str] = {}
    for env_name in env_names:
        name = emitter.fresh("v")
        scope[env_name] = name
        emitter.prelude.append(f"    {name} = E[{env_name!r}]")
    emitter.emit_tail(expr, scope)
    lines = ["def _bind(R, G, C, E):"]
    lines.extend(_BIND_PRELUDE)
    lines.extend(emitter.prelude)
    lines.append("    def _f():")
    lines.extend(emitter.body)
    lines.append("    return _f")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Linking
# ---------------------------------------------------------------------------


#: The namespace generated code executes in: runtime value constructors plus
#: the pattern-matching helper.  (Builtins are available as usual.)
_EXEC_GLOBALS = {
    "UnboxedInt": UnboxedInt,
    "UnboxedDouble": UnboxedDouble,
    "UnboxedTupleValue": UnboxedTupleValue,
    "StringValue": StringValue,
    "ConstructorCell": ConstructorCell,
    "Thunk": Thunk,
    "HeapRef": HeapRef,
    "CompiledClosure": CompiledClosure,
    "TailCall": TailCall,
    "_boxed_is": _boxed_is,
}


class CompiledProgram:
    """All of a program's bindings, compiled and linked to one evaluator.

    ``sources`` may supply previously generated source text per binding
    (from the per-unit codegen cache); supplied entries are linked without
    regenerating, and ``None`` marks a binding the compiler is known to skip
    (linked as a :class:`FallbackFunction`, still no codegen).  The counters
    distinguish the two paths so callers can report cache effectiveness:
    ``codegen_count`` is the number of bindings lowered this session and
    ``cache_hits`` the number served from supplied sources.
    """

    def __init__(self, evaluator,
                 sources: Optional[Dict[str, Optional[str]]] = None) -> None:
        self.evaluator = evaluator
        # Installed early: helper lambdas resolved during linking compile
        # through the evaluator's compiled path.
        evaluator._compiled = self
        self.functions: Dict[str, object] = {}
        self.sources: Dict[str, Optional[str]] = {}
        self.codegen_count = 0
        self.cache_hits = 0
        self.fallback_names: List[str] = []
        self._info = _ModuleInfo(evaluator.program.functions)
        for name, function in evaluator.program.functions.items():
            provided = _MISSING if sources is None else \
                sources.get(name, _MISSING)
            self._install(name, function, provided)
        # Fold point: once per program build, not per call.
        _REGISTRY.inc("codegen.compiled", self.codegen_count)
        _REGISTRY.inc("codegen.cache_hits", self.cache_hits)
        _REGISTRY.inc("codegen.fallbacks", len(self.fallback_names))
        # Source text is what the codegen side-table shards persist, so
        # its volume is the side-table's growth rate.
        _REGISTRY.inc("codegen.source_bytes",
                      sum(len(source) for source in self.sources.values()
                          if source is not None))

    def make_lambda(self, body: Callable) -> CompiledFunction:
        return CompiledFunction("", 1, (False,), body, self.evaluator)

    def _install(self, name: str, function: ProgramFunction,
                 provided) -> None:
        source = provided
        if source is _MISSING:
            traced = _TRACER.enabled
            if traced:
                _TRACER.begin("codegen.lower", binding=name)
            try:
                source = generate_function_source(function, self._info)
            except UnsupportedExpression:
                source = None
            finally:
                if traced:
                    _TRACER.end("codegen.lower")
            self.codegen_count += 1
        else:
            self.cache_hits += 1
        self.sources[name] = source
        if source is None:
            self._install_fallback(name, function)
            return
        try:
            compiled = self._link(name, function, source)
        except Exception:
            if provided is not _MISSING:
                # A stale or corrupt cache entry: regenerate from scratch.
                self._install(name, function, _MISSING)
                return
            self.sources[name] = None
            self._install_fallback(name, function)
            return
        self.functions[name] = compiled

    def _install_fallback(self, name: str, function: ProgramFunction) -> None:
        self.functions[name] = FallbackFunction(self.evaluator, function)
        self.fallback_names.append(name)

    def _link(self, name: str, function: ProgramFunction,
              source: str) -> CompiledFunction:
        namespace = dict(_EXEC_GLOBALS)
        exec(compile(source, f"<compiled:{name}>", "exec"), namespace)
        body = namespace["_bind"](self.evaluator, self.functions, self)
        return CompiledFunction(name, len(function.params),
                                function.param_strict, body, self.evaluator)

    def eval_expression(self, expr: Expr, env: Dict[str, object]):
        """Compile and run a standalone expression; FALLBACK if unsupported."""
        try:
            source = generate_expression_source(expr, sorted(env),
                                                self._info)
        except UnsupportedExpression:
            return FALLBACK
        namespace = dict(_EXEC_GLOBALS)
        exec(compile(source, "<compiled:expression>", "exec"), namespace)
        body = namespace["_bind"](self.evaluator, self.functions, self, env)
        runner = CompiledFunction("", 0, (), body, self.evaluator)
        return runner.call()
