"""Runtime values, heap and cost model for the surface language.

The paper's performance claims (Section 2.1) were measured on GHC-compiled
native code, which we cannot run here.  The substitution (documented in
DESIGN.md) is a *cost-model abstract machine*: it executes the same surface
programs with the same calling conventions — boxed-and-lifted arguments are
passed as heap pointers to (possibly) thunks, unboxed arguments are passed
as raw machine values — and counts the operations whose cost dominates on
real hardware:

* heap allocations (boxes, thunks, closures, dictionaries) and the words
  they occupy;
* thunk forces and updates (the cost of laziness);
* pointer reads (the memory traffic of chasing boxes);
* primitive arithmetic operations (the only thing the unboxed loop does).

The *shape* of the paper's result — the unboxed ``sumTo#`` loop allocates
nothing and does no memory traffic, while the boxed ``sumTo`` allocates a
box and several thunks per iteration — falls straight out of these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import EvaluationError
from ..core.rep import Rep, RegisterClass


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


@dataclass
class CostModel:
    """Counters for the operations the evaluator performs.

    ``estimated_cycles`` converts the counters into a single synthetic
    figure using rough per-operation weights (an allocation plus its
    initialisation is far more expensive than a register add).  The weights
    are deliberately coarse — the benchmarks report the raw counters too —
    but they give a single headline number comparable to the paper's
    "less than 0.01s vs more than 2s".
    """

    heap_allocations: int = 0
    words_allocated: int = 0
    thunk_allocations: int = 0
    thunk_forces: int = 0
    thunk_updates: int = 0
    pointer_reads: int = 0
    primops: int = 0
    function_calls: int = 0
    case_scrutinies: int = 0
    dictionary_lookups: int = 0

    #: Per-operation weights (in abstract cycles).
    WEIGHTS = {
        "heap_allocations": 10,
        "words_allocated": 1,
        "thunk_allocations": 10,
        "thunk_forces": 6,
        "thunk_updates": 2,
        "pointer_reads": 3,
        "primops": 1,
        "function_calls": 2,
        "case_scrutinies": 1,
        "dictionary_lookups": 3,
    }

    def estimated_cycles(self) -> int:
        return sum(getattr(self, name) * weight
                   for name, weight in self.WEIGHTS.items())

    def memory_traffic(self) -> int:
        """Operations that touch the heap at all (the paper's key contrast)."""
        return (self.heap_allocations + self.thunk_allocations
                + self.thunk_forces + self.pointer_reads)

    def as_dict(self) -> Dict[str, int]:
        data = {name: getattr(self, name) for name in self.WEIGHTS}
        data["estimated_cycles"] = self.estimated_cycles()
        data["memory_traffic"] = self.memory_traffic()
        return data

    def __sub__(self, other: "CostModel") -> "CostModel":
        result = CostModel()
        for name in self.WEIGHTS:
            setattr(result, name, getattr(self, name) - getattr(other, name))
        return result


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


class Value:
    """Abstract base class of runtime values."""

    def is_unboxed(self) -> bool:
        return False

    def show(self, heap: "Heap") -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class UnboxedInt(Value):
    """A raw machine integer (``Int#``, ``Word#``, ``Char#`` as a code point)."""

    value: int

    def is_unboxed(self) -> bool:
        return True

    def show(self, heap: "Heap") -> str:
        return f"{self.value}#"


@dataclass(frozen=True)
class UnboxedDouble(Value):
    """A raw double-precision float (``Double#`` / ``Float#``)."""

    value: float

    def is_unboxed(self) -> bool:
        return True

    def show(self, heap: "Heap") -> str:
        return f"{self.value}##"


@dataclass(frozen=True)
class UnboxedTupleValue(Value):
    """An unboxed tuple: just its components, living in "registers"."""

    components: Tuple[Value, ...]

    def is_unboxed(self) -> bool:
        return True

    def show(self, heap: "Heap") -> str:
        inner = ", ".join(c.show(heap) for c in self.components)
        return f"(# {inner} #)"


@dataclass(frozen=True)
class StringValue(Value):
    """A string constant (modelled opaquely; Strings are boxed in GHC)."""

    value: str

    def show(self, heap: "Heap") -> str:
        return repr(self.value)


@dataclass(frozen=True)
class HeapRef(Value):
    """A pointer into the heap — the representation of every boxed value."""

    address: int

    def show(self, heap: "Heap") -> str:
        return heap.load_for_show(self).show_object(heap)


# ---------------------------------------------------------------------------
# Heap objects
# ---------------------------------------------------------------------------


class HeapObject:
    """Something allocated on the heap."""

    def size_in_words(self) -> int:
        raise NotImplementedError

    def show_object(self, heap: "Heap") -> str:
        raise NotImplementedError


@dataclass
class ConstructorCell(HeapObject):
    """A saturated data-constructor cell, e.g. ``I# 7`` or ``Just x``.

    The header word plus one word per field, matching GHC's layout of a
    two-word ``Int`` cell (Section 2.1).
    """

    constructor: str
    fields: Tuple[Value, ...]

    def size_in_words(self) -> int:
        return 1 + len(self.fields)

    def show_object(self, heap: "Heap") -> str:
        if not self.fields:
            return self.constructor
        fields = " ".join(f.show(heap) for f in self.fields)
        return f"({self.constructor} {fields})"


@dataclass
class Thunk(HeapObject):
    """An unevaluated computation (laziness).  Forced at most once."""

    compute: Callable[[], Value]
    result: Optional[Value] = None
    under_evaluation: bool = False

    def size_in_words(self) -> int:
        return 2  # header + payload pointer, as in GHC's smallest thunks

    def show_object(self, heap: "Heap") -> str:
        if self.result is not None:
            return self.result.show(heap)
        return "<thunk>"


@dataclass
class Closure(HeapObject):
    """A function closure: parameter conventions, body, captured environment."""

    name: str
    params: Tuple[str, ...]
    param_strict: Tuple[bool, ...]   # True = unboxed/unlifted => call-by-value
    body: object                     # a surface Expr
    env: Dict[str, Value]
    collected: Tuple[Value, ...] = ()

    def size_in_words(self) -> int:
        return 1 + len(self.env)

    def show_object(self, heap: "Heap") -> str:
        return f"<closure {self.name or 'λ'}/{len(self.params)}>"


@dataclass
class CompiledClosure(HeapObject):
    """A closure produced by the closure-compilation backend.

    ``target`` is a ``repro.runtime.compiler.CompiledFunction`` (or a
    compiled lambda): its calling convention — arity and per-parameter
    strictness — was baked in at compile time from the inferred kinds, so
    entering the closure needs no per-call strictness rederivation.  The
    printed form matches the tree-walker's :class:`Closure` exactly; the two
    kinds of closure are interchangeable at every application site.
    """

    target: object                   # CompiledFunction; duck-typed to avoid
    collected: Tuple[Value, ...] = ()  # a circular import with the compiler

    def size_in_words(self) -> int:
        return 2 + len(self.collected)

    def show_object(self, heap: "Heap") -> str:
        return f"<closure {self.target.name or 'λ'}/{self.target.arity}>"

    def enter(self, evaluator, argument: Value) -> Value:
        target = self.target
        collected = self.collected + (argument,)
        if len(collected) < target.arity:
            return evaluator.heap.allocate(
                CompiledClosure(target, collected), static=True)
        return target.call(*collected)


@dataclass
class PrimOpValue(HeapObject):
    """A (possibly partially applied) primitive operation."""

    name: str
    arity: int
    apply: Callable[..., Value]
    collected: Tuple[Value, ...] = ()

    def size_in_words(self) -> int:
        return 1 + len(self.collected)

    def show_object(self, heap: "Heap") -> str:
        return f"<primop {self.name}>"


@dataclass
class DictionaryCell(HeapObject):
    """A class dictionary: a lifted record of method closures (Section 7.3)."""

    class_name: str
    instance_head: str
    methods: Dict[str, Value]

    def size_in_words(self) -> int:
        return 1 + len(self.methods)

    def show_object(self, heap: "Heap") -> str:
        return f"<${self.class_name}{self.instance_head}>"


@dataclass
class MethodSelector(HeapObject):
    """A bare class-method reference awaiting dispatch (e.g. ``abs``)."""

    class_name: str
    method: str

    def size_in_words(self) -> int:
        return 1

    def show_object(self, heap: "Heap") -> str:
        return f"<method {self.class_name}.{self.method}>"


# ---------------------------------------------------------------------------
# Heap
# ---------------------------------------------------------------------------


class Heap:
    """A growable heap with allocation and read accounting.

    Objects can be allocated *statically* (``static=True``): these model
    compile-time-known code objects — top-level closures, primop entry
    points, nullary constructors — which a real compiler places in the
    read-only data segment rather than allocating at runtime.  Static
    allocations and reads of static objects are not charged to the cost
    model, so the counters reflect genuine dynamic memory traffic only.
    """

    def __init__(self, costs: Optional[CostModel] = None) -> None:
        self.cells: List[HeapObject] = []
        self.costs = costs if costs is not None else CostModel()
        self._static: set = set()

    def allocate(self, obj: HeapObject, static: bool = False) -> HeapRef:
        self.cells.append(obj)
        address = len(self.cells) - 1
        if static:
            self._static.add(address)
        else:
            self.costs.heap_allocations += 1
            self.costs.words_allocated += obj.size_in_words()
            if isinstance(obj, Thunk):
                self.costs.thunk_allocations += 1
        return HeapRef(address)

    def load(self, ref: HeapRef) -> HeapObject:
        if ref.address not in self._static:
            self.costs.pointer_reads += 1
        return self.cells[ref.address]

    def load_for_show(self, ref: HeapRef) -> HeapObject:
        """Load without charging the cost model (used only for printing)."""
        return self.cells[ref.address]

    def update(self, ref: HeapRef, obj: HeapObject) -> None:
        self.cells[ref.address] = obj

    def live_objects(self) -> int:
        return len(self.cells)
