"""A cost-model evaluator for surface programs ("kinds are calling conventions").

The evaluator executes type-checked surface modules.  Its calling convention
is driven by the *types* the inference engine assigned (exactly the paper's
thesis): when a function parameter's type has a boxed, lifted kind the
argument is passed as a heap pointer to a lazily allocated thunk; when the
kind is unboxed (or boxed-but-unlifted) the argument is evaluated eagerly and
passed as a raw value — no allocation, no pointer.

Class methods are supported in two forms:

* applied at a concrete type, the evaluator consults the
  :class:`~repro.classes.declarations.ClassEnv` instance table and runs the
  (monomorphic) implementation — this is the elaborated, dictionary-free
  fast path GHC reaches after specialisation;
* a dictionary can also be built explicitly
  (:meth:`Evaluator.build_dictionary`) and methods selected from it, which
  charges the cost model for the dictionary allocation and the field reads —
  the cost the paper's Section 7.3 machinery actually pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import EvaluationError, PatternError, ScopeError
from ..core.kinds import TypeKind
from ..core.rep import Rep
from ..infer.infer import Inferencer, InferOptions, ModuleResult
from ..infer.schemes import Scheme, TypeEnv
from ..surface.ast import (
    Alternative,
    EAnn,
    EApp,
    EBool,
    ECase,
    EIf,
    ELam,
    ELet,
    ELitChar,
    ELitDoubleHash,
    ELitInt,
    ELitIntHash,
    ELitString,
    EUnboxedTuple,
    EVar,
    Expr,
    FunBind,
    Module,
)
from ..surface.types import FunTy, SType, kind_of_type
from .values import (
    Closure,
    CompiledClosure,
    ConstructorCell,
    CostModel,
    DictionaryCell,
    Heap,
    HeapObject,
    HeapRef,
    MethodSelector,
    PrimOpValue,
    StringValue,
    Thunk,
    UnboxedDouble,
    UnboxedInt,
    UnboxedTupleValue,
    Value,
)

# ---------------------------------------------------------------------------
# Primitive operations
# ---------------------------------------------------------------------------


def _int_binop(op: Callable[[int, int], int]) -> Callable[..., Value]:
    def run(x: Value, y: Value) -> Value:
        return UnboxedInt(op(_as_int(x), _as_int(y)))
    return run


def _int_cmp(op: Callable[[int, int], bool]) -> Callable[..., Value]:
    def run(x: Value, y: Value) -> Value:
        return UnboxedInt(1 if op(_as_int(x), _as_int(y)) else 0)
    return run


def _double_binop(op: Callable[[float, float], float]) -> Callable[..., Value]:
    def run(x: Value, y: Value) -> Value:
        return UnboxedDouble(op(_as_double(x), _as_double(y)))
    return run


def _double_cmp(op: Callable[[float, float], bool]) -> Callable[..., Value]:
    def run(x: Value, y: Value) -> Value:
        return UnboxedInt(1 if op(_as_double(x), _as_double(y)) else 0)
    return run


def _as_int(value: Value) -> int:
    if isinstance(value, UnboxedInt):
        return value.value
    raise EvaluationError(f"expected an unboxed integer, got {value!r}")


def _as_double(value: Value) -> float:
    if isinstance(value, UnboxedDouble):
        return value.value
    if isinstance(value, UnboxedInt):
        return float(value.value)
    raise EvaluationError(f"expected an unboxed double, got {value!r}")


def _exact_quot(a: int, b: int) -> int:
    """Truncate-towards-zero division on exact integers; ⊥ at b == 0.

    The previous ``int(a / b)`` detoured through a 53-bit float: corpus
    fuzzing found 15+-digit operands where the quotient came back wrong
    (pinned in tests/golden/fuzz/quot_precision.lev).

    A zero divisor raises: the seed quietly returned 0, which disagreed
    with the M machine's primop rule (which aborts).  Every backend —
    this evaluator, the compiled closures (which call this table), the L
    semantics and the machine — now treats division by zero as the same
    bottom outcome (pinned in tests/golden/fuzz/quot_by_zero.lev).
    """
    if b == 0:
        raise EvaluationError("quotInt# by zero is undefined (bottom)")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _exact_rem(a: int, b: int) -> int:
    if b == 0:
        raise EvaluationError("remInt# by zero is undefined (bottom)")
    return a - b * _exact_quot(a, b)


#: name -> (arity, implementation on raw values)
PRIMOP_TABLE: Dict[str, Tuple[int, Callable[..., Value]]] = {
    "+#": (2, _int_binop(lambda a, b: a + b)),
    "-#": (2, _int_binop(lambda a, b: a - b)),
    "*#": (2, _int_binop(lambda a, b: a * b)),
    "quotInt#": (2, _int_binop(_exact_quot)),
    "remInt#": (2, _int_binop(_exact_rem)),
    "negateInt#": (1, lambda x: UnboxedInt(-_as_int(x))),
    "<#": (2, _int_cmp(lambda a, b: a < b)),
    ">#": (2, _int_cmp(lambda a, b: a > b)),
    "<=#": (2, _int_cmp(lambda a, b: a <= b)),
    ">=#": (2, _int_cmp(lambda a, b: a >= b)),
    "==#": (2, _int_cmp(lambda a, b: a == b)),
    "/=#": (2, _int_cmp(lambda a, b: a != b)),
    "+##": (2, _double_binop(lambda a, b: a + b)),
    "-##": (2, _double_binop(lambda a, b: a - b)),
    "*##": (2, _double_binop(lambda a, b: a * b)),
    "/##": (2, _double_binop(lambda a, b: a / b)),
    "negateDouble#": (1, lambda x: UnboxedDouble(-_as_double(x))),
    "<##": (2, _double_cmp(lambda a, b: a < b)),
    "==##": (2, _double_cmp(lambda a, b: a == b)),
    "plusFloat#": (2, _double_binop(lambda a, b: a + b)),
    "timesFloat#": (2, _double_binop(lambda a, b: a * b)),
    "eqChar#": (2, _int_cmp(lambda a, b: a == b)),
    "ord#": (1, lambda x: UnboxedInt(_as_int(x))),
    "chr#": (1, lambda x: UnboxedInt(_as_int(x))),
    "int2Double#": (1, lambda x: UnboxedDouble(float(_as_int(x)))),
    "double2Int#": (1, lambda x: UnboxedInt(int(_as_double(x)))),
    "int2Word#": (1, lambda x: UnboxedInt(_as_int(x))),
    "word2Int#": (1, lambda x: UnboxedInt(_as_int(x))),
}

#: Data constructors known to the evaluator, with their arities.
CONSTRUCTOR_ARITIES: Dict[str, int] = {
    "I#": 1, "W#": 1, "F#": 1, "D#": 1, "C#": 1,
    "True": 0, "False": 0, "Nothing": 0, "Just": 1, "()": 0,
}


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass
class ProgramFunction:
    """A top-level binding prepared for execution."""

    name: str
    params: Tuple[str, ...]
    param_strict: Tuple[bool, ...]
    body: Expr
    scheme: Optional[Scheme] = None


@dataclass
class Program:
    """An executable program: its functions plus the class environment."""

    functions: Dict[str, ProgramFunction] = field(default_factory=dict)
    class_env: object = None
    module_result: Optional[ModuleResult] = None
    #: Bumped whenever the function table changes, so evaluators can
    #: invalidate their per-name global-resolution caches.
    version: int = 0

    @staticmethod
    def from_module(module: Module, env: Optional[TypeEnv] = None,
                    class_env=None,
                    options: Optional[InferOptions] = None) -> "Program":
        """Type-check a module and prepare it for execution.

        The parameter passing convention of every function is read off the
        inferred/declared types: this is where "kinds are calling
        conventions" becomes executable.
        """
        from ..surface.prelude import prelude_env

        inferencer = Inferencer(options, class_env)
        base_env = env or prelude_env()
        if class_env is not None:
            base_env = base_env.bind_many(class_env.all_method_schemes())
        result = inferencer.infer_module(module, base_env)

        program = Program(class_env=class_env, module_result=result)
        for name, bind in module.bindings().items():
            scheme = result.schemes.get(name)
            strictness = _param_strictness(scheme, len(bind.params))
            program.functions[name] = ProgramFunction(
                name, bind.params, strictness, bind.rhs, scheme)
        return program

    def add_function(self, bind: FunBind,
                     param_strict: Optional[Sequence[bool]] = None) -> None:
        strictness = tuple(param_strict) if param_strict is not None else \
            tuple(False for _ in bind.params)
        self.functions[bind.name] = ProgramFunction(
            bind.name, bind.params, strictness, bind.rhs, None)
        self.version += 1


def _param_strictness(scheme: Optional[Scheme], arity: int) -> Tuple[bool, ...]:
    """Call-by-value for parameters whose kind is not boxed-and-lifted."""
    if scheme is None:
        return tuple(False for _ in range(arity))
    strictness: List[bool] = []
    current: SType = scheme.body
    from ..surface.types import QualTy
    if isinstance(current, QualTy):
        current = current.body
    for _ in range(arity):
        if not isinstance(current, FunTy):
            strictness.append(False)
            continue
        strictness.append(_is_strict_type(current.argument))
        current = current.result
    return tuple(strictness)


def _is_strict_type(type_: SType) -> bool:
    try:
        kind = kind_of_type(type_)
    except Exception:
        return False
    if not isinstance(kind, TypeKind):
        return False
    rep = kind.rep
    if not rep.is_concrete():
        return False
    return not (rep.is_boxed() and rep.is_lifted())


# ---------------------------------------------------------------------------
# The evaluator
# ---------------------------------------------------------------------------


#: Shared empty environment for global resolution from compiled code.
_EMPTY_ENV: Dict[str, "Value"] = {}


class Evaluator:
    """Execute surface expressions with the cost model attached."""

    def __init__(self, program: Optional[Program] = None,
                 costs: Optional[CostModel] = None,
                 compiled: bool = False,
                 compiled_sources: Optional[Dict[str, Optional[str]]] = None,
                 ) -> None:
        self.program = program or Program()
        self.costs = costs if costs is not None else CostModel()
        self.heap = Heap(self.costs)
        #: Compile-time-known values (top-level closures, primop entry
        #: points, nullary constructors, helper definitions).  These live in
        #: the static segment and are never charged to the cost model.
        self._static_cache: Dict[str, Value] = {}
        #: Memoised global resolutions (every name _eval_var has resolved
        #: outside the local environment), invalidated when the program's
        #: function table changes.
        self._global_cache: Dict[str, Value] = {}
        self._global_version = self.program.version
        #: The closure-compilation backend, when requested.  Its constructor
        #: installs itself on this attribute before linking (helper lambdas
        #: resolved while linking go through the compiled path too).
        self._compiled = None
        if compiled:
            from .compiler import CompiledProgram
            CompiledProgram(self, sources=compiled_sources)

    # -- public API -----------------------------------------------------------

    def run(self, name: str, *arguments: Value) -> Value:
        """Run a top-level function on already-constructed runtime values."""
        function = self._function(name)
        value = self._closure_value(function)
        for argument in arguments:
            value = self.apply_value(value, argument, already_value=True)
        return value

    def eval(self, expr: Expr, env: Optional[Dict[str, Value]] = None) -> Value:
        """Evaluate an expression to (weak-head) normal form."""
        env = env or {}
        if self._compiled is not None:
            from .compiler import FALLBACK
            from ..telemetry import REGISTRY as _registry
            value = self._compiled.eval_expression(expr, env)
            if value is not FALLBACK:
                if _registry.enabled:
                    _registry.counter("runtime.compiled_exprs").inc()
                return value
            if _registry.enabled:
                _registry.counter("runtime.expr_fallbacks").inc()
        return self._eval(expr, env)

    def force(self, value: Value) -> Value:
        """Force thunks until a non-thunk heap object or unboxed value remains."""
        while isinstance(value, HeapRef):
            obj = self.heap.load(value)
            if isinstance(obj, Thunk):
                if obj.result is None:
                    if obj.under_evaluation:
                        raise EvaluationError("<<loop>> detected while "
                                              "forcing a thunk")
                    obj.under_evaluation = True
                    self.costs.thunk_forces += 1
                    obj.result = obj.compute()
                    obj.under_evaluation = False
                    self.costs.thunk_updates += 1
                value = obj.result
                continue
            return value
        return value

    def int_result(self, value: Value) -> int:
        """Interpret a result as a Python integer (forcing and unboxing)."""
        value = self.force(value)
        if isinstance(value, UnboxedInt):
            return value.value
        if isinstance(value, HeapRef):
            obj = self.heap.load(value)
            if isinstance(obj, ConstructorCell) and obj.constructor == "I#":
                return self.int_result(obj.fields[0])
        raise EvaluationError(f"result is not an integer: {value!r}")

    def bool_result(self, value: Value) -> bool:
        value = self.force(value)
        if isinstance(value, HeapRef):
            obj = self.heap.load(value)
            if isinstance(obj, ConstructorCell):
                return obj.constructor == "True"
        raise EvaluationError(f"result is not a Bool: {value!r}")

    def boxed_int(self, value: int) -> Value:
        """Allocate a boxed integer ``I# value``."""
        return self.heap.allocate(ConstructorCell("I#", (UnboxedInt(value),)))

    def build_dictionary(self, class_name: str, type_: SType) -> Value:
        """Explicitly allocate the dictionary for an instance (Section 7.3)."""
        class_env = self.program.class_env
        if class_env is None:
            raise EvaluationError("no class environment attached")
        info = class_env.class_info(class_name)
        instance = class_env.lookup_instance(class_name, type_)
        if instance is None:
            raise EvaluationError(
                f"no instance for {class_name} {type_.pretty()}")
        methods = {name: self._eval(impl, {})
                   for name, impl in instance.methods().items()}
        cell = DictionaryCell(class_name, instance.head_constructor(), methods)
        return self.heap.allocate(cell)

    def select_method(self, dictionary: Value, method: str) -> Value:
        """Select a method from a dictionary value (one field read)."""
        dictionary = self.force(dictionary)
        obj = self.heap.load(dictionary)
        if not isinstance(obj, DictionaryCell):
            raise EvaluationError("select_method expects a dictionary")
        self.costs.dictionary_lookups += 1
        return obj.methods[method]

    # -- internals --------------------------------------------------------------

    def _function(self, name: str) -> ProgramFunction:
        try:
            return self.program.functions[name]
        except KeyError:
            raise ScopeError(f"no top-level function named {name!r}") from None

    def _closure_value(self, function: ProgramFunction) -> Value:
        if self._compiled is not None:
            compiled = self._compiled.functions.get(function.name)
            if compiled is not None:
                return compiled.value_ref()
        return self._tree_closure_value(function)

    def _tree_closure_value(self, function: ProgramFunction) -> Value:
        # Keyed to the ProgramFunction *identity*, not just the name:
        # add_function replaces the entry wholesale, and a stale static
        # closure would keep executing the old body.
        cached = self._static_cache.get(f"fun:{function.name}")
        if cached is not None and cached[0] is function:
            return cached[1]
        if function.params:
            obj: HeapObject = Closure(function.name, function.params,
                                      function.param_strict, function.body,
                                      {})
        else:
            # A zero-parameter binding is a CAF: referencing it must
            # evaluate (and memoise) its body, not hand out an unapplicable
            # closure.
            obj = Thunk(lambda: self._eval(function.body, {}))
        ref = self.heap.allocate(obj, static=True)
        self._static_cache[f"fun:{function.name}"] = (function, ref)
        return ref

    def _eval(self, expr: Expr, env: Dict[str, Value]) -> Value:
        if isinstance(expr, EVar):
            return self._eval_var(expr.name, env)
        if isinstance(expr, ELitInt):
            return self.boxed_int(expr.value)
        if isinstance(expr, ELitIntHash):
            return UnboxedInt(expr.value)
        if isinstance(expr, ELitDoubleHash):
            return UnboxedDouble(expr.value)
        if isinstance(expr, ELitChar):
            return self.heap.allocate(
                ConstructorCell("C#", (UnboxedInt(ord(expr.value)),)))
        if isinstance(expr, ELitString):
            return StringValue(expr.value)
        if isinstance(expr, EBool):
            return self.heap.allocate(
                ConstructorCell("True" if expr.value else "False", ()))
        if isinstance(expr, EAnn):
            return self._eval(expr.expr, env)
        if isinstance(expr, ELam):
            closure = Closure("", (expr.var,), (False,), expr.body, dict(env))
            return self.heap.allocate(closure)
        if isinstance(expr, ELet):
            inner = dict(env)
            if expr.signature is not None and _is_strict_type(expr.signature):
                # Kinds are calling conventions for lets too: a binder at an
                # unboxed (or unlifted) type cannot be a thunk — Figure 7
                # compiles it to a strict let!, so the evaluator must force
                # the rhs eagerly (found by corpus fuzzing, pinned in
                # tests/golden/fuzz/strict_unboxed_let.lev).
                inner[expr.var] = self.force(self._eval(expr.rhs, env))
            else:
                inner[expr.var] = self.heap.allocate(
                    Thunk(lambda: self._eval(expr.rhs, env)))
            return self._eval(expr.body, inner)
        if isinstance(expr, EIf):
            condition = self.bool_result(self._eval(expr.condition, env))
            self.costs.case_scrutinies += 1
            branch = expr.consequent if condition else expr.alternative
            return self._eval(branch, env)
        if isinstance(expr, EUnboxedTuple):
            return UnboxedTupleValue(tuple(
                self.force(self._eval(component, env))
                for component in expr.components))
        if isinstance(expr, EApp):
            function = self._eval(expr.function, env)
            return self._apply(function, expr.argument, env)
        if isinstance(expr, ECase):
            return self._eval_case(expr, env)
        raise EvaluationError(f"cannot evaluate {expr!r}")

    def _eval_var(self, name: str, env: Dict[str, Value]) -> Value:
        value = env.get(name)
        if value is not None:
            return value
        # Global resolutions are memoised per evaluator: the fallback chain
        # below (program → primop → constructor → class selector → prelude
        # helper) runs at most once per name, then every later occurrence is
        # one dict probe.  The cache is dropped if the program's function
        # table changes under us.
        cache = self._global_cache
        if self._global_version != self.program.version:
            cache.clear()
            self._global_version = self.program.version
        value = cache.get(name)
        if value is None:
            value = self._resolve_global(name)
            cache[name] = value
        return value

    def global_value(self, name: str) -> Value:
        """Resolve a name outside any local environment (compiled code)."""
        return self._eval_var(name, _EMPTY_ENV)

    def _resolve_global(self, name: str) -> Value:
        if name in self.program.functions:
            return self._closure_value(self._function(name))
        cached = self._static_cache.get(name)
        if cached is not None:
            return cached
        if name in PRIMOP_TABLE:
            arity, implementation = PRIMOP_TABLE[name]
            value = self.heap.allocate(
                PrimOpValue(name, arity, implementation), static=True)
        elif name in CONSTRUCTOR_ARITIES:
            arity = CONSTRUCTOR_ARITIES[name]
            if arity == 0:
                value = self.heap.allocate(ConstructorCell(name, ()),
                                           static=True)
            else:
                value = self.heap.allocate(
                    PrimOpValue(name, arity, self._constructor_builder(name)),
                    static=True)
        elif (selector := self._class_method_selector(name)) is not None:
            # Class methods shadow the boxed prelude helpers, mirroring the
            # type checker (method schemes are bound after the prelude): with
            # the generalised Num attached, `+` dispatches on its argument.
            value = selector
        elif name in _BOXED_HELPERS:
            # Boxed helpers (plusInt & co.) are top-level code: their outer
            # closure is static, exactly like a compiled definition.  Routed
            # through eval() so the compiled backend, when active, lowers
            # them like any other binding.
            value = self.eval(_BOXED_HELPERS[name], {})
        elif name == "appendString":
            value = self.heap.allocate(
                PrimOpValue("appendString", 2, _append_strings), static=True)
        elif name in ("error", "errorWithoutStackTrace"):
            # The levity-polymorphic error of Section 8.1: one strict String
            # argument, then ⊥ at any representation.
            value = self.heap.allocate(
                PrimOpValue(name, 1, _raise_error(name)), static=True)
        elif name == "undefined":
            raise EvaluationError("Prelude.undefined")
        else:
            raise ScopeError(
                f"variable {name!r} is not bound at runtime")
        self._static_cache[name] = value
        return value

    def _class_method_selector(self, name: str) -> Optional[Value]:
        """A dispatching selector when ``name`` is a class method.

        The caller (``_eval_var``) memoises the result under the bare name.
        """
        class_env = self.program.class_env
        if class_env is None:
            return None
        for info in class_env.classes.values():
            if name in info.method_names():
                return self.heap.allocate(
                    MethodSelector(info.name, name), static=True)
        return None

    def _constructor_builder(self, name: str) -> Callable[..., Value]:
        def build(*fields: Value) -> Value:
            return self.heap.allocate(ConstructorCell(name, tuple(fields)))
        return build

    # -- application -------------------------------------------------------------

    def _callee_wants_strict(self, function: Value) -> bool:
        """Is the callee's next parameter call-by-value?  (``function`` must
        already be forced.)  Primops, constructors and selectors always
        force; closures — interpreted or compiled — consult the strictness
        their kinds assigned to the next parameter."""
        obj = self.heap.load(function) \
            if isinstance(function, HeapRef) else None
        if isinstance(obj, Closure):
            index = len(obj.collected)
            return (obj.param_strict[index]
                    if index < len(obj.param_strict) else False)
        if isinstance(obj, CompiledClosure):
            index = len(obj.collected)
            param_strict = obj.target.param_strict
            return (param_strict[index]
                    if index < len(param_strict) else False)
        return True

    def _apply(self, function: Value, argument_expr: Expr,
               env: Dict[str, Value]) -> Value:
        """Apply to an argument *expression* (laziness decided by the callee)."""
        function = self.force(function)
        strict = self._callee_wants_strict(function)

        if strict:
            argument: Value = self.force(self._eval(argument_expr, env))
        elif isinstance(argument_expr, EVar) and argument_expr.name in env:
            # A variable occurrence is already a pointer (or raw value);
            # a compiler passes it directly rather than building a new thunk.
            argument = env[argument_expr.name]
        elif isinstance(argument_expr, (ELitInt, ELitIntHash, ELitDoubleHash,
                                        ELitChar, ELitString, EBool)):
            # Literals are built directly (boxed literals still allocate
            # their constructor cell, but no thunk is needed).
            argument = self._eval(argument_expr, env)
        else:
            captured_env = dict(env)
            argument = self.heap.allocate(
                Thunk(lambda: self._eval(argument_expr, captured_env)))
        return self.apply_value(function, argument, already_value=True)

    def apply_value(self, function: Value, argument: Value,
                    already_value: bool = False) -> Value:
        """Apply a function value to an argument value."""
        function = self.force(function)
        if not isinstance(function, HeapRef):
            raise EvaluationError(
                f"cannot apply non-function value {function!r}")
        obj = self.heap.load(function)
        self.costs.function_calls += 1

        if isinstance(obj, CompiledClosure):
            return obj.enter(self, argument)

        if isinstance(obj, PrimOpValue):
            collected = obj.collected + (self.force(argument),)
            if len(collected) < obj.arity:
                return self.heap.allocate(
                    PrimOpValue(obj.name, obj.arity, obj.apply, collected),
                    static=True)
            self.costs.primops += 1
            return obj.apply(*collected)

        if isinstance(obj, Closure):
            collected = obj.collected + (argument,)
            if len(collected) < len(obj.params):
                return self.heap.allocate(
                    Closure(obj.name, obj.params, obj.param_strict, obj.body,
                            obj.env, collected),
                    static=True)
            call_env = dict(obj.env)
            for param, value, strict in zip(obj.params, collected,
                                            obj.param_strict):
                call_env[param] = self.force(value) if strict else value
            return self._eval(obj.body, call_env)

        if isinstance(obj, MethodSelector):
            return self._dispatch_method(obj, argument)

        raise EvaluationError(
            f"cannot apply value {obj.show_object(self.heap)}")

    # -- linkage for compiled code ----------------------------------------------
    # Generated code (repro.runtime.compiler) binds these once per linked
    # function; they carry the few behaviours that stay dynamic — generic
    # application when the callee is unknown at compile time, and error
    # raising with tree-walker-identical messages.

    def primop_impl(self, name: str) -> Callable[..., Value]:
        """The raw implementation of a primop, for direct compiled calls."""
        return PRIMOP_TABLE[name][1]

    def apply_arg_value(self, function: Value, argument: Value) -> Value:
        """Generic application to an already-evaluated argument."""
        function = self.force(function)
        if self._callee_wants_strict(function):
            argument = self.force(argument)
        return self.apply_value(function, argument, already_value=True)

    def apply_arg_thunk(self, function: Value,
                        compute: Callable[[], Value]) -> Value:
        """Generic application to a deferred argument: the callee's
        convention decides whether ``compute`` runs now or is thunked."""
        function = self.force(function)
        if self._callee_wants_strict(function):
            argument = self.force(compute())
        else:
            argument = self.heap.allocate(Thunk(compute))
        return self.apply_value(function, argument, already_value=True)

    def raise_undefined(self) -> Value:
        raise EvaluationError("Prelude.undefined")

    def no_match(self, scrutinee: Value) -> Value:
        raise PatternError(
            f"no alternative matched {scrutinee.show(self.heap)}")

    def _dispatch_method(self, selector: MethodSelector,
                         argument: Value) -> Value:
        """Dispatch a class method on its first argument's runtime type."""
        class_env = self.program.class_env
        if class_env is None:
            raise EvaluationError("no class environment attached")
        forced = self.force(argument)
        head = _runtime_type_head(self, forced)
        instance = class_env.instances.get((selector.class_name, head))
        if instance is None:
            raise EvaluationError(
                f"no instance for {selector.class_name} {head}")
        self.costs.dictionary_lookups += 1
        implementation = self._eval(instance.methods()[selector.method], {})
        return self.apply_value(implementation, forced, already_value=True)

    # -- case ---------------------------------------------------------------------

    def _eval_case(self, expr: ECase, env: Dict[str, Value]) -> Value:
        scrutinee = self.force(self._eval(expr.scrutinee, env))
        self.costs.case_scrutinies += 1

        for alternative in expr.alternatives:
            matched, bindings = self._match(alternative, scrutinee)
            if matched:
                inner = dict(env)
                inner.update(bindings)
                return self._eval(alternative.rhs, inner)
        raise PatternError(
            f"no alternative matched {scrutinee.show(self.heap)}")

    def _match(self, alternative: Alternative,
               scrutinee: Value) -> Tuple[bool, Dict[str, Value]]:
        constructor = alternative.constructor
        if constructor == "_":
            return True, {}
        if constructor.endswith("#") and \
                constructor[:-1].lstrip("-").isdigit():
            if isinstance(scrutinee, UnboxedInt) and \
                    scrutinee.value == int(constructor[:-1]):
                return True, {}
            return False, {}
        if constructor.lstrip("-").isdigit():
            if isinstance(scrutinee, HeapRef):
                obj = self.heap.load(scrutinee)
                if isinstance(obj, ConstructorCell) and obj.constructor == "I#":
                    field_value = self.force(obj.fields[0])
                    if isinstance(field_value, UnboxedInt) and \
                            field_value.value == int(constructor):
                        return True, {}
            return False, {}
        if isinstance(scrutinee, HeapRef):
            obj = self.heap.load(scrutinee)
            if isinstance(obj, ConstructorCell) and \
                    obj.constructor == constructor:
                return True, dict(zip(alternative.binders, obj.fields))
        if isinstance(scrutinee, UnboxedTupleValue) and constructor == "(#,#)":
            return True, dict(zip(alternative.binders, scrutinee.components))
        return False, {}


def _runtime_type_head(evaluator: Evaluator, value: Value) -> str:
    """The type-constructor name of a runtime value, for method dispatch."""
    if isinstance(value, UnboxedInt):
        return "Int#"
    if isinstance(value, UnboxedDouble):
        return "Double#"
    if isinstance(value, HeapRef):
        obj = evaluator.heap.load(value)
        if isinstance(obj, ConstructorCell):
            return {"I#": "Int", "D#": "Double", "F#": "Float", "C#": "Char",
                    "True": "Bool", "False": "Bool", "Just": "Maybe",
                    "Nothing": "Maybe"}.get(obj.constructor, obj.constructor)
    raise EvaluationError(f"cannot determine the type of {value!r}")


# Small surface-level definitions of the boxed prelude helpers, so programs
# can call plusInt & co. without declaring them (they are defined exactly as
# the paper defines plusInt in Section 2.1).
def _boxed_binop(primop: str) -> Expr:
    return ELam("x", ELam("y", ECase(
        EVar("x"),
        [Alternative("I#", ["i1"], ECase(
            EVar("y"),
            [Alternative("I#", ["i2"],
                         EApp(EVar("I#"),
                              EApp(EApp(EVar(primop), EVar("i1")),
                                   EVar("i2"))))]))])))


def _boxed_cmp(primop: str) -> Expr:
    return ELam("x", ELam("y", ECase(
        EVar("x"),
        [Alternative("I#", ["i1"], ECase(
            EVar("y"),
            [Alternative("I#", ["i2"], ECase(
                EApp(EApp(EVar(primop), EVar("i1")), EVar("i2")),
                [Alternative("1#", [], EVar("True")),
                 Alternative("_", [], EVar("False"))]))]))])))


_BOXED_HELPERS: Dict[str, Expr] = {
    "plusInt": _boxed_binop("+#"),
    "minusInt": _boxed_binop("-#"),
    "timesInt": _boxed_binop("*#"),
    "+": _boxed_binop("+#"),
    "-": _boxed_binop("-#"),
    "*": _boxed_binop("*#"),
    "negate": ELam("x", ECase(
        EVar("x"),
        [Alternative("I#", ["i"],
                     EApp(EVar("I#"),
                          EApp(EVar("negateInt#"), EVar("i"))))])),
    "eqInt": _boxed_cmp("==#"),
    "ltInt": _boxed_cmp("<#"),
    "not": ELam("b", ECase(EVar("b"),
                           [Alternative("True", [], EVar("False")),
                            Alternative("False", [], EVar("True"))])),
    # Lazy in the second operand, exactly like the Report's definitions —
    # these type-checked but were unbound at runtime until corpus fuzzing
    # flushed them out.
    "&&": ELam("a", ELam("b", ECase(
        EVar("a"), [Alternative("True", [], EVar("b")),
                    Alternative("False", [], EVar("False"))]))),
    "||": ELam("a", ELam("b", ECase(
        EVar("a"), [Alternative("True", [], EVar("True")),
                    Alternative("False", [], EVar("b"))]))),
    # The levity-generalised functions of Section 8.1 whose definitions are
    # representation-irrelevant: after type erasure ($) really is just
    # application and (.) really is composition, whatever the result rep.
    "$": ELam("f", ELam("x", EApp(EVar("f"), EVar("x")))),
    ".": ELam("f", ELam("g", ELam("x", EApp(EVar("f"),
                                            EApp(EVar("g"), EVar("x")))))),
    "oneShot": ELam("f", EVar("f")),
    "runRW#": ELam("f", EApp(EVar("f"), EUnboxedTuple(()))),
}


def _append_strings(x: Value, y: Value) -> Value:
    if not isinstance(x, StringValue) or not isinstance(y, StringValue):
        raise EvaluationError("appendString expects two String arguments")
    return StringValue(x.value + y.value)


def _raise_error(name: str) -> Callable[..., Value]:
    def run(message: Value) -> Value:
        text = message.value if isinstance(message, StringValue) else \
            repr(message)
        raise EvaluationError(f"{name}: {text}")
    return run
