"""Cost-model runtime: executes surface programs and counts what they cost."""

from .evaluator import (
    CONSTRUCTOR_ARITIES,
    Evaluator,
    PRIMOP_TABLE,
    Program,
    ProgramFunction,
)
from .programs import (
    compare_sum_to,
    div_mod_unboxed_module,
    geometric_sum_double_module,
    run_sum_to_boxed,
    run_sum_to_unboxed,
    sum_squares_unboxed_module,
    sum_to_boxed_module,
    sum_to_unboxed_module,
)
from .values import (
    Closure,
    ConstructorCell,
    CostModel,
    DictionaryCell,
    Heap,
    HeapObject,
    HeapRef,
    MethodSelector,
    PrimOpValue,
    StringValue,
    Thunk,
    UnboxedDouble,
    UnboxedInt,
    UnboxedTupleValue,
    Value,
)

__all__ = [name for name in dir() if not name.startswith("_")]
