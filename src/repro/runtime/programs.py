"""Canonical workloads for the cost-model experiments (Section 2.1).

The star of the show is the paper's ``sumTo`` loop in its two forms::

    sumTo :: Int -> Int -> Int                sumTo# :: Int# -> Int# -> Int#
    sumTo acc 0 = acc                         sumTo# acc 0# = acc
    sumTo acc n = sumTo (acc + n) (n - 1)     sumTo# acc n = sumTo# (acc +# n) (n -# 1#)

plus a handful of further workloads used by the benchmarks and examples:
a boxed/unboxed dot-product style accumulation over ``Double``/``Double#``,
and a ``divMod``-style function returning an unboxed pair (Section 2.3).

Each builder returns a surface :class:`~repro.surface.ast.Module`; running
them through :func:`repro.runtime.evaluator.Program.from_module` type-checks
them (so the unboxed versions really do get call-by-value calling
conventions from their kinds) and attaches the cost model.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..surface.ast import (
    Alternative,
    ECase,
    EApp,
    EIf,
    ELitDoubleHash,
    ELitInt,
    ELitIntHash,
    EUnboxedTuple,
    EVar,
    FunBind,
    Module,
    TypeSig,
    apply,
)
from ..surface.types import (
    DOUBLE_HASH_TY,
    INT_HASH_TY,
    INT_TY,
    UnboxedTupleTy,
    fun,
)
from .evaluator import Evaluator, Program
from .values import CostModel, UnboxedInt, Value


def sum_to_boxed_module() -> Module:
    """The boxed ``sumTo`` of Section 2.1 (via ``eqInt``/``plusInt``/``minusInt``)."""
    body = EIf(apply(EVar("eqInt"), EVar("n"), ELitInt(0)),
               EVar("acc"),
               apply(EVar("sumTo"),
                     apply(EVar("plusInt"), EVar("acc"), EVar("n")),
                     apply(EVar("minusInt"), EVar("n"), ELitInt(1))))
    return Module("SumToBoxed", (
        TypeSig("sumTo", fun(INT_TY, INT_TY, INT_TY)),
        FunBind("sumTo", ("acc", "n"), body),
    ))


def sum_to_unboxed_module() -> Module:
    """The unboxed ``sumTo#`` of Section 2.1."""
    body = ECase(apply(EVar("==#"), EVar("n"), ELitIntHash(0)),
                 [Alternative("1#", [], EVar("acc")),
                  Alternative("_", [],
                              apply(EVar("sumTo#"),
                                    apply(EVar("+#"), EVar("acc"), EVar("n")),
                                    apply(EVar("-#"), EVar("n"),
                                          ELitIntHash(1))))])
    return Module("SumToUnboxed", (
        TypeSig("sumTo#", fun(INT_HASH_TY, INT_HASH_TY, INT_HASH_TY)),
        FunBind("sumTo#", ("acc", "n"), body),
    ))


def sum_squares_unboxed_module() -> Module:
    """``sumSq# acc n`` — a second unboxed accumulation used by benchmarks."""
    body = ECase(apply(EVar("==#"), EVar("n"), ELitIntHash(0)),
                 [Alternative("1#", [], EVar("acc")),
                  Alternative("_", [],
                              apply(EVar("sumSq#"),
                                    apply(EVar("+#"), EVar("acc"),
                                          apply(EVar("*#"), EVar("n"),
                                                EVar("n"))),
                                    apply(EVar("-#"), EVar("n"),
                                          ELitIntHash(1))))])
    return Module("SumSquaresUnboxed", (
        TypeSig("sumSq#", fun(INT_HASH_TY, INT_HASH_TY, INT_HASH_TY)),
        FunBind("sumSq#", ("acc", "n"), body),
    ))


def geometric_sum_double_module() -> Module:
    """An unboxed ``Double#`` accumulation (exercises the float register class)."""
    body = ECase(apply(EVar("==#"), EVar("n"), ELitIntHash(0)),
                 [Alternative("1#", [], EVar("acc")),
                  Alternative("_", [],
                              apply(EVar("geo##"),
                                    apply(EVar("+##"), EVar("acc"),
                                          apply(EVar("/##"),
                                                ELitDoubleHash(1.0),
                                                apply(EVar("int2Double#"),
                                                      EVar("n")))),
                                    apply(EVar("-#"), EVar("n"),
                                          ELitIntHash(1))))])
    return Module("GeometricDouble", (
        TypeSig("geo##", fun(DOUBLE_HASH_TY, INT_HASH_TY, DOUBLE_HASH_TY)),
        FunBind("geo##", ("acc", "n"), body),
    ))


def div_mod_unboxed_module() -> Module:
    """``divMod# :: Int# -> Int# -> (# Int#, Int# #)`` (Section 2.3)."""
    body = EUnboxedTuple((apply(EVar("quotInt#"), EVar("n"), EVar("k")),
                          apply(EVar("remInt#"), EVar("n"), EVar("k"))))
    return Module("DivModUnboxed", (
        TypeSig("divMod#", fun(INT_HASH_TY, INT_HASH_TY,
                               UnboxedTupleTy((INT_HASH_TY, INT_HASH_TY)))),
        FunBind("divMod#", ("n", "k"), body),
    ))


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------


def run_sum_to_boxed(n: int) -> Tuple[int, CostModel]:
    """Run the boxed loop for ``n`` iterations; return (result, costs)."""
    program = Program.from_module(sum_to_boxed_module())
    evaluator = Evaluator(program)
    result = evaluator.run("sumTo", evaluator.boxed_int(0),
                           evaluator.boxed_int(n))
    return evaluator.int_result(result), evaluator.costs


def run_sum_to_unboxed(n: int) -> Tuple[int, CostModel]:
    """Run the unboxed loop for ``n`` iterations; return (result, costs)."""
    program = Program.from_module(sum_to_unboxed_module())
    evaluator = Evaluator(program)
    result = evaluator.run("sumTo#", UnboxedInt(0), UnboxedInt(n))
    return evaluator.int_result(result), evaluator.costs


def compare_sum_to(n: int) -> Dict[str, Dict[str, int]]:
    """The Section 2.1 comparison at loop size ``n`` (both must agree on the sum)."""
    boxed_result, boxed_costs = run_sum_to_boxed(n)
    unboxed_result, unboxed_costs = run_sum_to_unboxed(n)
    if boxed_result != unboxed_result:
        raise AssertionError(
            f"boxed and unboxed loops disagree: {boxed_result} vs "
            f"{unboxed_result}")
    expected = n * (n + 1) // 2
    if boxed_result != expected:
        raise AssertionError(
            f"loop computed {boxed_result}, expected {expected}")
    return {
        "boxed": boxed_costs.as_dict(),
        "unboxed": unboxed_costs.as_dict(),
    }
