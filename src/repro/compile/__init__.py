"""Type-directed compilation from L to M (Figure 7)."""

from .compiler import (
    CompilationResult,
    Compiler,
    VarEnv,
    compile_and_run,
    compile_expr,
)

__all__ = [
    "CompilationResult",
    "Compiler",
    "VarEnv",
    "compile_and_run",
    "compile_expr",
]
