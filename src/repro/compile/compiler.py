"""Type-directed compilation from L to M (Figure 7 of the paper).

The compilation judgment ``⟦e⟧ᵥΓ ⇝ t`` turns an L expression into an
A-normal-form M expression.  The interesting rules are the two application
rules, which inspect the *kind* of the argument's type:

* ``TYPE P`` — C_APPLAZY: the argument becomes a heap-allocated thunk bound
  by a lazy ``let`` and the function receives a pointer;
* ``TYPE I`` — C_APPINT: the argument is evaluated by a strict ``let!`` and
  the function receives an integer register.

Likewise a λ-abstraction compiles to a pointer-binder λ or an integer-binder
λ depending on the kind of its binder's type (C_LAMPTR / C_LAMINT).  Type
and representation abstractions/applications are erased (C_TLAM, C_TAPP,
C_RLAM, C_RAPP).

The compiler is *partial*: it cannot compile a λ that binds a
levity-polymorphic variable, nor an application whose argument kind is not
concrete, because it would not know which register class to use.  The typing
rules of L (Figure 3) rule those programs out, and the Compilation theorem
(checked executably in :mod:`repro.metatheory.theorems`) states that every
well-typed L program compiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..core.errors import CompilationError, TypeCheckError
from ..lang_l.syntax import (
    App,
    Case,
    CaseLit,
    Con,
    Context,
    ErrorExpr,
    Fix,
    KIND_INT,
    KIND_PTR,
    Lam,
    LExpr,
    Lit,
    PrimOp,
    RepApp,
    RepLam,
    TyApp,
    TyLam,
    Var,
)
from ..lang_l.typing import kind_of, type_of
from ..lang_m.syntax import (
    M_ERROR,
    MAppLit,
    MAppVar,
    MCase,
    MCaseLit,
    MConVar,
    MExpr,
    MFix,
    MLam,
    MLet,
    MLetStrict,
    MLit,
    MPrimOp,
    MVar,
    MVarRef,
    fresh_integer_var,
    fresh_pointer_var,
)


@dataclass(frozen=True)
class VarEnv:
    """The compilation variable environment ``V``.

    Maps L term variables to M variables and remembers every M variable that
    has been introduced, so that freshness side-conditions (``p ∉ dom(V)``)
    hold by construction.  The paper's ``Γ ∝ V`` compatibility condition —
    that ``V`` maps each term variable bound in ``Γ`` to an M variable of the
    matching register sort — is checked by :meth:`compatible_with`.
    """

    mapping: Tuple[Tuple[str, MVar], ...] = ()
    introduced: Tuple[MVar, ...] = ()

    def lookup(self, name: str) -> Optional[MVar]:
        for source, target in reversed(self.mapping):
            if source == name:
                return target
        return None

    def bind(self, name: str, var: MVar) -> "VarEnv":
        return VarEnv(self.mapping + ((name, var),),
                      self.introduced + (var,))

    def extend_fresh(self, var: MVar) -> "VarEnv":
        return VarEnv(self.mapping, self.introduced + (var,))

    def compatible_with(self, ctx: Context) -> bool:
        """The paper's ``Γ ∝ V`` condition (used by the Compilation theorem)."""
        for name, type_ in ctx.term_vars:
            target = self.lookup(name)
            if target is None:
                return False
            try:
                kind = kind_of(ctx, type_)
            except TypeCheckError:
                return False
            if kind == KIND_PTR and not target.is_pointer():
                return False
            if kind == KIND_INT and not target.is_integer():
                return False
        return True


@dataclass(frozen=True)
class CompilationResult:
    """A compiled M expression plus bookkeeping useful to tests and benches."""

    code: MExpr
    lazy_lets: int
    strict_lets: int
    erased_type_nodes: int
    fix_forms: int = 0
    primop_forms: int = 0

    def pretty(self) -> str:
        return self.code.pretty()


class Compiler:
    """Stateful driver for the Figure 7 compilation rules."""

    def __init__(self) -> None:
        self.lazy_lets = 0
        self.strict_lets = 0
        self.erased_type_nodes = 0
        self.fix_forms = 0
        self.primop_forms = 0

    def compile(self, ctx: Context, env: VarEnv, expr: LExpr) -> MExpr:
        """Compile ``expr`` under typing context ``ctx`` and environment ``env``."""
        if isinstance(expr, Var):
            target = env.lookup(expr.name)  # C_VAR
            if target is None:
                raise CompilationError(
                    f"variable {expr.name!r} has no M counterpart in V")
            return MVarRef(target)

        if isinstance(expr, Lit):
            return MLit(expr.value)  # C_INTLIT

        if isinstance(expr, ErrorExpr):
            return M_ERROR  # C_ERROR

        if isinstance(expr, App):
            return self._compile_application(ctx, env, expr)

        if isinstance(expr, Lam):
            return self._compile_lambda(ctx, env, expr)

        if isinstance(expr, TyLam):
            # C_TLAM: type abstractions are erased.
            self.erased_type_nodes += 1
            inner_ctx = ctx.bind_type(expr.var, expr.kind)
            return self.compile(inner_ctx, env, expr.body)

        if isinstance(expr, TyApp):
            # C_TAPP: type applications are erased.
            self.erased_type_nodes += 1
            return self.compile(ctx, env, expr.expr)

        if isinstance(expr, RepLam):
            # C_RLAM: representation abstractions are erased.
            self.erased_type_nodes += 1
            return self.compile(ctx.bind_rep(expr.var), env, expr.body)

        if isinstance(expr, RepApp):
            # C_RAPP: representation applications are erased.
            self.erased_type_nodes += 1
            return self.compile(ctx, env, expr.expr)

        if isinstance(expr, Con):
            # C_CON: evaluate the field strictly, then build the box.
            fresh = fresh_integer_var()
            env_prime = env.extend_fresh(fresh)
            field_code = self.compile(ctx, env_prime, expr.argument)
            self.strict_lets += 1
            return MLetStrict(fresh, field_code, MConVar(fresh))

        if isinstance(expr, Case):
            # C_CASE
            scrutinee_code = self.compile(ctx, env, expr.scrutinee)
            fresh = fresh_integer_var()
            body_ctx = ctx.bind_term(expr.binder, _INT_HASH)
            body_env = env.bind(expr.binder, fresh)
            body_code = self.compile(body_ctx, body_env, expr.body)
            return MCase(scrutinee_code, fresh, body_code)

        if isinstance(expr, Fix):
            # C_FIX: the binder is pointer-kinded (rule E_FIX), so it
            # compiles to a pointer variable that the machine ties through
            # the heap.
            try:
                binder_kind = kind_of(ctx, expr.var_type)
            except TypeCheckError as exc:
                raise CompilationError(
                    f"cannot compile fix {expr.var}: its type does not "
                    f"kind-check ({exc})") from exc
            if binder_kind != KIND_PTR:
                raise CompilationError(
                    f"cannot compile fix {expr.var}: recursion needs a "
                    f"pointer-kinded binder, got {binder_kind.pretty()}")
            fresh = fresh_pointer_var()
            body_ctx = ctx.bind_term(expr.var, expr.var_type)
            body_env = env.bind(expr.var, fresh)
            self.fix_forms += 1
            return MFix(fresh, self.compile(body_ctx, body_env, expr.body))

        if isinstance(expr, PrimOp):
            # C_PRIMOP: every operand is Int#, so each non-literal operand
            # is named by a strict let! (C_APPINT's calling convention) and
            # the primop itself sees only literals and integer registers.
            lets = []
            atoms = []
            env_prime = env
            for argument in expr.arguments:
                if isinstance(argument, Lit):
                    atoms.append(MLit(argument.value))
                    continue
                fresh = fresh_integer_var()
                env_prime = env_prime.extend_fresh(fresh)
                code = self.compile(ctx, env_prime, argument)
                lets.append((fresh, code))
                atoms.append(MVarRef(fresh))
            self.primop_forms += 1
            result: MExpr = MPrimOp(expr.name, tuple(atoms))
            for fresh, code in reversed(lets):
                self.strict_lets += 1
                result = MLetStrict(fresh, code, result)
            return result

        if isinstance(expr, CaseLit):
            # C_CASELIT: scrutinee, branches and default all compile in the
            # same environment — literal branches bind nothing.
            return MCaseLit(
                self.compile(ctx, env, expr.scrutinee),
                tuple((literal, self.compile(ctx, env, branch))
                      for literal, branch in expr.alternatives),
                self.compile(ctx, env, expr.default))

        raise CompilationError(f"cannot compile expression {expr!r}")

    # -- the two application rules -------------------------------------------

    def _compile_application(self, ctx: Context, env: VarEnv,
                             expr: App) -> MExpr:
        try:
            argument_type = type_of(ctx, expr.argument)
            argument_kind = kind_of(ctx, argument_type)
        except TypeCheckError as exc:
            raise CompilationError(
                f"cannot compile application: argument does not typecheck "
                f"({exc})") from exc

        if argument_kind == KIND_PTR:
            # C_APPLAZY: let p = t2 in t1 p
            fresh = fresh_pointer_var()
            env_prime = env.extend_fresh(fresh)
            function_code = self.compile(ctx, env_prime, expr.function)
            argument_code = self.compile(ctx, env_prime, expr.argument)
            self.lazy_lets += 1
            return MLet(fresh, argument_code, MAppVar(function_code, fresh))

        if argument_kind == KIND_INT:
            # C_APPINT: let! i = t2 in t1 i
            fresh = fresh_integer_var()
            env_prime = env.extend_fresh(fresh)
            function_code = self.compile(ctx, env_prime, expr.function)
            argument_code = self.compile(ctx, env_prime, expr.argument)
            self.strict_lets += 1
            return MLetStrict(fresh, argument_code,
                              MAppVar(function_code, fresh))

        raise CompilationError(
            f"cannot compile application: the argument's kind "
            f"{argument_kind.pretty()} is levity-polymorphic, so the calling "
            "convention is unknown (this is what the Section 5.1 "
            "restrictions rule out)")

    def _compile_lambda(self, ctx: Context, env: VarEnv, expr: Lam) -> MExpr:
        try:
            binder_kind = kind_of(ctx, expr.var_type)
        except TypeCheckError as exc:
            raise CompilationError(
                f"cannot compile λ{expr.var}: its type does not kind-check "
                f"({exc})") from exc

        if binder_kind == KIND_PTR:
            fresh = fresh_pointer_var()  # C_LAMPTR
        elif binder_kind == KIND_INT:
            fresh = fresh_integer_var()  # C_LAMINT
        else:
            raise CompilationError(
                f"cannot compile λ{expr.var}: its type has levity-"
                f"polymorphic kind {binder_kind.pretty()}, so no register "
                "class can be chosen")

        body_ctx = ctx.bind_term(expr.var, expr.var_type)
        body_env = env.bind(expr.var, fresh)
        body_code = self.compile(body_ctx, body_env, expr.body)
        return MLam(fresh, body_code)


# Imported lazily to avoid a cycle at module import time.
from ..lang_l.syntax import INT_HASH as _INT_HASH  # noqa: E402


def compile_expr(expr: LExpr, ctx: Context = Context(),
                 env: VarEnv = VarEnv()) -> CompilationResult:
    """Compile a (typically closed) L expression to M.

    This is the public entry point used by the examples, tests and
    benchmarks.  Raises :class:`CompilationError` when compilation is
    impossible — by the Compilation theorem that only happens for ill-typed
    input.
    """
    compiler = Compiler()
    code = compiler.compile(ctx, env, expr)
    return CompilationResult(code, compiler.lazy_lets, compiler.strict_lets,
                             compiler.erased_type_nodes, compiler.fix_forms,
                             compiler.primop_forms)


def compile_and_run(expr: LExpr, ctx: Context = Context(),
                    max_steps: int = 1_000_000):
    """Compile an L expression and immediately run it on the M machine."""
    from ..lang_m.machine import run as run_machine

    result = compile_expr(expr, ctx)
    return run_machine(result.code, max_steps=max_steps)
