"""The sharded, content-addressed on-disk cache store (schema v4).

Schemas v1–v3 persisted the whole :class:`~repro.driver.batch.ResultCache`
as **one JSON document**: every CLI invocation parsed the entire cache,
any one-entry store re-serialised everything, and the file grew without
bound.  Cost scaled with *corpus history* instead of *work done*.

This module replaces the document with a **shard directory**.  Every key
already ends in a SHA-256 hex digest (that is what "content-addressed"
buys us), so the store:

* assigns each key to one of :data:`SHARD_COUNT` (=256) shards by the
  first two hex characters of its trailing digest — a uniform split that
  is stable across runs, machines and schema-compatible versions;
* segregates the key namespaces into per-table directories (``unit/``
  for bare unit and file keys, plus the ``pfile:``/``outline:``/
  ``exports:``/``codegen:`` side-tables), so the side-tables never
  dilute the hot unit shards;
* loads shards **lazily** — a warm no-op run reads only the shards it
  actually probes — and tracks dirtiness **per shard**, so a single-unit
  edit rewrites exactly the shards its entries live in and ``save()``
  neither reads nor writes clean shards;
* keeps the v3 atomicity discipline per shard file — merge the entries a
  concurrent writer persisted since we loaded, write to a temp file,
  ``os.replace`` into place — and serialises the read-merge-write window
  itself with a per-shard advisory ``flock`` (a ``.lock`` sibling file),
  so two processes racing on one cache directory can tear nothing *and*
  lose nothing: ``os.replace`` alone would let writer B re-read a shard
  just before writer A replaced it and then clobber A's entries.

On-disk layout::

    <root>/unit/a3.json      {"schema": 4, "entries": {...}, "stamps": {...}}
    <root>/pfile/07.json
    <root>/codegen/ff.json
    ...

``stamps`` maps each key to the UNIX time it was last stored (refreshed
on *read* only when older than :data:`STAMP_REFRESH_SECONDS`, so steady
no-op runs stay zero-write); ``gc(max_age)`` uses them to drop entries
that have neither been produced nor consumed recently.

A legacy monolithic cache *file* at the root path is unsalvageable by
construction — :data:`CACHE_SCHEMA` is hashed into every key, so v3
entries can never hit under v4 — and is deleted on first open (the
documented one-time cold import; counted as ``cache.store.migrations``).

The :class:`HotTier` is a process-level LRU of *clean* shard contents,
owned by a :class:`~repro.driver.session.Session` and shared by every
store it opens: repeated ``check_many``/``check_project`` calls in one
warm process serve hot shards from memory without touching disk.  Only
disk-synced shard snapshots enter the tier (on load and after save), so
a crashed or abandoned writer can never make the tier lie about what is
persisted.

Metrics (``repro.telemetry``): ``cache.store.shards_read`` /
``shards_written`` / ``entries_loaded`` / ``hot_hits`` / ``hot_misses``
/ ``migrations`` / ``gc_dropped``; every shard file read is a
``cache.shard`` trace span.
"""

from __future__ import annotations

import collections
import contextlib
import hashlib
import json
import os
import tempfile
import time
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover — non-POSIX fallback, best-effort
    fcntl = None  # type: ignore[assignment]

from ..telemetry import REGISTRY as _REGISTRY, TRACER as _TRACER

__all__ = [
    "CACHE_SCHEMA",
    "SHARD_COUNT",
    "STAMP_REFRESH_SECONDS",
    "TABLES",
    "HotTier",
    "ShardStore",
    "shard_of",
    "table_of",
]

#: Bump when the payload layout or the pipeline's observable output
#: changes incompatibly; old cache entries then miss instead of
#: deserialising junk.
#: v2: binding-level units (one entry per unit, spans segment-relative).
#: v3: project builds — unit keys fold in imported schemes, plus the
#: ``outline:`` and ``exports:`` side-tables.
#: v4: the sharded store — entries split across per-table shard
#: directories with per-entry GC stamps.  v≤3 monolithic documents
#: degrade to a one-time cold import, never to errors.
CACHE_SCHEMA = 4

#: Shards per table.  256 = one shard per first-byte value of the
#: trailing digest; at 10k entries a shard holds ~40, so any one probe
#: or write touches well under 1% of the corpus.
SHARD_COUNT = 256

#: The key namespaces, each its own shard directory.  ``unit`` holds both
#: per-unit and whole-file entries (bare sha256 keys); the rest mirror
#: the key prefixes minted by :mod:`repro.driver.batch`.  ``misc`` is the
#: fallback for unknown prefixes, so a future namespace is storable
#: before this table learns its name.
TABLES = ("unit", "pfile", "outline", "exports", "codegen", "misc")

#: A hit refreshes an entry's GC stamp only when the stamp is older than
#: this (one week): hot entries survive ``gc --max-age`` indefinitely,
#: while back-to-back no-op runs still write zero shards.
STAMP_REFRESH_SECONDS = 7 * 24 * 3600.0


def table_of(key: str) -> str:
    """The shard table a key belongs to, by its namespace prefix.

    ``exports:`` keys wrap a *file* key which may itself be prefixed
    (``exports:pfile:<hex>``); the outermost prefix wins.  Codegen keys
    carry the generator version in the prefix (``codegen1:<hex>``) and
    share one table across versions — bumping ``CODEGEN_VERSION``
    orphans old entries in place, where ``gc`` reaps them.
    """
    head, sep, _ = key.partition(":")
    if not sep:
        return "unit"
    if head in ("pfile", "outline", "exports"):
        return head
    if head.startswith("codegen") and head[len("codegen"):].isdigit():
        return "codegen"
    return "misc"


def shard_of(key: str) -> int:
    """The shard index (0..SHARD_COUNT-1) of a key.

    Keys are content-addressed — every well-formed key ends in a SHA-256
    hex digest — so the first two hex characters of the trailing
    ``:``-segment give a uniform, stable assignment.  Malformed keys
    (possible only via hand-edited callers) fall back to hashing the
    whole key, which is equally stable.
    """
    tail = key.rsplit(":", 1)[-1][:2]
    try:
        index = int(tail, 16)
    except ValueError:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        index = int(digest[:2], 16)
    return index % SHARD_COUNT


def _shard_name(index: int) -> str:
    return f"{index:02x}.json"


@contextlib.contextmanager
def _shard_lock(shard_path: str) -> Iterator[None]:
    """Exclusive advisory lock over one shard's read-merge-write window.

    Lives in a ``.lock`` sibling of the shard file (never deleted —
    unlink+flock is its own race).  ``os.replace`` keeps readers safe
    without taking it; only writers that re-read-merge-replace must hold
    it, otherwise two savers can base their merges on the same stale
    read and the second replace silently drops the first one's entries.
    Platforms without ``fcntl`` degrade to the unlocked best-effort
    behaviour.
    """
    if fcntl is None:
        yield
        return
    os.makedirs(os.path.dirname(shard_path), exist_ok=True)
    descriptor = os.open(shard_path + ".lock",
                         os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(descriptor, fcntl.LOCK_EX)
        yield
    finally:
        os.close(descriptor)  # closing the descriptor releases the lock


class HotTier:
    """A bounded LRU of clean shard snapshots, shared across stores.

    Keys are ``(root, table, shard index)``; values are the shard's
    ``(entries, stamps)`` as last synced with disk.  The tier hands out
    *copies* and receives *copies*, so a store mutating its working view
    can never leak unsaved entries into another store's reads — the tier
    only ever reflects persisted state.
    """

    def __init__(self, max_shards: int = 1024) -> None:
        self.max_shards = max(1, int(max_shards))
        self._shards: "collections.OrderedDict[Tuple[str, str, int], " \
            "Tuple[Dict[str, dict], Dict[str, float]]]" = \
            collections.OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple[str, str, int]
            ) -> Optional[Tuple[Dict[str, dict], Dict[str, float]]]:
        snapshot = self._shards.get(key)
        if snapshot is None:
            self.misses += 1
            _REGISTRY.inc("cache.store.hot_misses")
            return None
        self._shards.move_to_end(key)
        self.hits += 1
        _REGISTRY.inc("cache.store.hot_hits")
        return dict(snapshot[0]), dict(snapshot[1])

    def put(self, key: Tuple[str, str, int], entries: Dict[str, dict],
            stamps: Dict[str, float]) -> None:
        self._shards[key] = (dict(entries), dict(stamps))
        self._shards.move_to_end(key)
        while len(self._shards) > self.max_shards:
            self._shards.popitem(last=False)

    def invalidate(self, root: Optional[str] = None) -> None:
        """Drop cached shards (all of them, or one store root's)."""
        if root is None:
            self._shards.clear()
            return
        for key in [key for key in self._shards if key[0] == root]:
            del self._shards[key]

    def __len__(self) -> int:
        return len(self._shards)


class ShardStore:
    """A lazily-loaded, per-shard-dirty view of one cache directory.

    The store is a working *overlay*: :meth:`get`/:meth:`put` operate on
    in-memory shard views populated on first touch (from the hot tier or
    disk); :meth:`save` persists exactly the dirty shards, merging
    against a fresh disk read per shard so concurrent writers lose
    nothing.  Instance counters (``shards_read``/``shards_written``/…)
    mirror the ``cache.store.*`` registry metrics for tests and benches
    that need per-store numbers.
    """

    def __init__(self, root: str, hot: Optional[HotTier] = None) -> None:
        self.root = os.path.abspath(root)
        self.hot = hot
        #: (table, shard) -> working entries / stamps views.
        self._entries: Dict[Tuple[str, int], Dict[str, dict]] = {}
        self._stamps: Dict[Tuple[str, int], Dict[str, float]] = {}
        self._dirty: Set[Tuple[str, int]] = set()
        #: Keys served as hits per shard, for the coarse stamp refresh.
        self._probed: Dict[Tuple[str, int], Set[str]] = {}
        self.shards_read = 0
        self.shards_written = 0
        self.migrated = False
        if os.path.isfile(self.root):
            self._migrate_legacy_file()

    # -- legacy monolithic documents ------------------------------------------

    def _migrate_legacy_file(self) -> None:
        """Delete a v≤3 monolithic cache document at the root path.

        Old entries cannot hit under the current schema (the schema
        number is hashed into every key), so the only sound migration is
        the cold import: remove the document and let the directory grow
        in its place.  Corrupt files take the same path — a cache that
        cannot be read is a cold cache, exactly as before.
        """
        try:
            os.unlink(self.root)
        except OSError:
            return  # raced with another migrating process; equally fine
        self.migrated = True
        _REGISTRY.inc("cache.store.migrations")

    # -- shard IO -------------------------------------------------------------

    def _shard_path(self, table: str, index: int) -> str:
        return os.path.join(self.root, table, _shard_name(index))

    @staticmethod
    def _read_shard_file(path: str
                         ) -> Tuple[Dict[str, dict], Dict[str, float]]:
        """One shard file's (entries, stamps); tolerant of anything.

        A missing, unreadable, corrupt or schema-mismatched shard is an
        empty shard — the next save overwrites it wholesale.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return {}, {}
        if not isinstance(document, dict) \
                or document.get("schema") != CACHE_SCHEMA:
            return {}, {}
        entries = document.get("entries")
        stamps = document.get("stamps")
        if not isinstance(entries, dict):
            return {}, {}
        if not isinstance(stamps, dict):
            stamps = {}
        return entries, {key: stamp for key, stamp in stamps.items()
                         if isinstance(stamp, (int, float))}

    def _ensure(self, table: str, index: int) -> Dict[str, dict]:
        """The working entries view of one shard, loading it on demand."""
        slot = (table, index)
        entries = self._entries.get(slot)
        if entries is not None:
            return entries
        if self.hot is not None:
            snapshot = self.hot.get((self.root, table, index))
            if snapshot is not None:
                self._entries[slot], self._stamps[slot] = snapshot
                return self._entries[slot]
        path = self._shard_path(table, index)
        with _TRACER.span("cache.shard", table=table, shard=index):
            entries, stamps = self._read_shard_file(path)
        self.shards_read += 1
        _REGISTRY.inc("cache.store.shards_read")
        if entries:
            _REGISTRY.inc("cache.store.entries_loaded", len(entries))
        if self.hot is not None:
            self.hot.put((self.root, table, index), entries, stamps)
        self._entries[slot] = entries
        self._stamps[slot] = stamps
        return entries

    # -- the key/value API ----------------------------------------------------

    def locate(self, key: str) -> Tuple[str, int]:
        return table_of(key), shard_of(key)

    def get(self, key: str) -> Optional[dict]:
        table, index = self.locate(key)
        payload = self._ensure(table, index).get(key)
        if payload is not None:
            self._probed.setdefault((table, index), set()).add(key)
        return payload

    def put(self, key: str, payload: dict) -> bool:
        """Store a payload; returns False when it matched what was there
        (no write, no dirty shard — identical re-stores are free)."""
        table, index = self.locate(key)
        entries = self._ensure(table, index)
        if entries.get(key) == payload:
            return False
        entries[key] = payload
        self._stamps[(table, index)][key] = time.time()
        self._dirty.add((table, index))
        return True

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    # -- persistence ----------------------------------------------------------

    def _refresh_probed_stamps(self) -> None:
        """Re-stamp long-unstamped entries this run consumed.

        A hit older than :data:`STAMP_REFRESH_SECONDS` marks its shard
        dirty so ``gc --max-age`` sees actively-used entries as live;
        recently-stamped hits cost nothing, keeping steady no-op runs at
        zero shard writes.
        """
        now = time.time()
        for slot, keys in self._probed.items():
            stamps = self._stamps.get(slot)
            if stamps is None:
                continue
            stale = [key for key in keys
                     if now - stamps.get(key, 0.0) > STAMP_REFRESH_SECONDS]
            if not stale:
                continue
            for key in stale:
                stamps[key] = now
            self._dirty.add(slot)
        self._probed.clear()

    def save(self) -> int:
        """Persist dirty shards; returns how many shard files were written.

        Per dirty shard, under that shard's advisory lock: re-read the
        file fresh from disk (never the hot tier — another process may
        have advanced it), merge (our entries win on collision; same key
        means same deterministic payload), write to a temp file in the
        shard directory and atomically ``os.replace`` it into place.
        Clean shards are neither read nor written.
        """
        self._refresh_probed_stamps()
        if not self._dirty:
            return 0
        written = 0
        for table, index in sorted(self._dirty):
            slot = (table, index)
            path = self._shard_path(table, index)
            with _shard_lock(path):
                merged, stamps = self._read_shard_file(path)
                merged.update(self._entries.get(slot, {}))
                stamps.update(self._stamps.get(slot, {}))
                stamps = {key: stamp for key, stamp in stamps.items()
                          if key in merged}
                self._write_shard_file(path, merged, stamps)
            self._entries[slot] = merged
            self._stamps[slot] = stamps
            if self.hot is not None:
                self.hot.put((self.root, table, index), merged, stamps)
            written += 1
        self._dirty.clear()
        return written

    # -- whole-store walks (tests, CLI, GC) -----------------------------------

    def _disk_shards(self) -> Iterator[Tuple[str, int, str]]:
        """Every shard file currently on disk, as (table, index, path)."""
        for table in TABLES:
            directory = os.path.join(self.root, table)
            try:
                names = sorted(os.listdir(directory))
            except OSError:
                continue
            for name in names:
                stem, ext = os.path.splitext(name)
                if ext != ".json" or len(stem) != 2:
                    continue
                try:
                    index = int(stem, 16)
                except ValueError:
                    continue
                yield table, index, os.path.join(directory, name)

    def load_all(self) -> Dict[str, dict]:
        """Every entry, disk plus unsaved working views (views win).

        This reads the whole store — it exists for tests, ``cache``
        CLI actions and benchmarks, not for the checking fast path.
        """
        merged: Dict[str, dict] = {}
        for _table, _index, path in self._disk_shards():
            merged.update(self._read_shard_file(path)[0])
        for entries in self._entries.values():
            merged.update(entries)
        return merged

    def stats(self) -> dict:
        """A JSON-ready summary of the on-disk store."""
        tables: Dict[str, dict] = {}
        total_entries = 0
        total_bytes = 0
        total_shards = 0
        for table, _index, path in self._disk_shards():
            entries, _stamps = self._read_shard_file(path)
            row = tables.setdefault(table, {"shards": 0, "entries": 0,
                                            "bytes": 0})
            row["shards"] += 1
            row["entries"] += len(entries)
            try:
                size = os.path.getsize(path)
            except OSError:
                size = 0
            row["bytes"] += size
            total_shards += 1
            total_entries += len(entries)
            total_bytes += size
        return {"schema": CACHE_SCHEMA, "root": self.root,
                "shards": total_shards, "entries": total_entries,
                "bytes": total_bytes, "tables": tables}

    def verify(self, validator: Optional[
            Callable[[str, dict], bool]] = None) -> List[str]:
        """Structural problems in the on-disk store (empty list = sound).

        Checks every shard file parses with the current schema, every
        entry sits in the table + shard its key assigns, and — when a
        ``validator(key, payload) -> bool`` is supplied — that each
        payload has the shape its namespace promises.
        """
        problems: List[str] = []
        for table, index, path in self._disk_shards():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    document = json.load(handle)
            except (OSError, ValueError) as exc:
                problems.append(f"{path}: unreadable shard ({exc})")
                continue
            if not isinstance(document, dict) \
                    or document.get("schema") != CACHE_SCHEMA:
                problems.append(
                    f"{path}: schema "
                    f"{document.get('schema') if isinstance(document, dict) else '?'}"
                    f" != {CACHE_SCHEMA}")
                continue
            entries = document.get("entries")
            if not isinstance(entries, dict):
                problems.append(f"{path}: entries is not an object")
                continue
            for key, payload in entries.items():
                expected = (table_of(key), shard_of(key))
                if expected != (table, index):
                    problems.append(
                        f"{path}: key {key[:24]}… belongs in "
                        f"{expected[0]}/{_shard_name(expected[1])}")
                elif validator is not None \
                        and not validator(key, payload):
                    problems.append(
                        f"{path}: invalid payload under {key[:24]}…")
        return problems

    def gc(self, max_age_seconds: float,
           now: Optional[float] = None) -> Tuple[int, int]:
        """Drop entries older than ``max_age_seconds``; returns
        ``(kept, dropped)``.

        Age is the GC stamp (last store, or last hit if that was more
        than :data:`STAMP_REFRESH_SECONDS` later); entries with no stamp
        (hand-edited shards) age by their shard file's mtime.  Shards
        rewrite only when they actually shrank; emptied shard files are
        removed.
        """
        now = time.time() if now is None else now
        cutoff = now - max(0.0, max_age_seconds)
        kept = 0
        dropped = 0
        for _table, _index, path in self._disk_shards():
            with _shard_lock(path):
                entries, stamps = self._read_shard_file(path)
                if not entries:
                    continue
                try:
                    mtime = os.path.getmtime(path)
                except OSError:
                    mtime = now
                live = {key: payload for key, payload in entries.items()
                        if stamps.get(key, mtime) >= cutoff}
                kept += len(live)
                dropped += len(entries) - len(live)
                if len(live) == len(entries):
                    continue
                if not live:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                    continue
                stamps = {key: stamp for key, stamp in stamps.items()
                          if key in live}
                self._write_shard_file(path, live, stamps)
        if dropped:
            _REGISTRY.inc("cache.store.gc_dropped", dropped)
        if self.hot is not None:
            self.hot.invalidate(self.root)
        self._entries.clear()
        self._stamps.clear()
        self._probed.clear()
        return kept, dropped

    def compact(self) -> dict:
        """Rewrite every shard file canonically; returns before/after bytes.

        Normalises formatting, drops stamps for vanished keys and
        removes empty shard files — useful after heavy GC or a long
        append-only history.
        """
        before = 0
        after = 0
        for _table, _index, path in self._disk_shards():
            try:
                before += os.path.getsize(path)
            except OSError:
                pass
            with _shard_lock(path):
                entries, stamps = self._read_shard_file(path)
                if not entries:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                    continue
                stamps = {key: stamp for key, stamp in stamps.items()
                          if key in entries}
                self._write_shard_file(path, entries, stamps)
            try:
                after += os.path.getsize(path)
            except OSError:
                pass
        if self.hot is not None:
            self.hot.invalidate(self.root)
        self._entries.clear()
        self._stamps.clear()
        self._probed.clear()
        return {"bytes_before": before, "bytes_after": after}

    def _write_shard_file(self, path: str, entries: Dict[str, dict],
                          stamps: Dict[str, float]) -> None:
        document = {"schema": CACHE_SCHEMA, "entries": entries,
                    "stamps": stamps}
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".repro-shard-")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.shards_written += 1
        _REGISTRY.inc("cache.store.shards_written")
