"""End-to-end driver for textual surface programs.

``repro.driver`` glues the concrete-syntax frontend to the rest of the
reproduction as one pipeline::

    parse → infer → levity-check → Rep defaulting → pretty-print
                                                   ↘ compile (L → M) → run

* :class:`~repro.driver.session.Session` — cached-prelude sessions with
  one-shot ``check``/``run``/``compile`` entry points, a batch
  ``check_many`` API, and REPL state;
* :class:`~repro.driver.session.Pipeline` — the staged checker producing
  structured :class:`~repro.driver.session.Diagnostic` values with source
  spans;
* :mod:`repro.driver.depgraph` — binding-level dependency graphs: each
  module is broken into SCC-condensed **compilation units** checked in
  dependency order (the granularity of error recovery, caching and
  sharding);
* :mod:`repro.driver.batch` — sharded parallel batch checking across
  worker processes with a binding-level incremental result cache
  (``Session.check_many(jobs=..., cache=..., stats=...)`` and
  ``python -m repro check --jobs N --cache PATH --stats``);
* :mod:`repro.driver.store` — the sharded, content-addressed on-disk
  store behind the result cache (schema v4): 256 lazily-loaded shards
  per key namespace, per-shard dirty tracking and atomic merge-then-
  replace saves, a session-owned in-memory hot tier, and the
  ``python -m repro cache stats|verify|gc|compact`` maintenance surface;
* :mod:`repro.driver.project` — the module-level layer on top: ``module``
  / ``import`` resolution, the project DAG with cycle rejection, and
  cross-module incremental builds (``Session.check_project`` and
  ``python -m repro build DIR``);
* :mod:`repro.driver.lower` — the bridge from checked surface programs
  into the formal calculus L (and from there through ``compile/`` to the
  M machine).

The ``python -m repro`` command line lives in :mod:`repro.__main__` and is
a thin wrapper over this package.
"""

from .batch import CheckStats, ResultCache, check_many_sharded
from .depgraph import CheckUnit, ModulePlan, build_plan
from .store import CACHE_SCHEMA, HotTier, ShardStore
from .lower import LoweringError, lower_binding, lower_entry, lower_type
from .project import (
    ModuleNode,
    ProjectCheck,
    ProjectPlan,
    build_project_plan,
    check_project,
    discover_sources,
    run_project,
)
from .session import (
    BindingSummary,
    CheckResult,
    CompileResult,
    Diagnostic,
    DriverOptions,
    Pipeline,
    RunResult,
    Session,
    render_snippet,
)

__all__ = [
    "BindingSummary",
    "CACHE_SCHEMA",
    "CheckResult",
    "CheckStats",
    "CheckUnit",
    "CompileResult",
    "Diagnostic",
    "DriverOptions",
    "HotTier",
    "LoweringError",
    "ModuleNode",
    "ModulePlan",
    "Pipeline",
    "ProjectCheck",
    "ProjectPlan",
    "ResultCache",
    "RunResult",
    "Session",
    "ShardStore",
    "build_plan",
    "build_project_plan",
    "check_many_sharded",
    "check_project",
    "discover_sources",
    "run_project",
    "lower_binding",
    "lower_entry",
    "lower_type",
    "render_snippet",
]
