"""Project-level planning: the module DAG over binding-level plans.

PR 5 made the *binding* the unit of checking within a file; this module
makes the **module** the unit of organisation across files.  A project is
a set of ``.lev`` files, each optionally naming itself with a
``module M where`` header and pulling sibling modules' exports into scope
with ``import N`` declarations.  The planner builds a two-level plan:

* the **module graph** — nodes are files, edges are imports.  Import
  cycles are rejected with span-carrying diagnostics (the reproduction's
  module system is a DAG, like GHC's without ``hs-boot`` files); unknown
  imports, duplicate module names and modules downstream of a failure are
  likewise diagnosed at their import/header spans and skipped
  structurally rather than cascading bogus scope errors;
* within each module, the existing binding-level
  :class:`~repro.driver.depgraph.ModulePlan` — name resolution flows the
  *exported schemes* of imported modules into each unit's environment,
  and each unit's cache key folds in the canonical renderings of the
  imported schemes it actually references.

That second point is the cross-file early-cutoff property:

* editing a function body in module ``A`` without changing its exported
  scheme re-checks exactly that unit — every dependent module's file key
  (:func:`repro.driver.batch.project_file_key`) still matches, so
  dependents are answered from the file-level cache without even
  re-parsing;
* changing an exported *scheme* re-opens exactly the modules that import
  it, and within them re-checks exactly the units that name it.

Warm no-op builds never parse at all: the module graph is rebuilt from
``outline:`` side-table entries (name + imports + foreign references per
source text), and per-module exports come from ``exports:`` entries.

Checking walks the DAG level by level (every module's imports live in
strictly earlier levels), handing each level to
:func:`repro.driver.batch.check_many_sharded` — so whole modules shard
across the session's persistent worker pool in DAG level order.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..core.errors import ParseError
from ..frontend.lexer import Span
from ..frontend.parser import ParsedModule, parse_scheme
from ..surface.ast import ImportDecl, Module, ModuleHeader
from ..telemetry import REGISTRY as _REGISTRY, TRACER as _TRACER
from .batch import (
    CheckStats,
    ResultCache,
    check_many_sharded,
    options_fingerprint,
    outline_key,
    project_file_key,
)
from .depgraph import _tarjan, build_plan
from .session import (
    BindingSummary,
    CheckResult,
    Diagnostic,
    DriverOptions,
    Pipeline,
    RunResult,
    Session,
)

__all__ = [
    "ModuleNode",
    "ProjectCheck",
    "ProjectPlan",
    "build_project_plan",
    "check_project",
    "discover_sources",
    "merged_check",
    "run_project",
]


# ---------------------------------------------------------------------------
# Source discovery
# ---------------------------------------------------------------------------


def discover_sources(paths: Sequence[str]) -> List[Tuple[str, str]]:
    """Expand files and directories into ``(filename, source)`` items.

    Directories are walked recursively for ``.lev`` files in sorted order
    (deterministic build plans); explicit files are taken as-is.  Raises
    ``OSError`` for unreadable paths — the CLI turns that into a friendly
    message.
    """
    items: List[Tuple[str, str]] = []
    seen: Set[str] = set()

    def add(path: str) -> None:
        resolved = os.path.abspath(path)
        if resolved in seen:
            return
        seen.add(resolved)
        with open(path, "r", encoding="utf-8") as handle:
            items.append((path, handle.read()))

    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                for name in sorted(files):
                    if name.endswith(".lev"):
                        add(os.path.join(root, name))
        else:
            add(path)
    return items


# ---------------------------------------------------------------------------
# Module outlines and the project plan
# ---------------------------------------------------------------------------


@dataclass
class ModuleNode:
    """One file's place in the module graph.

    ``name`` is the ``module M where`` header's name; None marks a
    headerless file (checkable, and free to import, but not importable —
    there is no name to import it by).
    """

    index: int
    filename: str
    source: str
    name: Optional[str]
    parse_error: bool
    header_span: Optional[Span]
    #: Import declarations in declaration order (name, span), duplicates
    #: kept so diagnostics can point at the exact occurrence.
    imports: Tuple[Tuple[str, Span], ...]
    #: Union of foreign references across the module's units (sorted).
    foreign: Tuple[str, ...]
    level: int = 0

    @property
    def import_names(self) -> Tuple[str, ...]:
        """Imported module names, declaration order, de-duplicated."""
        seen: Dict[str, None] = {}
        for name, _span in self.imports:
            seen.setdefault(name, None)
        return tuple(seen)


def _span_fields(span: Optional[Span]) -> Optional[List[int]]:
    if span is None:
        return None
    return [span.line, span.column, span.end_line, span.end_column]


#: A ``module M where`` header at column 1 — the decl-0 shape the parser
#: enforces, matched textually so a file whose *body* fails to parse
#: still registers its name (importers then get "its import failed"
#: rather than a misleading "unknown module").
_HEADER_RE = re.compile(r"^module\s+([A-Z][A-Za-z0-9_']*#?)\s+where\s*$")


def _salvage_name(source: str) -> Optional[str]:
    for line in source.split("\n"):
        if not line.strip() or line.lstrip().startswith("--"):
            continue
        match = _HEADER_RE.match(line)
        return match.group(1) if match else None
    return None


def _outline_node(index: int, filename: str, source: str,
                  pipeline: Pipeline, options: DriverOptions,
                  cache: Optional[ResultCache],
                  fingerprint: Optional[str]) -> ModuleNode:
    """Resolve one file's outline: from the cache side-table, else by
    parsing (and storing the outline for the next build)."""
    key = outline_key(source, options, fingerprint)
    if cache is not None:
        payload = cache.lookup_outline(key)
        if payload is not None:
            _REGISTRY.inc("project.outline_hits")
            header = payload.get("header_span")
            return ModuleNode(
                index, filename, source, payload["name"],
                payload["parse_error"],
                Span(*header) if header else None,
                tuple((name, Span(*span))
                      for name, span in payload["imports"]),
                tuple(payload["foreign"]))
    _REGISTRY.inc("project.outline_misses")
    parsed, _diagnostics = pipeline.parse(source, filename)
    if parsed is None:
        node = ModuleNode(index, filename, source, _salvage_name(source),
                          True, None, (), ())
    else:
        plan = build_plan(parsed)
        foreign = sorted({name for unit in plan.units
                          for name in unit.foreign})
        node = ModuleNode(
            index, filename, source,
            plan.module_name if plan.has_header else None,
            False, plan.header_span, plan.imports, tuple(foreign))
    if cache is not None:
        cache.store_outline(key, {
            "name": node.name,
            "parse_error": node.parse_error,
            "header_span": _span_fields(node.header_span),
            "imports": [[name, _span_fields(span)]
                        for name, span in node.imports],
            "foreign": list(node.foreign),
        })
    return node


@dataclass
class ProjectPlan:
    """The module-level DAG of one project build."""

    nodes: List[ModuleNode]
    #: importable module name -> node index (first file wins; duplicates
    #: are diagnosed and skipped).
    by_name: Dict[str, int]
    #: node indices in dependency (topological) order.
    order: List[int]
    #: DAG levels of the checkable nodes: every module's imports resolve
    #: to strictly earlier levels.  This is the sharding order.
    levels: List[List[int]]
    #: node index -> graph-level diagnostics.  Membership means the module
    #: is structurally skipped (cycle member, duplicate name, failed or
    #: unknown import) and produces an error result without being checked.
    graph_diagnostics: Dict[int, List[Diagnostic]] = field(
        default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.graph_diagnostics


def build_project_plan(items: Sequence[Tuple[str, str]],
                       pipeline: Pipeline,
                       options: DriverOptions,
                       cache: Optional[ResultCache] = None,
                       fingerprint: Optional[str] = None) -> ProjectPlan:
    """Build the module graph over ``(filename, source)`` items.

    Outlines come from the cache side-table when possible — a warm build
    reconstructs the whole graph without parsing a single file.
    """
    fingerprint = fingerprint or options_fingerprint(options)
    with _TRACER.span("project.graph", modules=len(items)):
        nodes = [_outline_node(index, filename, source, pipeline, options,
                               cache, fingerprint)
                 for index, (filename, source) in enumerate(items)]

        diagnostics: Dict[int, List[Diagnostic]] = {}
        failed: Set[int] = set()

        def diagnose(index: int, message: str,
                     span: Optional[Span]) -> None:
            diagnostics.setdefault(index, []).append(Diagnostic(
                "error", "parse", message, nodes[index].filename, span))

        by_name: Dict[str, int] = {}
        for node in nodes:
            if node.name is None:
                continue
            first = by_name.setdefault(node.name, node.index)
            if first != node.index:
                diagnose(node.index,
                         f"duplicate module {node.name!r}: already defined "
                         f"by {nodes[first].filename}", node.header_span)
                failed.add(node.index)

        edges: Dict[int, List[int]] = {}
        for node in nodes:
            targets = {by_name[name] for name, _span in node.imports
                       if name in by_name}
            edges[node.index] = sorted(targets)

        sccs = _tarjan(list(range(len(nodes))), edges)
        order = [index for scc in sccs for index in scc]

        for scc in sccs:
            cyclic = len(scc) > 1 or scc[0] in edges.get(scc[0], [])
            if not cyclic:
                continue
            members = set(scc)
            names = sorted(nodes[index].name or nodes[index].filename
                           for index in scc)
            if len(scc) == 1:
                message = f"module {names[0]!r} imports itself"
            else:
                message = "import cycle: " + \
                    " -> ".join(names + [names[0]])
            for index in scc:
                span = next((span for name, span in nodes[index].imports
                             if by_name.get(name) in members), None)
                diagnose(index, message, span)
                failed.add(index)
            _REGISTRY.inc("project.cycles")

        # Structural failure propagation, in dependency order: a module
        # whose import is unknown, failed, or downstream of a failure is
        # itself skipped (exporting nothing), so one broken module yields
        # one precise diagnostic chain instead of a scope-error cascade.
        bad_exporters: Set[int] = set(failed) | {
            node.index for node in nodes if node.parse_error}
        for index in order:
            if index in failed or nodes[index].parse_error:
                continue
            node = nodes[index]
            bad = False
            for name, span in node.imports:
                target = by_name.get(name)
                if target is None:
                    diagnose(index,
                             f"import of unknown module {name!r} "
                             "(no module in this build defines it)", span)
                    bad = True
                elif target in bad_exporters:
                    diagnose(index,
                             f"module not checked: its import {name!r} "
                             "failed", span)
                    bad = True
            if bad:
                failed.add(index)
                bad_exporters.add(index)

        # DAG levels over the checkable nodes (parse failures sit at
        # level 0 and produce their parse-error results there).
        level_of: Dict[int, int] = {}
        levels: List[List[int]] = []
        for index in order:
            if index in failed:
                continue
            node = nodes[index]
            parents = [level_of[by_name[name]]
                       for name, _span in node.imports
                       if by_name.get(name) in level_of]
            level = 1 + max(parents) if parents else 0
            level_of[index] = level
            node.level = level
            while len(levels) <= level:
                levels.append([])
            levels[level].append(index)

    return ProjectPlan(nodes=nodes, by_name=by_name, order=order,
                       levels=levels, graph_diagnostics=diagnostics)


# ---------------------------------------------------------------------------
# Project checking
# ---------------------------------------------------------------------------


@dataclass
class ProjectCheck:
    """Everything one project build produced."""

    plan: ProjectPlan
    #: Per input file, in input order.
    results: List[CheckResult]
    #: Per input file: defined name -> canonical exported scheme rendering
    #: (None value = that binding failed; None entry = module failed).
    exports: List[Optional[Dict[str, Optional[str]]]]
    stats: CheckStats

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)


#: The scope-error shape :func:`repro.infer.infer` produces; group 1 is
#: the missing name.  Cross-module hints key off it.
_NOT_IN_SCOPE = re.compile(r"^variable '([^']+)' is not in scope")


def _add_cross_module_hints(plan: ProjectPlan,
                            results: List[CheckResult],
                            exports: List[Optional[Dict[str, Optional[str]]]]
                            ) -> None:
    """Append "defined in module B; add ``import B``" notes after scope
    errors whose missing name is exported by a sibling module.

    Runs *after* cache assembly (the notes are a pure function of the
    plan and the export maps), so warm and cold results stay
    byte-identical.
    """
    exporters: Dict[str, List[str]] = {}
    for node in plan.nodes:
        if node.name is None or exports[node.index] is None:
            continue
        for name in exports[node.index]:
            exporters.setdefault(name, []).append(node.name)
    for candidates in exporters.values():
        candidates.sort()
    if not exporters:
        return

    hints = 0
    for node in plan.nodes:
        result = results[node.index]
        if result is None or result.ok:
            continue
        imported = set(node.import_names)
        rewritten: List[Diagnostic] = []
        for diagnostic in result.diagnostics:
            rewritten.append(diagnostic)
            if diagnostic.severity != "error":
                continue
            match = _NOT_IN_SCOPE.match(diagnostic.message)
            if match is None:
                continue
            name = match.group(1)
            sources = [module for module in exporters.get(name, ())
                       if module != node.name and module not in imported]
            if not sources:
                continue
            rewritten.append(Diagnostic(
                "note", diagnostic.stage,
                f"{name!r} is defined in module {sources[0]!r}; "
                f"add 'import {sources[0]}'",
                result.filename, diagnostic.span, diagnostic.binding))
            hints += 1
        result.diagnostics[:] = rewritten
    if hints:
        _REGISTRY.inc("project.hints", hints)


def check_project(sources: Iterable[Tuple[str, str]],
                  options: Optional[DriverOptions] = None,
                  jobs: int = 1,
                  cache: Union[ResultCache, str, None] = None,
                  session: Optional[Session] = None,
                  stats: Optional[CheckStats] = None) -> ProjectCheck:
    """Check a whole project: build the module DAG, walk it level by
    level, and resolve each module through the incremental batch
    machinery with its imports' exported schemes in scope.

    Results come back in input order.  Modules the graph rejects (cycle
    members, duplicates, failed imports) get error results carrying the
    graph diagnostics and are never checked.
    """
    if session is None:
        session = Session(options)
    if options is None:
        options = session.options
    jobs = max(1, int(jobs or 1))
    if isinstance(cache, str):
        # Open against the session's hot tier: repeated project builds
        # in one warm process serve hot shards from memory.
        cache = ResultCache(cache, hot=session.store_hot_tier())
    if stats is None:
        stats = CheckStats()
    fingerprint = options_fingerprint(options)

    items = list(sources)
    plan = build_project_plan(items, session.pipeline, options, cache,
                              fingerprint)
    _REGISTRY.inc("project.builds")
    _REGISTRY.inc("project.modules", len(items))
    _REGISTRY.inc("project.dag_levels", len(plan.levels))

    results: List[Optional[CheckResult]] = [None] * len(items)
    exports: List[Optional[Dict[str, Optional[str]]]] = [None] * len(items)

    for index, graph_diagnostics in sorted(plan.graph_diagnostics.items()):
        node = plan.nodes[index]
        result = CheckResult(node.filename, ok=False)
        result.diagnostics.extend(graph_diagnostics)
        results[index] = result
        stats.files += 1
        _REGISTRY.inc("project.modules_skipped")

    for level_nodes in plan.levels:
        level_items: List[Tuple[str, str]] = []
        level_externals: List[Dict[str, Optional[str]]] = []
        level_keys: List[str] = []
        for index in level_nodes:
            node = plan.nodes[index]
            with _TRACER.span("module.resolve", file=node.filename,
                              module=node.name or ""):
                in_scope: Dict[str, Optional[str]] = {}
                for import_name in node.import_names:
                    target = plan.by_name.get(import_name)
                    if target is None:
                        continue
                    # Later imports win on collision (documented in
                    # docs/PROJECTS.md; avoids use-site ambiguity).
                    in_scope.update(exports[target] or {})
                referenced = {name: in_scope[name] for name in node.foreign
                              if name in in_scope}
                file_key = project_file_key(
                    node.source, sorted(referenced.items()), options,
                    fingerprint)
            level_items.append((node.filename, node.source))
            level_externals.append(referenced)
            level_keys.append(file_key)
        exports_out: List[Optional[Dict[str, Optional[str]]]] = \
            [None] * len(level_items)
        level_results = check_many_sharded(
            level_items, options, jobs=jobs, cache=cache, session=session,
            stats=stats, externals=level_externals, file_keys_in=level_keys,
            exports_out=exports_out)
        for position, index in enumerate(level_nodes):
            results[index] = level_results[position]
            exports[index] = exports_out[position]

    assert all(result is not None for result in results)
    _add_cross_module_hints(plan, results, exports)  # type: ignore[arg-type]
    return ProjectCheck(plan=plan, results=results,  # type: ignore[arg-type]
                        exports=exports, stats=stats)


# ---------------------------------------------------------------------------
# Running a project
# ---------------------------------------------------------------------------


def merged_check(check: ProjectCheck,
                 pipeline: Pipeline) -> Optional[CheckResult]:
    """Synthesize a full :class:`CheckResult` for the whole project.

    Concatenates every module's declarations in dependency order (headers
    and imports dropped) and rebuilds each binding's scheme from the
    *exported canonical renderings* — so a warm project can be evaluated
    without re-running inference.  Returns None unless every module
    checked cleanly.
    """
    if not check.ok:
        return None
    decls: List[object] = []
    bindings: List[BindingSummary] = []
    env_schemes: Dict[str, Optional[object]] = {}
    for index in check.plan.order:
        node = check.plan.nodes[index]
        parsed, _diagnostics = pipeline.parse(node.source, node.filename)
        if parsed is None:
            return None
        for decl in parsed.module.decls:
            if isinstance(decl, (ModuleHeader, ImportDecl)):
                continue
            decls.append(decl)
        node_exports = check.exports[index] or {}
        for name in parsed.module.bindings():
            scheme_src = node_exports.get(name)
            scheme = None
            if scheme_src is not None:
                try:
                    scheme = parse_scheme(scheme_src)
                except ParseError:
                    scheme = None
            bindings.append(BindingSummary(name, scheme, scheme_src or "",
                                           scheme is not None))
            env_schemes[name] = scheme
    module = Module("Project", decls)
    result = CheckResult("<project>", ok=True,
                         parsed=ParsedModule(module, "<project>", ""))
    result.bindings = bindings
    live = {name: scheme for name, scheme in env_schemes.items()
            if scheme is not None}
    result.env = pipeline.base_env.bind_many(live) if live \
        else pipeline.base_env
    return result


def run_project(session: Session, check: ProjectCheck,
                entry: str = "main", cache=None) -> RunResult:
    """Evaluate ``entry`` over the merged project on the cost-model
    machine (with the usual M-machine cross-check when the entry fits the
    compilable fragment)."""
    merged = merged_check(check, session.pipeline)
    if merged is None:
        combined = CheckResult("<project>", ok=False)
        for result in check.results:
            combined.diagnostics.extend(result.diagnostics)
        return RunResult(combined, entry)
    return session.run_from_check(merged, entry, cache=cache)
