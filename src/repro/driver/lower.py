"""Lowering checked surface programs into the formal calculus L.

The paper's compilation story (Figure 7) is defined on the *small* calculus
L, which has two base types (``Int``/``Int#``), lambdas, applications, the
``I#`` box constructor and its unboxing ``case`` — now extended with a
fixpoint form, saturated ``Int#`` primops and a literal case.  This module
bridges the surface language to that story: a checked surface binding whose
signature and body stay inside the **L fragment** is lowered to a closed,
explicitly-typed L term, which then flows through the existing ``compile/``
(L→M) and ``lang_m`` machine layers.

The L fragment is now *whole-language* over its types: any program built
from ``Int``/``Int#``/arrows lowers, including recursion and arithmetic.
Concretely:

* types: ``Int``, ``Int#`` and function arrows between fragment types;
* monomorphic bindings (no quantifiers, no constraints);
* expressions: variables, application, annotated lambdas, unboxed integer
  literals, boxed ``I#``-constructed integers (a bare boxed literal ``n``
  lowers to ``I#[n]``), the unboxing ``case e of { I# x -> rhs }``, literal
  cases ``case e of { n1 -> e1; …; _ -> d }`` over ``Int#`` or ``Int``
  scrutinees, the arithmetic/comparison primops of
  :data:`repro.core.primops.INT_PRIMOPS` (saturated or eta-expanded), and
  references to *earlier* fragment bindings (inlined — L has no top-level
  definitions);
* self-recursive bindings lower through L's ``fix`` form.  The only
  recursion still rejected is recursion *at the unboxed type* ``Int#``
  itself (no thunk can tie that knot) and mutual recursion through a later
  binding.

The remaining partiality is type-driven, which is the point: the Section
5.1 restrictions exist precisely so that everything the *type checker*
accepts can be compiled, and the driver reports a structured diagnostic
when a program steps outside the fragment rather than failing mid-compile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import CompilationError
from ..core.primops import INT_PRIMOPS
from ..infer.schemes import Scheme
from ..lang_l.syntax import (
    App,
    Case,
    CaseLit,
    Con,
    Fix,
    INT,
    INT_HASH,
    LExpr,
    LType,
    Lam,
    Lit,
    PrimOp,
    TArrow,
    Var,
)
from ..surface.ast import (
    EAnn,
    EApp,
    ECase,
    ELam,
    ELet,
    ELitInt,
    ELitIntHash,
    EVar,
    Expr,
    FunBind,
    Module,
)
from ..surface.types import FunTy, INT_HASH_TY, INT_TY, QualTy, SType


class LoweringError(CompilationError):
    """The program is well-typed but outside the compilable L fragment."""


def lower_type(type_: SType) -> LType:
    """Lower a surface type into L (``Int``, ``Int#`` and arrows only)."""
    if type_ == INT_TY:
        return INT
    if type_ == INT_HASH_TY:
        return INT_HASH
    if isinstance(type_, FunTy):
        return TArrow(lower_type(type_.argument), lower_type(type_.result))
    raise LoweringError(
        f"type {type_.pretty()} is outside the L fragment "
        "(only Int, Int# and arrows between them lower)")


def _signature_param_types(scheme: Scheme, params: Sequence[str]
                           ) -> Tuple[List[SType], SType]:
    if scheme.rep_binders or scheme.type_binders or scheme.constraints:
        raise LoweringError(
            "polymorphic bindings are outside the L fragment "
            f"(scheme {scheme.pretty()})")
    current: SType = scheme.body
    if isinstance(current, QualTy):
        raise LoweringError("qualified types are outside the L fragment")
    param_types: List[SType] = []
    for param in params:
        if not isinstance(current, FunTy):
            raise LoweringError(
                f"binding has more parameters than its type "
                f"{scheme.body.pretty()} provides")
        param_types.append(current.argument)
        current = current.result
    return param_types, current


def _primop_lambda(name: str) -> LExpr:
    """Eta-expand a primop: ``op#`` ~~> ``λa1:Int#. … op#(a1, …, ak)``."""
    arity = INT_PRIMOPS[name]
    binders = [f"prim_a{index}" for index in range(arity)]
    body: LExpr = PrimOp(name, tuple(Var(binder) for binder in binders))
    for binder in reversed(binders):
        body = Lam(binder, INT_HASH, body)
    return body


def _literal_pattern(constructor: str) -> Optional[Tuple[int, bool]]:
    """Parse a literal case pattern: ``(value, unboxed)`` or ``None``."""
    text = constructor
    unboxed = text.endswith("#")
    if unboxed:
        text = text[:-1]
    try:
        return int(text), unboxed
    except ValueError:
        return None


class _Lowerer:
    def __init__(self, inline: Dict[str, LExpr],
                 rec_name: Optional[str] = None) -> None:
        self.inline = inline
        self.bound: List[str] = []
        #: Name of the enclosing recursive binding, referring to the
        #: ``fix``-bound variable (checked after ``bound`` so parameters
        #: and local binders shadow it correctly).
        self.rec_name = rec_name

    def _is_primop(self, name: str) -> bool:
        return (name in INT_PRIMOPS
                and name not in self.bound
                and name != self.rec_name
                and name not in self.inline)

    def lower(self, expr: Expr) -> LExpr:
        if isinstance(expr, EVar):
            if expr.name in self.bound:
                return Var(expr.name)
            if expr.name == self.rec_name:
                return Var(expr.name)
            inlined = self.inline.get(expr.name)
            if inlined is not None:
                return inlined
            if self._is_primop(expr.name):
                return _primop_lambda(expr.name)
            raise LoweringError(
                f"variable {expr.name!r} is outside the L fragment "
                "(not a parameter, an earlier fragment binding, or a "
                "primop)")

        if isinstance(expr, ELitIntHash):
            return Lit(expr.value)

        if isinstance(expr, ELitInt):
            # A boxed literal is sugar for I#[n] in L.
            return Con(Lit(expr.value))

        if isinstance(expr, EAnn):
            return self.lower(expr.expr)

        if isinstance(expr, EApp):
            head, arguments = _application_spine(expr)
            if isinstance(head, EVar):
                if head.name == "I#" and "I#" not in self.bound \
                        and len(arguments) == 1:
                    return Con(self.lower(arguments[0]))
                if self._is_primop(head.name) \
                        and len(arguments) == INT_PRIMOPS[head.name]:
                    # A saturated primop application lowers directly; an
                    # undersaturated one falls through to the eta-expanded
                    # lambda from the EVar case.
                    return PrimOp(head.name,
                                  tuple(self.lower(a) for a in arguments))
            return App(self.lower(expr.function), self.lower(expr.argument))

        if isinstance(expr, ELam):
            if expr.annotation is None:
                raise LoweringError(
                    f"lambda binder {expr.var!r} needs a type annotation to "
                    "lower into the explicitly-typed L")
            self.bound.append(expr.var)
            try:
                body = self.lower(expr.body)
            finally:
                self.bound.pop()
            return Lam(expr.var, lower_type(expr.annotation), body)

        if isinstance(expr, ECase):
            return self._lower_case(expr)

        if isinstance(expr, ELet):
            # let x = rhs in body  ~~>  (\x:t. body) rhs needs a type; only
            # annotated lets lower.
            if expr.signature is None:
                raise LoweringError(
                    f"let binder {expr.var!r} needs a type signature to "
                    "lower into L")
            self.bound.append(expr.var)
            try:
                body = self.lower(expr.body)
            finally:
                self.bound.pop()
            rhs = self.lower(expr.rhs)
            return App(Lam(expr.var, lower_type(expr.signature), body), rhs)

        raise LoweringError(
            f"expression {expr.pretty()!r} is outside the L fragment")

    def _lower_case(self, expr: ECase) -> LExpr:
        alternatives = expr.alternatives
        if len(alternatives) == 1 and \
                alternatives[0].constructor == "I#" and \
                len(alternatives[0].binders) == 1:
            scrutinee = self.lower(expr.scrutinee)
            binder = alternatives[0].binders[0]
            self.bound.append(binder)
            try:
                body = self.lower(alternatives[0].rhs)
            finally:
                self.bound.pop()
            return Case(scrutinee, binder, body)

        literal_alts: List[Tuple[int, LExpr]] = []
        default: Optional[LExpr] = None
        unboxed_scrutinee: Optional[bool] = None
        for alternative in alternatives:
            if alternative.constructor == "_":
                default = self.lower(alternative.rhs)
                break  # a wildcard matches everything; later alts are dead
            pattern = _literal_pattern(alternative.constructor)
            if pattern is None or alternative.binders:
                raise LoweringError(
                    "only the unboxing case e of { I# x -> rhs } and "
                    "literal cases case e of { n -> rhs; ...; _ -> rhs } "
                    "are in the L fragment")
            value, unboxed = pattern
            if unboxed_scrutinee is None:
                unboxed_scrutinee = unboxed
            elif unboxed_scrutinee != unboxed:
                raise LoweringError(
                    "literal case mixes boxed and unboxed patterns")
            literal_alts.append((value, self.lower(alternative.rhs)))
        if default is None:
            raise LoweringError(
                "literal case needs a final wildcard alternative (_ -> rhs) "
                "to lower into L")
        scrutinee = self.lower(expr.scrutinee)
        if unboxed_scrutinee is None or unboxed_scrutinee:
            # All-wildcard cases can only arise from an Int# scrutinee in
            # practice; either way a strict CaseLit keeps the evaluation
            # order of the surface case.
            return CaseLit(scrutinee, tuple(literal_alts), default)
        # Boxed literal patterns: unbox once, then branch on the field.
        avoid = {name for _, branch in literal_alts
                 for name in branch.free_vars()} | set(default.free_vars())
        binder = "unboxed"
        while binder in avoid:
            binder += "'"
        return Case(scrutinee, binder,
                    CaseLit(Var(binder), tuple(literal_alts), default))


def _application_spine(expr: Expr) -> Tuple[Expr, List[Expr]]:
    """Unwind nested applications: ``f a b`` ~~> ``(f, [a, b])``."""
    arguments: List[Expr] = []
    current = expr
    while isinstance(current, EApp):
        arguments.append(current.argument)
        current = current.function
    arguments.reverse()
    return current, arguments


def lower_binding(bind: FunBind, scheme: Scheme,
                  inline: Dict[str, LExpr]) -> LExpr:
    """Lower one checked binding to a closed L term.

    ``inline`` maps earlier top-level fragment bindings to their (closed)
    lowered terms; occurrences are inlined because L has no top-level
    definition form.  A self-recursive binding is closed by wrapping it in
    L's ``fix``: parameters that *shadow* the binding's own name simply
    win (the parameter list is scoped inside the ``fix`` binder), so
    shadowing needs no special case — scope resolution is the
    alpha-renaming.
    """
    param_types, _ = _signature_param_types(scheme, bind.params)
    recursive = bind.name in bind.rhs.free_vars() - frozenset(bind.params)
    if recursive:
        binding_type = lower_type(scheme.body)
        if binding_type == INT_HASH:
            raise LoweringError(
                f"binding {bind.name!r} is recursive at the unboxed type "
                "Int#; there is no fixpoint at kind TYPE I — fix needs a "
                "thunkable pointer-kinded binder")
    lowerer = _Lowerer(inline, rec_name=bind.name if recursive else None)
    lowerer.bound.extend(bind.params)
    body = lowerer.lower(bind.rhs)
    for param, param_type in zip(reversed(bind.params),
                                 reversed(param_types)):
        body = Lam(param, lower_type(param_type), body)
    if recursive:
        body = Fix(bind.name, binding_type, body)
    return body


def lower_entry(module: Module, schemes: Dict[str, Scheme],
                entry: str = "main") -> LExpr:
    """Lower ``entry`` (with earlier fragment bindings inlined) to L.

    Walks the module in declaration order, lowering every binding that
    stays inside the fragment so later bindings may reference it; bindings
    outside the fragment are skipped unless they are the entry itself.
    """
    inline: Dict[str, LExpr] = {}
    entry_term: Optional[LExpr] = None
    for name, bind in module.bindings().items():
        scheme = schemes.get(name)
        if scheme is None:
            continue
        try:
            lowered = lower_binding(bind, scheme, inline)
        except LoweringError:
            if name == entry:
                raise
            continue
        inline[name] = lowered
        if name == entry:
            entry_term = lowered
    if entry_term is None:
        raise LoweringError(f"no binding named {entry!r} to lower")
    return entry_term
