"""Lowering checked surface programs into the formal calculus L.

The paper's compilation story (Figure 7) is defined on the *small* calculus
L, which has exactly two base types (``Int``/``Int#``), lambdas,
applications, the ``I#`` box constructor and its unboxing ``case``.  This
module bridges the surface language to that story: a checked surface
binding whose signature and body stay inside the **L fragment** is lowered
to a closed, explicitly-typed L term, which then flows through the existing
``compile/`` (L→M) and ``lang_m`` machine layers.

The L fragment (everything else raises :class:`LoweringError`):

* types: ``Int``, ``Int#`` and function arrows between fragment types;
* monomorphic bindings (no quantifiers, no constraints);
* expressions: variables, application, annotated lambdas, unboxed integer
  literals, boxed ``I#``-constructed integers (a bare boxed literal ``n``
  lowers to ``I#[n]``), the unboxing ``case e of { I# x -> rhs }``, and
  references to *earlier* fragment bindings (inlined — L has no top-level
  definitions);
* no recursion: L is strongly normalising, so a self-reference is
  rejected.

This partiality is the point, not a limitation: the Section 5.1
restrictions exist precisely so that everything the *type checker* accepts
can be compiled, and the driver reports a structured diagnostic when a
program steps outside the fragment rather than failing mid-compile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import CompilationError
from ..infer.schemes import Scheme
from ..lang_l.syntax import (
    App,
    Case,
    Con,
    INT,
    INT_HASH,
    LExpr,
    LType,
    Lam,
    Lit,
    TArrow,
    Var,
)
from ..surface.ast import (
    EAnn,
    EApp,
    ECase,
    ELam,
    ELet,
    ELitInt,
    ELitIntHash,
    EVar,
    Expr,
    FunBind,
    Module,
)
from ..surface.types import FunTy, INT_HASH_TY, INT_TY, QualTy, SType


class LoweringError(CompilationError):
    """The program is well-typed but outside the compilable L fragment."""


def lower_type(type_: SType) -> LType:
    """Lower a surface type into L (``Int``, ``Int#`` and arrows only)."""
    if type_ == INT_TY:
        return INT
    if type_ == INT_HASH_TY:
        return INT_HASH
    if isinstance(type_, FunTy):
        return TArrow(lower_type(type_.argument), lower_type(type_.result))
    raise LoweringError(
        f"type {type_.pretty()} is outside the L fragment "
        "(only Int, Int# and arrows between them lower)")


def _signature_param_types(scheme: Scheme, params: Sequence[str]
                           ) -> Tuple[List[SType], SType]:
    if scheme.rep_binders or scheme.type_binders or scheme.constraints:
        raise LoweringError(
            "polymorphic bindings are outside the L fragment "
            f"(scheme {scheme.pretty()})")
    current: SType = scheme.body
    if isinstance(current, QualTy):
        raise LoweringError("qualified types are outside the L fragment")
    param_types: List[SType] = []
    for param in params:
        if not isinstance(current, FunTy):
            raise LoweringError(
                f"binding has more parameters than its type "
                f"{scheme.body.pretty()} provides")
        param_types.append(current.argument)
        current = current.result
    return param_types, current


class _Lowerer:
    def __init__(self, inline: Dict[str, LExpr]) -> None:
        self.inline = inline
        self.bound: List[str] = []

    def lower(self, expr: Expr) -> LExpr:
        if isinstance(expr, EVar):
            if expr.name in self.bound:
                return Var(expr.name)
            inlined = self.inline.get(expr.name)
            if inlined is not None:
                return inlined
            raise LoweringError(
                f"variable {expr.name!r} is outside the L fragment "
                "(not a parameter or an earlier fragment binding)")

        if isinstance(expr, ELitIntHash):
            return Lit(expr.value)

        if isinstance(expr, ELitInt):
            # A boxed literal is sugar for I#[n] in L.
            return Con(Lit(expr.value))

        if isinstance(expr, EAnn):
            return self.lower(expr.expr)

        if isinstance(expr, EApp):
            if isinstance(expr.function, EVar) and \
                    expr.function.name == "I#" and \
                    "I#" not in self.bound:
                return Con(self.lower(expr.argument))
            return App(self.lower(expr.function), self.lower(expr.argument))

        if isinstance(expr, ELam):
            if expr.annotation is None:
                raise LoweringError(
                    f"lambda binder {expr.var!r} needs a type annotation to "
                    "lower into the explicitly-typed L")
            self.bound.append(expr.var)
            try:
                body = self.lower(expr.body)
            finally:
                self.bound.pop()
            return Lam(expr.var, lower_type(expr.annotation), body)

        if isinstance(expr, ECase):
            alternatives = expr.alternatives
            if len(alternatives) == 1 and \
                    alternatives[0].constructor == "I#" and \
                    len(alternatives[0].binders) == 1:
                scrutinee = self.lower(expr.scrutinee)
                binder = alternatives[0].binders[0]
                self.bound.append(binder)
                try:
                    body = self.lower(alternatives[0].rhs)
                finally:
                    self.bound.pop()
                return Case(scrutinee, binder, body)
            raise LoweringError(
                "only the unboxing case e of { I# x -> rhs } is in the "
                "L fragment")

        if isinstance(expr, ELet):
            # let x = rhs in body  ~~>  (\x:t. body) rhs needs a type; only
            # annotated lets lower.
            if expr.signature is None:
                raise LoweringError(
                    f"let binder {expr.var!r} needs a type signature to "
                    "lower into L")
            self.bound.append(expr.var)
            try:
                body = self.lower(expr.body)
            finally:
                self.bound.pop()
            rhs = self.lower(expr.rhs)
            return App(Lam(expr.var, lower_type(expr.signature), body), rhs)

        raise LoweringError(
            f"expression {expr.pretty()!r} is outside the L fragment")


def lower_binding(bind: FunBind, scheme: Scheme,
                  inline: Dict[str, LExpr]) -> LExpr:
    """Lower one checked binding to a closed L term.

    ``inline`` maps earlier top-level fragment bindings to their (closed)
    lowered terms; occurrences are inlined because L has no top-level
    definition form.
    """
    param_types, _ = _signature_param_types(scheme, bind.params)
    lowerer = _Lowerer(inline)
    lowerer.bound.extend(bind.params)
    if bind.name in lowerer.bound:
        raise LoweringError(f"parameter shadows the binding {bind.name!r}")
    if bind.name in bind.rhs.free_vars() - frozenset(bind.params):
        raise LoweringError(
            f"binding {bind.name!r} is recursive; L is strongly "
            "normalising and has no fixpoint")
    body = lowerer.lower(bind.rhs)
    for param, param_type in zip(reversed(bind.params),
                                 reversed(param_types)):
        body = Lam(param, lower_type(param_type), body)
    return body


def lower_entry(module: Module, schemes: Dict[str, Scheme],
                entry: str = "main") -> LExpr:
    """Lower ``entry`` (with earlier fragment bindings inlined) to L.

    Walks the module in declaration order, lowering every binding that
    stays inside the fragment so later bindings may reference it; bindings
    outside the fragment are skipped unless they are the entry itself.
    """
    inline: Dict[str, LExpr] = {}
    entry_term: Optional[LExpr] = None
    for name, bind in module.bindings().items():
        scheme = schemes.get(name)
        if scheme is None:
            continue
        try:
            lowered = lower_binding(bind, scheme, inline)
        except LoweringError:
            if name == entry:
                raise
            continue
        inline[name] = lowered
        if name == entry:
            entry_term = lowered
    if entry_term is None:
        raise LoweringError(f"no binding named {entry!r} to lower")
    return entry_term
