"""The end-to-end driver pipeline: parse → infer → levity-check → default →
pretty-print / compile / run.

Two layers:

* :class:`Pipeline` — the staged checker.  Each stage consumes the state
  produced by the previous one and appends structured
  :class:`Diagnostic` values (with source spans from the frontend) instead
  of raising, so one bad binding never hides the others: the pipeline
  checks every binding of every module it is given, exactly like a batch
  compiler.

* :class:`Session` — a long-lived wrapper that caches the prelude
  environment, exposes the one-shot conveniences (:meth:`Session.check`,
  :meth:`Session.run`, :meth:`Session.compile`) and the **batch API**
  (:meth:`Session.check_many`) used by the throughput benchmark and the
  CLI, plus the small amount of mutable state the REPL needs.

Stage inventory (``Pipeline.STAGES``):

``parse``
    :mod:`repro.frontend` — source text to surface AST with spans.
``infer``
    :mod:`repro.infer` — per-binding type inference / signature checking.
    Each binding gets a fresh :class:`~repro.infer.infer.Inferencer` so a
    unification failure in one binding cannot poison the next; bindings
    still see every earlier binding's scheme through the environment.
``levity``
    the Section 5.1 post-pass (already threaded through ``infer_binding``);
    violations become diagnostics carrying the binding's source span.
``default``
    Rep defaulting (Section 5.2) — surfaced as the per-binding
    ``defaulted_rep_vars`` so callers can see "never infer levity
    polymorphism" happening.
``compile``
    the optional L→M bridge (:mod:`repro.driver.lower` +
    :mod:`repro.compile`) for entries inside the L fragment.
``run``
    the cost-model evaluator (:mod:`repro.runtime`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.errors import ParseError, ReproError
from ..frontend.lexer import Span
from ..frontend.parser import ParsedModule, parse_expr, parse_module
from ..infer.infer import Inferencer, InferOptions
from ..infer.schemes import Scheme, TypeEnv
from ..pretty.printer import PrinterOptions, render_scheme
from ..surface.ast import FunBind, Module, TypeSig
from ..surface.prelude import prelude_env

__all__ = [
    "Diagnostic",
    "BindingSummary",
    "CheckResult",
    "RunResult",
    "CompileResult",
    "Pipeline",
    "Session",
]


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding, with a source span when one is known."""

    severity: str          # "error" | "warning" | "note"
    stage: str             # "parse" | "infer" | "levity" | "compile" | "run"
    message: str
    filename: str = "<input>"
    span: Optional[Span] = None
    binding: Optional[str] = None

    def pretty(self) -> str:
        location = self.filename
        if self.span is not None:
            location = f"{self.filename}:{self.span.line}:{self.span.column}"
        subject = f" in {self.binding!r}" if self.binding else ""
        return f"{location}: {self.stage} {self.severity}{subject}: " \
               f"{self.message}"

    def __repr__(self) -> str:
        return self.pretty()


@dataclass
class BindingSummary:
    """What the pipeline learned about one top-level binding."""

    name: str
    scheme: Optional[Scheme]
    rendered: str
    ok: bool
    defaulted_rep_vars: Tuple[str, ...] = ()
    span: Optional[Span] = None


@dataclass
class CheckResult:
    """Outcome of running a module through parse → infer → levity → default."""

    filename: str
    ok: bool = True
    bindings: List[BindingSummary] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    parsed: Optional[ParsedModule] = None
    env: Optional[TypeEnv] = None

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def scheme_of(self, name: str) -> Optional[Scheme]:
        # Last match wins, consistent with Module.bindings() on redefinition.
        for binding in reversed(self.bindings):
            if binding.name == name:
                return binding.scheme
        return None

    def pretty(self) -> str:
        lines: List[str] = []
        for binding in self.bindings:
            if binding.ok:
                lines.append(f"{binding.name} :: {binding.rendered}")
        lines.extend(d.pretty() for d in self.diagnostics)
        status = "ok" if self.ok else "FAILED"
        lines.append(f"{self.filename}: {status} "
                     f"({len(self.bindings)} binding(s), "
                     f"{len(self.errors)} error(s))")
        return "\n".join(lines)


@dataclass
class RunResult:
    """Outcome of evaluating an entry point on the cost-model machine."""

    check: CheckResult
    entry: str
    ok: bool = False
    value: str = ""
    costs: Dict[str, int] = field(default_factory=dict)
    #: Filled in when the entry also lowered to L and ran on the M machine.
    machine_value: Optional[str] = None
    machine_steps: Optional[int] = None
    #: True/False when the two results are comparable values (integers,
    #: boxed integers); None when the machine ran but the result has no
    #: canonical comparison (e.g. a function value).
    machine_agrees: Optional[bool] = None

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return self.check.diagnostics

    def pretty(self) -> str:
        lines = [self.check.pretty()]
        if self.ok:
            lines.append(f"{self.entry} = {self.value}")
            lines.append(
                "costs: " + ", ".join(
                    f"{key}={value}" for key, value in self.costs.items()
                    if key in ("heap_allocations", "thunk_forces", "primops",
                               "function_calls", "estimated_cycles")))
            if self.machine_value is not None:
                if self.machine_agrees is None:
                    verdict = "ran (result not comparable)"
                else:
                    verdict = "agrees" if self.machine_agrees else "DISAGREES"
                lines.append(f"M machine {verdict}: {self.machine_value} "
                             f"({self.machine_steps} steps)")
        return "\n".join(lines)


@dataclass
class CompileResult:
    """Outcome of the L→M bridge on one entry point."""

    check: CheckResult
    entry: str
    ok: bool = False
    l_source: str = ""
    l_type: str = ""
    m_code: str = ""
    machine_value: Optional[str] = None
    machine_steps: Optional[int] = None
    lazy_lets: int = 0
    strict_lets: int = 0

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return self.check.diagnostics

    def pretty(self) -> str:
        lines = [self.check.pretty()]
        if self.ok:
            lines.append(f"L  source : {self.l_source}")
            lines.append(f"L  type   : {self.l_type}")
            lines.append(f"M  code   : {self.m_code}")
            if self.machine_value is not None:
                lines.append(f"M  result : {self.machine_value} "
                             f"({self.machine_steps} machine steps)")
        return "\n".join(lines)


def _program_from_check(module: Module, check: CheckResult):
    """Build an executable Program from already-inferred schemes.

    ``Program.from_module`` would re-run inference over the whole module;
    the pipeline just did that, so reuse its schemes to derive each
    function's calling convention.
    """
    from ..runtime.evaluator import (
        Program,
        ProgramFunction,
        _param_strictness,
    )

    program = Program()
    for name, bind in module.bindings().items():
        scheme = check.scheme_of(name)
        strictness = _param_strictness(scheme, len(bind.params))
        program.functions[name] = ProgramFunction(
            name, bind.params, strictness, bind.rhs, scheme)
    return program


def _machine_agreement(value, heap, machine_result) -> Optional[bool]:
    """Structurally compare an evaluator value with an M-machine value.

    The compilable fragment produces three value shapes: raw integers
    (``42#`` vs ``42``), boxed integers (``I# 42#`` vs ``I#[42]``) and
    functions.  Integers compare exactly; functions return None ("not
    comparable") — the old rendering-based digit comparison reported a
    bogus DISAGREES whenever a function *body* contained literals (found
    by corpus fuzzing, pinned in tests/golden/fuzz/function_entry.lev).
    """
    from ..lang_m.syntax import MConLit, MLam, MLit
    from ..runtime.values import ConstructorCell, HeapRef, UnboxedInt

    if isinstance(machine_result, MLit):
        return isinstance(value, UnboxedInt) \
            and value.value == machine_result.value
    if isinstance(machine_result, MConLit):
        if isinstance(value, HeapRef):
            cell = heap.load_for_show(value)
            if isinstance(cell, ConstructorCell) \
                    and cell.constructor == "I#" and cell.fields:
                unboxed = cell.fields[0]
                return isinstance(unboxed, UnboxedInt) \
                    and unboxed.value == machine_result.value
        return False
    if isinstance(machine_result, MLam):
        return None
    return None


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


@dataclass
class DriverOptions:
    """Behaviour switches shared by the pipeline, the CLI and the REPL."""

    #: Mirror of ``-fprint-explicit-runtime-reps`` for rendered schemes.
    explicit_runtime_reps: bool = False
    #: Skip the Section 5.1 post-pass (ablation; mirrors InferOptions).
    run_levity_check: bool = True
    #: Step budget for the M machine when the compile bridge runs.
    max_machine_steps: int = 1_000_000

    def printer_options(self) -> PrinterOptions:
        return PrinterOptions(
            print_explicit_runtime_reps=self.explicit_runtime_reps)

    def infer_options(self) -> InferOptions:
        return InferOptions(collect_levity_violations=True,
                            run_levity_check=self.run_levity_check)


class Pipeline:
    """The staged parse → infer → levity → default checker."""

    STAGES = ("parse", "infer", "levity", "default")

    def __init__(self, base_env: TypeEnv,
                 options: Optional[DriverOptions] = None) -> None:
        self.base_env = base_env
        self.options = options or DriverOptions()

    # -- parse ---------------------------------------------------------------

    def parse(self, source: str, filename: str) -> Tuple[Optional[ParsedModule],
                                                         List[Diagnostic]]:
        try:
            return parse_module(source, filename), []
        except ParseError as exc:
            span = Span(exc.line or 1, exc.column or 1,
                        exc.line or 1, exc.column or 1)
            message = str(exc)
            prefix = f"{exc.line}:{exc.column}: "
            if message.startswith(prefix):
                # The span already carries the position; don't print it twice.
                message = message[len(prefix):]
            return None, [Diagnostic("error", "parse", message,
                                     filename, span)]

    # -- infer + levity + default -------------------------------------------

    def check(self, source: str, filename: str = "<input>") -> CheckResult:
        parsed, diagnostics = self.parse(source, filename)
        result = CheckResult(filename, parsed=parsed)
        result.diagnostics.extend(diagnostics)
        if parsed is None:
            result.ok = False
            return result
        self._check_module(parsed, result)
        result.ok = not result.errors
        return result

    def _check_module(self, parsed: ParsedModule,
                      result: CheckResult) -> None:
        module = parsed.module
        filename = parsed.filename
        signatures = module.signatures()
        bound_names = set(module.bindings())
        env = self.base_env

        for decl in module.decls:
            if isinstance(decl, TypeSig) and decl.name not in bound_names:
                result.diagnostics.append(Diagnostic(
                    "warning", "infer",
                    f"type signature for {decl.name!r} lacks a binding",
                    filename, parsed.decl_spans.get(("sig", decl.name)),
                    decl.name))
                continue
            if not isinstance(decl, FunBind):
                continue

            span = parsed.span_of_binding(decl.name)
            signature = signatures.get(decl.name)
            inferencer = Inferencer(self.options.infer_options())
            try:
                binding = inferencer.infer_binding(
                    env, decl.name, decl.params, decl.rhs, signature)
            except ReproError as exc:
                stage = "levity" if "levity" in type(exc).__name__.lower() \
                    else "infer"
                result.diagnostics.append(Diagnostic(
                    "error", stage, str(exc), filename, span, decl.name))
                result.bindings.append(BindingSummary(
                    decl.name, None, "", False, span=span))
                if signature is not None:
                    # Later bindings may still check against the declaration.
                    env = env.bind(decl.name, Scheme.from_type(signature))
                continue

            ok = binding.ok
            for violation in binding.levity_report.violations:
                result.diagnostics.append(Diagnostic(
                    "error", "levity", violation.pretty(),
                    filename, span, decl.name))
            rendered = render_scheme(binding.scheme,
                                     self.options.printer_options())
            result.bindings.append(BindingSummary(
                decl.name, binding.scheme, rendered, ok,
                binding.defaulted_rep_vars, span))
            env = env.bind(decl.name, binding.scheme)

        result.env = env


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------


class Session:
    """A long-lived driver session: cached prelude, batch checking, REPL state."""

    def __init__(self, options: Optional[DriverOptions] = None) -> None:
        self.options = options or DriverOptions()
        self._base_env = prelude_env()
        self.pipeline = Pipeline(self._base_env, self.options)
        #: Accumulated declaration sources for the REPL, plus the cached
        #: CheckResult for them (declarations are immutable between lines,
        #: so re-checking the whole module per expression would be O(n²)
        #: over a session).
        self._repl_decls: List[str] = []
        self._repl_check: Optional[CheckResult] = None

    # -- the one-shot pipeline entry points ----------------------------------

    def check(self, source: str, filename: str = "<input>") -> CheckResult:
        """parse → infer → levity-check → Rep-default one module."""
        return self.pipeline.check(source, filename)

    def check_many(self, sources: Iterable[Tuple[str, str]],
                   jobs: Optional[int] = None,
                   cache=None) -> List[CheckResult]:
        """Batch API: check many ``(filename, source)`` programs per call.

        Reuses the cached prelude environment across programs — the
        throughput benchmarks (``bench_e12``/``bench_e13``) and the CLI's
        multi-file mode both call this.

        * ``jobs`` — fan the corpus out across that many worker processes
          (each builds the prelude once and checks a whole shard); results
          come back in input order regardless of completion order.
        * ``cache`` — a path (or :class:`repro.driver.batch.ResultCache`)
          keyed by the SHA-256 of each source text; unchanged programs are
          answered from the cache without re-checking.

        With neither (the default) this is the plain in-process loop and
        results carry full schemes/parse trees.  With ``jobs > 1`` or a
        cache the results are the slim payload form (rendered schemes and
        diagnostics preserved; ``scheme``/``parsed``/``env`` are ``None``)
        — see :mod:`repro.driver.batch`.
        """
        if (jobs is None or jobs <= 1) and cache is None:
            return [self.pipeline.check(source, filename)
                    for filename, source in sources]
        from .batch import check_many_sharded

        return check_many_sharded(sources, self.options,
                                  jobs=jobs or 1, cache=cache, session=self)

    def run(self, source: str, filename: str = "<input>",
            entry: str = "main") -> RunResult:
        """Check, then evaluate ``entry`` on the cost-model machine.

        When the entry also fits the compilable L fragment, the program is
        additionally lowered, compiled to M (Figure 7) and executed on the
        M machine as a cross-check.
        """
        return self.run_from_check(self.check(source, filename), entry)

    def run_from_check(self, check: CheckResult,
                       entry: str = "main") -> RunResult:
        """Evaluate ``entry`` of an already-checked module (full results
        only: ``check.parsed`` must be present, so slim batch/cache results
        do not qualify).  Lets callers that already paid for inference —
        the fuzz harness, notably — skip a second parse+infer pass."""
        result = RunResult(check, entry)
        if not check.ok:
            return result
        filename = check.filename

        from ..runtime.evaluator import Evaluator

        module = check.parsed.module
        if entry not in module.bindings():
            check.diagnostics.append(Diagnostic(
                "error", "run", f"no entry point named {entry!r}", filename))
            check.ok = False
            return result
        entry_bind = module.bindings()[entry]
        if entry_bind.params:
            check.diagnostics.append(Diagnostic(
                "error", "run",
                f"entry point {entry!r} must take no parameters "
                f"(it takes {len(entry_bind.params)})",
                filename, check.parsed.span_of_binding(entry), entry))
            check.ok = False
            return result

        try:
            program = _program_from_check(module, check)
            evaluator = Evaluator(program)
            value = evaluator.force(evaluator.eval(entry_bind.rhs))
            result.value = value.show(evaluator.heap)
            result.costs = evaluator.costs.as_dict()
            result.ok = True
        except ReproError as exc:
            check.diagnostics.append(Diagnostic(
                "error", "run", str(exc), filename,
                check.parsed.span_of_binding(entry), entry))
            check.ok = False
            return result

        self._try_machine_crosscheck(check, entry, result, value,
                                     evaluator.heap)
        return result

    def _try_machine_crosscheck(self, check: CheckResult, entry: str,
                                result: RunResult, value, heap) -> None:
        """Lower + compile + run on the M machine when the fragment allows."""
        from .lower import LoweringError, lower_entry

        schemes = {b.name: b.scheme for b in check.bindings
                   if b.scheme is not None}
        try:
            term = lower_entry(check.parsed.module, schemes, entry)
        except LoweringError as exc:
            check.diagnostics.append(Diagnostic(
                "note", "compile",
                f"entry not cross-checked on the M machine: {exc}",
                check.filename, binding=entry))
            return
        try:
            from ..compile.compiler import compile_and_run

            outcome = compile_and_run(
                term, max_steps=self.options.max_machine_steps)
            result.machine_value = ("error" if outcome.aborted
                                    else outcome.unwrap().pretty())
            result.machine_steps = outcome.costs.steps
            if outcome.aborted:
                result.machine_agrees = False
            else:
                result.machine_agrees = _machine_agreement(
                    value, heap, outcome.unwrap())
            if result.machine_agrees is False:
                check.diagnostics.append(Diagnostic(
                    "warning", "compile",
                    f"M machine result {result.machine_value!r} disagrees "
                    f"with the evaluator's {result.value!r}",
                    check.filename, binding=entry))
            elif result.machine_agrees is None:
                check.diagnostics.append(Diagnostic(
                    "note", "compile",
                    "M machine ran but the result has no canonical "
                    "comparison (function value)",
                    check.filename, binding=entry))
        except ReproError as exc:
            check.diagnostics.append(Diagnostic(
                "warning", "compile",
                f"L→M cross-check failed: {exc}", check.filename,
                binding=entry))

    def compile(self, source: str, filename: str = "<input>",
                entry: str = "main") -> CompileResult:
        """Check, lower ``entry`` to L, compile to M, and run the machine."""
        check = self.check(source, filename)
        result = CompileResult(check, entry)
        if not check.ok:
            return result

        from .lower import LoweringError, lower_entry
        from ..compile.compiler import compile_expr
        from ..lang_l.typing import type_of
        from ..lang_l.syntax import Context
        from ..lang_m.machine import run as run_machine

        schemes = {b.name: b.scheme for b in check.bindings
                   if b.scheme is not None}
        try:
            term = lower_entry(check.parsed.module, schemes, entry)
            l_type = type_of(Context(), term)
            compiled = compile_expr(term)
            outcome = run_machine(compiled.code,
                                  max_steps=self.options.max_machine_steps)
        except (LoweringError, ReproError) as exc:
            check.diagnostics.append(Diagnostic(
                "error", "compile", str(exc), filename,
                check.parsed.span_of_binding(entry), entry))
            check.ok = False
            return result

        result.ok = True
        result.l_source = term.pretty()
        result.l_type = l_type.pretty()
        result.m_code = compiled.pretty()
        result.lazy_lets = compiled.lazy_lets
        result.strict_lets = compiled.strict_lets
        result.machine_value = ("error" if outcome.aborted
                                else outcome.unwrap().pretty())
        result.machine_steps = outcome.costs.steps
        return result

    # -- REPL support ---------------------------------------------------------

    def repl_input(self, line: str) -> str:
        """Process one REPL line; returns the text to display."""
        stripped = line.strip()
        if not stripped:
            return ""
        if stripped.startswith(":t "):
            return self._repl_type_of(stripped[3:])
        if stripped.startswith(":"):
            return f"unknown command {stripped.split()[0]!r} " \
                   "(try :t expr, :q)"
        as_decl = self._try_parse_decl(stripped)
        if as_decl is not None:
            # Use the stripped line: pasted indentation must not trip the
            # column-1 declaration rule when the module is re-assembled.
            return self._repl_add_decl(stripped, as_decl)
        return self._repl_eval(stripped)

    @staticmethod
    def _try_parse_decl(line: str):
        try:
            parsed = parse_module(line, "<repl>")
        except ParseError:
            return None
        return parsed.module.decls[-1] if parsed.module.decls else None

    def _repl_add_decl(self, line: str, added) -> str:
        candidate = self._repl_decls + [line.rstrip()]
        check = self.pipeline.check("\n".join(candidate) + "\n", "<repl>")
        if not check.ok:
            return "\n".join(d.pretty() for d in check.errors)
        self._repl_decls = candidate
        self._repl_check = check
        if isinstance(added, FunBind):
            for binding in reversed(check.bindings):
                if binding.name == added.name:
                    return f"{binding.name} :: {binding.rendered}"
        return "defined."

    def _repl_env(self) -> Optional[CheckResult]:
        return self._repl_check if self._repl_decls else None

    def _repl_type_of(self, text: str) -> str:
        from ..infer.infer import infer_binding

        try:
            expr = parse_expr(text, "<repl>")
        except ParseError as exc:
            return f"parse error: {exc}"
        check = self._repl_env()
        env = check.env if check is not None else self._base_env
        try:
            # Infer as a synthetic binding "it = <expr>" so the scheme is
            # generalised with Rep defaulting, exactly as GHCi's :type does.
            binding = infer_binding("it", (), expr, env=env,
                                    options=self.options.infer_options())
        except ReproError as exc:
            return f"type error: {exc}"
        if not binding.ok:
            return "type error: " + binding.levity_report.pretty()
        return f"{text.strip()} :: " \
               f"{render_scheme(binding.scheme, self.options.printer_options())}"

    def _repl_eval(self, text: str) -> str:
        from ..infer.infer import infer_binding
        from ..runtime.evaluator import Evaluator

        try:
            expr = parse_expr(text, "<repl>")
        except ParseError as exc:
            return f"parse error: {exc}"
        check = self._repl_env()
        env = check.env if check is not None else self._base_env
        try:
            binding = infer_binding("it", (), expr, env=env,
                                    options=self.options.infer_options())
            if not binding.ok:
                return "type error: " + binding.levity_report.pretty()
        except ReproError as exc:
            return f"type error: {exc}"
        try:
            if check is not None:
                program = _program_from_check(check.parsed.module, check)
            else:
                from ..runtime.evaluator import Program

                program = Program()
            evaluator = Evaluator(program)
            value = evaluator.force(evaluator.eval(expr))
            return value.show(evaluator.heap)
        except ReproError as exc:
            return f"runtime error: {exc}"
