"""The end-to-end driver pipeline: parse → infer → levity-check → default →
pretty-print / compile / run.

Two layers:

* :class:`Pipeline` — the staged checker.  Each stage consumes the state
  produced by the previous one and appends structured
  :class:`Diagnostic` values (with source spans from the frontend) instead
  of raising, so one bad binding never hides the others: the pipeline
  checks every binding of every module it is given, exactly like a batch
  compiler.

* :class:`Session` — a long-lived wrapper that caches the prelude
  environment, exposes the one-shot conveniences (:meth:`Session.check`,
  :meth:`Session.run`, :meth:`Session.compile`) and the **batch API**
  (:meth:`Session.check_many`) used by the throughput benchmark and the
  CLI, plus the small amount of mutable state the REPL needs.

Stage inventory (``Pipeline.STAGES``):

``parse``
    :mod:`repro.frontend` — source text to surface AST with spans.
``infer``
    :mod:`repro.infer` — per-binding type inference / signature checking.
    Each binding gets a fresh :class:`~repro.infer.infer.Inferencer` so a
    unification failure in one binding cannot poison the next; bindings
    still see every earlier binding's scheme through the environment.
``levity``
    the Section 5.1 post-pass (already threaded through ``infer_binding``);
    violations become diagnostics carrying the binding's source span.
``default``
    Rep defaulting (Section 5.2) — surfaced as the per-binding
    ``defaulted_rep_vars`` so callers can see "never infer levity
    polymorphism" happening.
``compile``
    the optional L→M bridge (:mod:`repro.driver.lower` +
    :mod:`repro.compile`) for entries inside the L fragment.
``run``
    the cost-model evaluator (:mod:`repro.runtime`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.errors import ParseError, ReproError
from ..frontend.lexer import Span
from ..frontend.parser import ParsedModule, parse_expr, parse_module
from ..infer.infer import Inferencer, InferOptions
from ..infer.schemes import Scheme, TypeEnv
from ..pretty.printer import PrinterOptions, render_scheme
from ..surface.ast import FunBind, ImportDecl, Module, TypeSig
from ..surface.prelude import prelude_env
from ..telemetry import REGISTRY as _REGISTRY, TRACER as _TRACER
from .depgraph import CheckUnit, ModulePlan, build_plan

__all__ = [
    "Diagnostic",
    "BindingSummary",
    "CheckResult",
    "RunResult",
    "CompileResult",
    "MemberOutcome",
    "UnitOutcome",
    "Pipeline",
    "Session",
    "assemble_decl_order",
    "render_snippet",
]


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding, with a source span when one is known."""

    severity: str          # "error" | "warning" | "note"
    stage: str             # "parse" | "infer" | "levity" | "compile" | "run"
    message: str
    filename: str = "<input>"
    span: Optional[Span] = None
    binding: Optional[str] = None

    def pretty(self) -> str:
        location = self.filename
        if self.span is not None:
            location = f"{self.filename}:{self.span.line}:{self.span.column}"
        subject = f" in {self.binding!r}" if self.binding else ""
        return f"{location}: {self.stage} {self.severity}{subject}: " \
               f"{self.message}"

    def __repr__(self) -> str:
        return self.pretty()


def render_snippet(source: str, span: Span, indent: str = "  ") -> str:
    """GHC-style caret snippet for ``span`` within ``source``::

          |
        3 | h = plusInt mystery 1
          |             ^^^^^^^

    Returns an empty string when the span's line is outside the source
    (a stale cached span against an edited file, defensively).
    """
    lines = source.split("\n")
    if span.line < 1 or span.line > len(lines):
        return ""
    text = lines[span.line - 1].rstrip("\n")
    gutter = str(span.line)
    pad = " " * len(gutter)
    start = max(span.column, 1)
    if span.end_line == span.line and span.end_column > span.column:
        width = span.end_column - span.column      # spans are half-open
    else:
        width = max(len(text) - start + 1, 1)      # multi-line: to line end
    caret = " " * (start - 1) + "^" * max(width, 1)
    return "\n".join([f"{indent}{pad} |",
                      f"{indent}{gutter} | {text}",
                      f"{indent}{pad} | {caret}"])


@dataclass
class BindingSummary:
    """What the pipeline learned about one top-level binding."""

    name: str
    scheme: Optional[Scheme]
    rendered: str
    ok: bool
    defaulted_rep_vars: Tuple[str, ...] = ()
    span: Optional[Span] = None


@dataclass
class CheckResult:
    """Outcome of running a module through parse → infer → levity → default."""

    filename: str
    ok: bool = True
    bindings: List[BindingSummary] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    parsed: Optional[ParsedModule] = None
    env: Optional[TypeEnv] = None

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def scheme_of(self, name: str) -> Optional[Scheme]:
        # Last match wins, consistent with Module.bindings() on redefinition.
        for binding in reversed(self.bindings):
            if binding.name == name:
                return binding.scheme
        return None

    def pretty(self, source: Optional[str] = None) -> str:
        """Render the result; with ``source``, diagnostics that carry a
        span also print a GHC-style caret snippet under their message."""
        lines: List[str] = []
        for binding in self.bindings:
            if binding.ok:
                lines.append(f"{binding.name} :: {binding.rendered}")
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.pretty())
            if source is not None and diagnostic.span is not None:
                snippet = render_snippet(source, diagnostic.span)
                if snippet:
                    lines.append(snippet)
        status = "ok" if self.ok else "FAILED"
        lines.append(f"{self.filename}: {status} "
                     f"({len(self.bindings)} binding(s), "
                     f"{len(self.errors)} error(s))")
        return "\n".join(lines)


@dataclass
class RunResult:
    """Outcome of evaluating an entry point on the cost-model machine."""

    check: CheckResult
    entry: str
    ok: bool = False
    value: str = ""
    costs: Dict[str, int] = field(default_factory=dict)
    #: Filled in when the entry also lowered to L and ran on the M machine.
    machine_value: Optional[str] = None
    machine_steps: Optional[int] = None
    #: True/False when the two results are comparable values (integers,
    #: boxed integers, or agreement on bottom); None when the machine ran
    #: but the result has no canonical comparison (e.g. a function value).
    machine_agrees: Optional[bool] = None
    #: Why the machine cross-check did not engage: the lowering error
    #: message when the entry's types leave the L fragment.  None when the
    #: machine ran (even if the result was not comparable) — the
    #: ``machine_agrees`` tri-state alone cannot distinguish "skipped"
    #: from "ran, not comparable".
    machine_skipped: Optional[str] = None
    #: Closure-compilation counters (``options.compiled`` runs only):
    #: bindings lowered to Python this run vs served from the per-unit
    #: codegen cache.  None when the tree-walker evaluated the entry.
    codegen_compiled: Optional[int] = None
    codegen_cached: Optional[int] = None
    #: :class:`repro.validate.ValidationReport` (``options.validate``
    #: runs only): per-step Simulation-obligation discharge.
    validation: Optional[object] = None

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return self.check.diagnostics

    def pretty(self) -> str:
        lines = [self.check.pretty()]
        if self.ok:
            lines.append(f"{self.entry} = {self.value}")
            lines.append(
                "costs: " + ", ".join(
                    f"{key}={value}" for key, value in self.costs.items()
                    if key in ("heap_allocations", "thunk_forces", "primops",
                               "function_calls", "estimated_cycles")))
            if self.codegen_compiled is not None:
                lines.append(
                    f"codegen: {self.codegen_compiled} function(s) "
                    f"compiled, {self.codegen_cached} cached")
            if self.machine_value is not None:
                if self.machine_agrees is None:
                    verdict = "ran (result not comparable)"
                else:
                    verdict = "agrees" if self.machine_agrees else "DISAGREES"
                lines.append(f"M machine {verdict}: {self.machine_value} "
                             f"({self.machine_steps} steps)")
        elif self.machine_agrees is True:
            lines.append("M machine agrees: both sides reached bottom "
                         f"({self.machine_steps} steps)")
        return "\n".join(lines)


@dataclass
class CompileResult:
    """Outcome of the L→M bridge on one entry point."""

    check: CheckResult
    entry: str
    ok: bool = False
    l_source: str = ""
    l_type: str = ""
    m_code: str = ""
    machine_value: Optional[str] = None
    machine_steps: Optional[int] = None
    lazy_lets: int = 0
    strict_lets: int = 0

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return self.check.diagnostics

    def pretty(self) -> str:
        lines = [self.check.pretty()]
        if self.ok:
            lines.append(f"L  source : {self.l_source}")
            lines.append(f"L  type   : {self.l_type}")
            lines.append(f"M  code   : {self.m_code}")
            if self.machine_value is not None:
                lines.append(f"M  result : {self.machine_value} "
                             f"({self.machine_steps} machine steps)")
        return "\n".join(lines)


def _program_from_check(module: Module, check: CheckResult):
    """Build an executable Program from already-inferred schemes.

    ``Program.from_module`` would re-run inference over the whole module;
    the pipeline just did that, so reuse its schemes to derive each
    function's calling convention.
    """
    from ..runtime.evaluator import (
        Program,
        ProgramFunction,
        _param_strictness,
    )

    program = Program()
    for name, bind in module.bindings().items():
        scheme = check.scheme_of(name)
        strictness = _param_strictness(scheme, len(bind.params))
        program.functions[name] = ProgramFunction(
            name, bind.params, strictness, bind.rhs, scheme)
    return program


def _machine_agreement(value, heap, machine_result) -> Optional[bool]:
    """Structurally compare an evaluator value with an M-machine value.

    The compilable fragment produces three value shapes: raw integers
    (``42#`` vs ``42``), boxed integers (``I# 42#`` vs ``I#[42]``) and
    functions.  Integers compare exactly; functions return None ("not
    comparable") — the old rendering-based digit comparison reported a
    bogus DISAGREES whenever a function *body* contained literals (found
    by corpus fuzzing, pinned in tests/golden/fuzz/function_entry.lev).
    """
    from ..lang_m.syntax import MConLit, MLam, MLit
    from ..runtime.values import ConstructorCell, HeapRef, UnboxedInt

    if isinstance(machine_result, MLit):
        return isinstance(value, UnboxedInt) \
            and value.value == machine_result.value
    if isinstance(machine_result, MConLit):
        if isinstance(value, HeapRef):
            cell = heap.load_for_show(value)
            if isinstance(cell, ConstructorCell) \
                    and cell.constructor == "I#" and cell.fields:
                unboxed = cell.fields[0]
                return isinstance(unboxed, UnboxedInt) \
                    and unboxed.value == machine_result.value
        return False
    if isinstance(machine_result, MLam):
        return None
    return None


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


@dataclass
class DriverOptions:
    """Behaviour switches shared by the pipeline, the CLI and the REPL."""

    #: Mirror of ``-fprint-explicit-runtime-reps`` for rendered schemes.
    explicit_runtime_reps: bool = False
    #: Skip the Section 5.1 post-pass (ablation; mirrors InferOptions).
    run_levity_check: bool = True
    #: Step budget for the M machine when the compile bridge runs.
    max_machine_steps: int = 1_000_000
    #: Evaluate through the closure-compilation backend
    #: (:mod:`repro.runtime.compiler`) instead of the tree-walker.
    #: Semantics-identical; the cost counters are not modelled.
    compiled: bool = False
    #: Run the translation validator (:mod:`repro.validate`) on every
    #: cross-checked entry: per-step joinability discharge of the
    #: Simulation obligations, reporting the first diverging step.
    validate: bool = False
    #: Cap on how many per-step obligations the validator discharges per
    #: program (the end-to-end answer comparison is never capped).
    align_steps: int = 64

    def printer_options(self) -> PrinterOptions:
        return PrinterOptions(
            print_explicit_runtime_reps=self.explicit_runtime_reps)

    def infer_options(self) -> InferOptions:
        return InferOptions(collect_levity_violations=True,
                            run_levity_check=self.run_levity_check)


@dataclass
class MemberOutcome:
    """What checking one unit member (one ``FunBind`` decl) produced."""

    decl_index: int
    summary: BindingSummary
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: The scheme dependent units should see: the inferred scheme, or the
    #: declared signature when the body failed but a signature exists
    #: (batch-compiler style recovery), or None when nothing trustworthy
    #: is available.
    env_scheme: Optional[Scheme] = None


@dataclass
class UnitOutcome:
    """The result of checking one compilation unit (binding/SCC group)."""

    unit: CheckUnit
    members: List[MemberOutcome]
    #: Wall-clock seconds this unit's check took (``--stats``).
    seconds: float = 0.0


class Pipeline:
    """The staged parse → infer → levity → default checker.

    Since the binding-level refactor the pipeline checks **compilation
    units** (single bindings, or SCC groups of mutually recursive ones) in
    dependency order: each unit's typing environment is the prelude plus
    exactly the schemes of the unit's direct dependencies.  That makes a
    unit's outcome a pure function of its own source text and those
    schemes — the property the per-unit incremental cache
    (:mod:`repro.driver.batch`) keys on — and turns per-binding error
    recovery structural: a unit whose dependency failed without leaving a
    trusted scheme is *skipped* with a precise diagnostic instead of
    producing a misleading cascade.
    """

    STAGES = ("parse", "infer", "levity", "default")

    def __init__(self, base_env: TypeEnv,
                 options: Optional[DriverOptions] = None) -> None:
        self.base_env = base_env
        self.options = options or DriverOptions()
        #: Session-lived memo of declaration-block parses: re-checking a
        #: module re-lexes/parses only the blocks whose text changed.
        self._block_memo: Dict[str, object] = {}

    # -- parse ---------------------------------------------------------------

    def parse(self, source: str, filename: str) -> Tuple[Optional[ParsedModule],
                                                         List[Diagnostic]]:
        from ..frontend.parser import parse_module_incremental

        traced = _TRACER.enabled
        if traced:
            _TRACER.begin("parse", file=filename)
        try:
            try:
                return parse_module_incremental(source, filename,
                                                memo=self._block_memo), []
            except ParseError as exc:
                span = Span(exc.line or 1, exc.column or 1,
                            exc.line or 1, exc.column or 1)
                message = str(exc)
                prefix = f"{exc.line}:{exc.column}: "
                if message.startswith(prefix):
                    # The span already carries the position; don't print it
                    # twice.
                    message = message[len(prefix):]
                return None, [Diagnostic("error", "parse", message,
                                         filename, span)]
        finally:
            if traced:
                _TRACER.end("parse")

    # -- infer + levity + default -------------------------------------------

    def check(self, source: str, filename: str = "<input>") -> CheckResult:
        parsed, diagnostics = self.parse(source, filename)
        result = CheckResult(filename, parsed=parsed)
        result.diagnostics.extend(diagnostics)
        if parsed is None:
            result.ok = False
            return result
        with _TRACER.span("depgraph", file=filename):
            plan = build_plan(parsed)
        outcomes = self.check_plan(plan)
        self.assemble(plan, outcomes, result)
        result.ok = not result.errors
        return result

    # -- unit-granularity checking -------------------------------------------

    def plan(self, parsed: ParsedModule) -> ModulePlan:
        """Break a parsed module into dependency-ordered check units."""
        return build_plan(parsed)

    def check_plan(self, plan: ModulePlan) -> Dict[int, UnitOutcome]:
        """Check every unit of a plan in dependency order."""
        available: Dict[str, Optional[Scheme]] = {}
        outcomes: Dict[int, UnitOutcome] = {}
        for unit in plan.units:
            outcome = self.check_unit(plan, unit, available)
            outcomes[unit.uid] = outcome
            self.export_unit(plan, outcome, available)
        return outcomes

    @staticmethod
    def export_unit(plan: ModulePlan, outcome: UnitOutcome,
                    available: Dict[str, Optional[Scheme]]) -> None:
        """Publish a checked unit's schemes for its dependents.

        Only the *defining* declaration of a name exports (last definition
        wins, consistent with :meth:`Module.bindings`); an entry may be
        None — "this name exists but produced no trustworthy scheme" —
        which makes dependents fail structurally instead of with a bogus
        scope error.
        """
        for member in outcome.members:
            name = member.summary.name
            if plan.defining_decl.get(name) == member.decl_index:
                available[name] = member.env_scheme

    def check_unit(self, plan: ModulePlan, unit: CheckUnit,
                   available: Mapping[str, Optional[Scheme]]) -> UnitOutcome:
        """Check one unit against the schemes of its direct dependencies."""
        parsed = plan.parsed
        start = time.perf_counter()

        dep_schemes: Dict[str, Scheme] = {}
        missing: List[str] = []
        for dep in unit.deps:
            scheme = available.get(dep)
            if scheme is None:
                missing.append(dep)
            else:
                dep_schemes[dep] = scheme
        # Foreign references (names no local declaration binds) resolve only
        # when the caller seeded ``available`` with imported modules' exports
        # (project mode); an entry that is present but None marks an import
        # whose defining binding failed — the unit skips structurally, the
        # same recovery as a failed local dependency.  Names absent from
        # ``available`` stay unbound and surface as ordinary scope errors.
        for name in unit.foreign:
            if name in available:
                scheme = available[name]
                if scheme is None:
                    missing.append(name)
                else:
                    dep_schemes[name] = scheme
        env = self.base_env.bind_many(dep_schemes) if dep_schemes \
            else self.base_env

        signatures = parsed.module.signatures()
        if missing:
            members = self._skip_members(parsed, unit, signatures, missing)
        elif unit.is_group:
            members = self._check_group(parsed, unit, signatures, env)
        else:
            members = [self._check_member(parsed, unit.member_decls[0],
                                          signatures, env)]
        return UnitOutcome(unit, members, time.perf_counter() - start)

    def _check_member(self, parsed: ParsedModule, decl_index: int,
                      signatures: Dict[str, "SType"],
                      env: TypeEnv) -> MemberOutcome:
        decl = parsed.module.decls[decl_index]
        filename = parsed.filename
        span = parsed.decl_span_list[decl_index]
        signature = signatures.get(decl.name)
        traced = _TRACER.enabled
        if traced:
            _TRACER.begin("unit.infer", binding=decl.name, file=filename)
        try:
            return self._check_member_inner(parsed, decl_index, decl,
                                            filename, span, signature, env)
        finally:
            if traced:
                _TRACER.end("unit.infer")

    def _check_member_inner(self, parsed: ParsedModule, decl_index: int,
                            decl, filename: str, span, signature,
                            env: TypeEnv) -> MemberOutcome:
        inferencer = Inferencer(self.options.infer_options(),
                                spans=parsed.expr_spans)
        try:
            binding = inferencer.infer_binding(
                env, decl.name, decl.params, decl.rhs, signature)
        except ReproError as exc:
            stage = "levity" if "levity" in type(exc).__name__.lower() \
                else "infer"
            diagnostic = Diagnostic("error", stage, str(exc), filename,
                                    exc.span or span, decl.name)
            env_scheme = (Scheme.from_type(signature)
                          if signature is not None else None)
            # Later bindings may still check against the declaration.
            return MemberOutcome(
                decl_index,
                BindingSummary(decl.name, None, "", False, span=span),
                [diagnostic], env_scheme)

        diagnostics = [
            Diagnostic("error", "levity", violation.pretty(), filename,
                       violation.span or span, decl.name)
            for violation in binding.levity_report.violations]
        rendered = render_scheme(binding.scheme,
                                 self.options.printer_options())
        summary = BindingSummary(decl.name, binding.scheme, rendered,
                                 binding.ok, binding.defaulted_rep_vars,
                                 span)
        return MemberOutcome(decl_index, summary, diagnostics,
                             binding.scheme)

    def _check_group(self, parsed: ParsedModule, unit: CheckUnit,
                     signatures: Dict[str, "SType"],
                     env: TypeEnv) -> List[MemberOutcome]:
        """A mutually recursive SCC: every member needs a signature; the
        group is then checked member by member against the declared
        schemes (polymorphic mutual recursion, GHC-style)."""
        module = parsed.module
        declared: Dict[str, Scheme] = {}
        unsigned: List[str] = []
        for decl_index in unit.member_decls:
            decl = module.decls[decl_index]
            signature = signatures.get(decl.name)
            if signature is None:
                unsigned.append(decl.name)
            else:
                declared[decl.name] = Scheme.from_type(signature)

        if unsigned:
            group = ", ".join(repr(name) for name in unit.names)
            members = []
            for decl_index in unit.member_decls:
                decl = module.decls[decl_index]
                span = parsed.decl_span_list[decl_index]
                if decl.name in unsigned:
                    detail = f"{decl.name!r} has none"
                else:
                    detail = "missing: " + ", ".join(
                        repr(name) for name in unsigned)
                members.append(MemberOutcome(
                    decl_index,
                    BindingSummary(decl.name, None, "", False, span=span),
                    [Diagnostic(
                        "error", "infer",
                        f"mutually recursive group ({group}) needs a type "
                        f"signature for every member; {detail}",
                        parsed.filename, span, decl.name)],
                    declared.get(decl.name)))
            return members

        group_env = env.bind_many(declared)
        return [self._check_member(parsed, decl_index, signatures, group_env)
                for decl_index in unit.member_decls]

    def _skip_members(self, parsed: ParsedModule, unit: CheckUnit,
                      signatures: Dict[str, "SType"],
                      missing: List[str]) -> List[MemberOutcome]:
        """Structural error recovery: a dependency failed without leaving a
        trusted scheme, so this unit cannot be checked meaningfully."""
        module = parsed.module
        deps = ", ".join(repr(name) for name in missing)
        label = "dependency" if len(missing) == 1 else "dependencies"
        members = []
        for decl_index in unit.member_decls:
            decl = module.decls[decl_index]
            span = parsed.decl_span_list[decl_index]
            signature = signatures.get(decl.name)
            members.append(MemberOutcome(
                decl_index,
                BindingSummary(decl.name, None, "", False, span=span),
                [Diagnostic(
                    "error", "infer",
                    f"{decl.name!r} was not checked: its {label} {deps} "
                    "failed to check", parsed.filename, span, decl.name)],
                Scheme.from_type(signature) if signature is not None
                else None))
        return members

    def assemble(self, plan: ModulePlan, outcomes: Dict[int, UnitOutcome],
                 result: CheckResult) -> None:
        """Stitch unit outcomes back into declaration order."""
        member_by_decl: Dict[int, MemberOutcome] = {
            member.decl_index: member
            for outcome in outcomes.values()
            for member in outcome.members}
        assemble_decl_order(
            plan,
            {index: (member.summary, member.diagnostics)
             for index, member in member_by_decl.items()},
            result)

        schemes: Dict[str, Scheme] = {}
        for name, decl_index in plan.defining_decl.items():
            member = member_by_decl.get(decl_index)
            if member is not None and member.env_scheme is not None:
                schemes[name] = member.env_scheme
        result.env = self.base_env.bind_many(schemes) if schemes \
            else self.base_env


def assemble_decl_order(
        plan: ModulePlan,
        entries: Dict[int, Tuple[BindingSummary, List[Diagnostic]]],
        result: CheckResult,
        imports_resolved: bool = False) -> None:
    """Stitch per-declaration (summary, diagnostics) entries back into
    declaration order, interleaving orphan-signature warnings at their
    source positions.

    Shared by :meth:`Pipeline.assemble` (full results) and the batch
    path's payload assembly (:mod:`repro.driver.batch`), so the two can
    never drift apart — the byte-identity of cached and cold results
    depends on them agreeing.

    ``imports_resolved`` is False in single-file mode, where ``import``
    declarations cannot be resolved: each one then produces a warning at
    its source position (the project build path passes True and resolves
    them for real).
    """
    parsed = plan.parsed
    bound_names = set(plan.defining_decl)
    for index, decl in enumerate(parsed.module.decls):
        if isinstance(decl, ImportDecl) and not imports_resolved:
            result.diagnostics.append(Diagnostic(
                "warning", "parse",
                f"import {decl.name} is not resolved in single-file mode "
                "(use 'python -m repro build' to check a project)",
                parsed.filename, parsed.decl_span_list[index]))
            continue
        if isinstance(decl, TypeSig) and decl.name not in bound_names:
            result.diagnostics.append(Diagnostic(
                "warning", "infer",
                f"type signature for {decl.name!r} lacks a binding",
                parsed.filename,
                parsed.decl_spans.get(("sig", decl.name)), decl.name))
            continue
        entry = entries.get(index)
        if entry is None:
            continue
        summary, diagnostics = entry
        result.diagnostics.extend(diagnostics)
        result.bindings.append(summary)


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------


def _shutdown_executor(executor) -> None:
    """GC/close hook for a session's worker pool (must not capture the
    session itself, or the ``weakref.finalize`` would keep it alive)."""
    executor.shutdown(wait=False, cancel_futures=True)


class Session:
    """A long-lived driver session: cached prelude, batch checking, REPL state."""

    def __init__(self, options: Optional[DriverOptions] = None) -> None:
        self.options = options or DriverOptions()
        self._base_env = prelude_env()
        self.pipeline = Pipeline(self._base_env, self.options)
        #: Accumulated declaration sources for the REPL, plus the cached
        #: CheckResult for them (declarations are immutable between lines,
        #: so re-checking the whole module per expression would be O(n²)
        #: over a session).
        self._repl_decls: List[str] = []
        self._repl_check: Optional[CheckResult] = None
        #: ``:load``-ed project state: the loaded ``(filename, source)``
        #: items, the session-lived in-memory cache that makes re-checks
        #: after a redefinition incremental, the last ProjectCheck, and
        #: the REPL's own overlay declarations (checked as a headerless
        #: module importing every loaded module).
        self._repl_project: Optional[List[Tuple[str, str]]] = None
        self._repl_project_cache = None
        self._repl_project_check = None
        self._repl_overlay: List[str] = []
        #: The persistent worker pool (lazily spawned, reused across
        #: ``check_many`` calls) and the counters that make its lifecycle
        #: observable to benchmarks and tests.
        self._pool = None
        self._pool_size = 0
        self._pool_options: Optional[tuple] = None
        self._pool_finalizer = None
        self.pool_stats: Dict[str, int] = {
            "pools_created": 0,
            "pools_reused": 0,
            "parallel_batches": 0,
            "serial_batches": 0,
        }
        #: The in-memory hot tier over on-disk cache shards, created
        #: lazily and shared by every path-spelled cache this session
        #: opens (check_many, check_project, compiled runs) — repeated
        #: calls in one warm process serve hot shards without disk reads.
        self._store_hot = None

    def store_hot_tier(self):
        """The session's :class:`repro.driver.store.HotTier` (lazy)."""
        if self._store_hot is None:
            from .store import HotTier

            self._store_hot = HotTier()
        return self._store_hot

    # -- the persistent worker pool -------------------------------------------

    def acquire_pool(self, jobs: int, options: Optional[DriverOptions] = None):
        """The session's :class:`~concurrent.futures.ProcessPoolExecutor`.

        Created on first use and **reused across batch calls** — worker
        processes keep their warm per-process :class:`Session` (prelude
        built once) between calls, so repeated ``check_many(jobs=N)`` pays
        process spawn at most once.  The pool is replaced only when a
        caller needs more workers than it has or checks under different
        options (workers bake options in at init).  CPython spawns the
        actual worker processes lazily on first submit, so an unused pool
        costs nothing.

        Raising is the caller's signal to fall back to in-process
        checking; :meth:`discard_pool` then drops any broken pool.
        """
        import dataclasses as _dataclasses
        from concurrent.futures import ProcessPoolExecutor

        from .batch import _worker_init

        options_state = _dataclasses.asdict(options if options is not None
                                            else self.options)
        # Tracing state is baked into the workers at init, so it is part
        # of the pool's identity: enabling --trace between batches must
        # respawn the pool rather than reuse untraced workers.
        pool_key = (options_state, _TRACER.enabled)
        if self._pool is not None:
            if self._pool_size >= jobs and self._pool_options == pool_key:
                self.pool_stats["pools_reused"] += 1
                _REGISTRY.inc("pool.pools_reused")
                return self._pool
            self._shutdown_pool()
        pool = ProcessPoolExecutor(max_workers=jobs,
                                   initializer=_worker_init,
                                   initargs=(options_state, _TRACER.enabled))
        self._pool = pool
        self._pool_size = jobs
        self._pool_options = pool_key
        self.pool_stats["pools_created"] += 1
        _REGISTRY.inc("pool.pools_created")
        import weakref

        self._pool_finalizer = weakref.finalize(self, _shutdown_executor,
                                                pool)
        return pool

    def discard_pool(self) -> None:
        """Drop the worker pool (after a BrokenProcessPool, or to force the
        next batch to respawn)."""
        self._shutdown_pool()

    def _shutdown_pool(self) -> None:
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if self._pool is not None:
            _shutdown_executor(self._pool)
            self._pool = None
            self._pool_size = 0
            self._pool_options = None

    def close(self) -> None:
        """Shut down the worker pool.  Idempotent; the session remains
        usable (a later batch call simply respawns the pool)."""
        self._shutdown_pool()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the one-shot pipeline entry points ----------------------------------

    def check(self, source: str, filename: str = "<input>") -> CheckResult:
        """parse → infer → levity-check → Rep-default one module."""
        return self.pipeline.check(source, filename)

    def check_many(self, sources: Iterable[Tuple[str, str]],
                   jobs: Optional[int] = None,
                   cache=None, stats=None) -> List[CheckResult]:
        """Batch API: check many ``(filename, source)`` programs per call.

        Reuses the cached prelude environment across programs — the
        throughput benchmarks (``bench_e12``/``bench_e13``/``bench_e15``)
        and the CLI's multi-file mode both call this.

        * ``jobs`` — fan the pending **units** out across that many worker
          processes in dependency waves; results come back in input order
          regardless of completion order.
        * ``cache`` — a path (or :class:`repro.driver.batch.ResultCache`)
          keyed per compilation unit by the unit's source slice plus the
          schemes of its direct dependencies; editing one binding
          re-checks only that binding's SCC and the dependents whose
          dependency schemes actually changed.
        * ``stats`` — a :class:`repro.driver.batch.CheckStats` collecting
          per-unit timing and cache hit/miss counts (``--stats``).

        With none of them (the default) this is the plain in-process loop
        and results carry full schemes/parse trees.  Otherwise the results
        are the slim payload form (rendered schemes and diagnostics
        preserved; ``scheme``/``parsed``/``env`` are ``None``) — see
        :mod:`repro.driver.batch`.
        """
        if (jobs is None or jobs <= 1) and cache is None and stats is None:
            return [self.pipeline.check(source, filename)
                    for filename, source in sources]
        from .batch import check_many_sharded

        return check_many_sharded(sources, self.options,
                                  jobs=jobs or 1, cache=cache, session=self,
                                  stats=stats)

    def check_project(self, sources: Iterable[Tuple[str, str]],
                      jobs: Optional[int] = None,
                      cache=None, stats=None):
        """Check a multi-module project (``module``/``import`` files).

        Builds the module DAG over the ``(filename, source)`` items,
        rejects import cycles with span-carrying diagnostics, and walks
        the DAG level by level with each module's imported schemes in
        scope — whole modules shard across the worker pool in level
        order, and with a ``cache`` the build is incremental across both
        bindings *and* module boundaries (see
        :mod:`repro.driver.project` and docs/PROJECTS.md).  Returns a
        :class:`repro.driver.project.ProjectCheck`.
        """
        from .project import check_project as _check_project

        return _check_project(sources, self.options, jobs=jobs or 1,
                              cache=cache, session=self, stats=stats)

    def run(self, source: str, filename: str = "<input>",
            entry: str = "main", cache=None) -> RunResult:
        """Check, then evaluate ``entry`` on the cost-model machine.

        When the entry also fits the compilable L fragment, the program is
        additionally lowered, compiled to M (Figure 7) and executed on the
        M machine as a cross-check.

        With ``options.compiled`` and a ``cache`` (a path or
        :class:`repro.driver.batch.ResultCache`), generated Python sources
        are stored per compilation unit next to the check results, so a
        warm run links cached code instead of re-lowering each binding.
        """
        return self.run_from_check(self.check(source, filename), entry,
                                   cache=cache)

    def run_from_check(self, check: CheckResult,
                       entry: str = "main", cache=None) -> RunResult:
        """Evaluate ``entry`` of an already-checked module (full results
        only: ``check.parsed`` must be present, so slim batch/cache results
        do not qualify).  Lets callers that already paid for inference —
        the fuzz harness, notably — skip a second parse+infer pass."""
        result = RunResult(check, entry)
        if not check.ok:
            return result
        filename = check.filename

        from ..runtime.evaluator import Evaluator

        module = check.parsed.module
        if entry not in module.bindings():
            check.diagnostics.append(Diagnostic(
                "error", "run", f"no entry point named {entry!r}", filename))
            check.ok = False
            return result
        entry_bind = module.bindings()[entry]
        if entry_bind.params:
            check.diagnostics.append(Diagnostic(
                "error", "run",
                f"entry point {entry!r} must take no parameters "
                f"(it takes {len(entry_bind.params)})",
                filename, check.parsed.span_of_binding(entry), entry))
            check.ok = False
            return result

        compiled = self.options.compiled
        sources = None
        codegen_units = None
        cache_obj = None
        if compiled and cache is not None:
            from .batch import ResultCache, load_codegen

            cache_obj = ResultCache(cache, hot=self.store_hot_tier()) \
                if isinstance(cache, str) else cache
            sources, codegen_units = load_codegen(cache_obj, check,
                                                  self.options)
        traced = _TRACER.enabled
        try:
            program = _program_from_check(module, check)
            evaluator = Evaluator(program, compiled=compiled,
                                  compiled_sources=sources)
            if evaluator._compiled is not None:
                result.codegen_compiled = evaluator._compiled.codegen_count
                result.codegen_cached = evaluator._compiled.cache_hits
                if cache_obj is not None:
                    from .batch import store_codegen

                    store_codegen(cache_obj, codegen_units,
                                  evaluator._compiled)
                    cache_obj.save()
            if traced:
                _TRACER.begin("eval.run", entry=entry, file=filename)
            try:
                value = evaluator.force(evaluator.eval(entry_bind.rhs))
            finally:
                if traced:
                    _TRACER.end("eval.run")
            result.value = value.show(evaluator.heap)
            result.costs = evaluator.costs.as_dict()
            _REGISTRY.merge_counts(result.costs, "eval.")
            result.ok = True
        except ReproError as exc:
            check.diagnostics.append(Diagnostic(
                "error", "run", str(exc), filename,
                check.parsed.span_of_binding(entry), entry))
            check.ok = False
            self._crosscheck_bottom(check, entry, result)
            return result

        self._try_machine_crosscheck(check, entry, result, value,
                                     evaluator.heap)
        return result

    def _lower_for_crosscheck(self, check: CheckResult, entry: str,
                              result: RunResult):
        """Lower ``entry`` to L, recording a skip reason on failure."""
        from .lower import LoweringError, lower_entry

        schemes = {b.name: b.scheme for b in check.bindings
                   if b.scheme is not None}
        try:
            return lower_entry(check.parsed.module, schemes, entry)
        except LoweringError as exc:
            result.machine_skipped = str(exc)
            check.diagnostics.append(Diagnostic(
                "note", "compile",
                f"entry not cross-checked on the M machine: {exc}",
                check.filename, binding=entry))
            return None

    def _crosscheck_bottom(self, check: CheckResult, entry: str,
                           result: RunResult) -> None:
        """The evaluator hit an error; check the machine also aborts.

        Bottom is an observable outcome (S_PRIMBOT in L, the ABORT rule in
        M), so agreement on it is as meaningful as agreement on 42 — a
        machine that *succeeds* where the evaluator errored is a real
        divergence (this is exactly how the seed's total quot/rem-by-zero
        slipped through: the error path skipped the cross-check).
        """
        term = self._lower_for_crosscheck(check, entry, result)
        if term is None:
            return
        try:
            from ..compile.compiler import compile_and_run

            outcome = compile_and_run(
                term, max_steps=self.options.max_machine_steps)
        except ReproError as exc:
            check.diagnostics.append(Diagnostic(
                "warning", "compile",
                f"L→M cross-check failed: {exc}", check.filename,
                binding=entry))
            return
        result.machine_value = ("error" if outcome.aborted
                                else outcome.unwrap().pretty())
        result.machine_steps = outcome.costs.steps
        result.machine_agrees = bool(outcome.aborted)
        if not outcome.aborted:
            check.diagnostics.append(Diagnostic(
                "warning", "compile",
                f"M machine produced {result.machine_value!r} but the "
                f"evaluator reached bottom", check.filename, binding=entry))
        if self.options.validate:
            self._validate_entry(check, entry, result, term)

    def _try_machine_crosscheck(self, check: CheckResult, entry: str,
                                result: RunResult, value, heap) -> None:
        """Lower + compile + run on the M machine when the fragment allows."""
        term = self._lower_for_crosscheck(check, entry, result)
        if term is None:
            return
        try:
            from ..compile.compiler import compile_and_run

            outcome = compile_and_run(
                term, max_steps=self.options.max_machine_steps)
            result.machine_value = ("error" if outcome.aborted
                                    else outcome.unwrap().pretty())
            result.machine_steps = outcome.costs.steps
            if outcome.aborted:
                result.machine_agrees = False
            else:
                result.machine_agrees = _machine_agreement(
                    value, heap, outcome.unwrap())
            if result.machine_agrees is False:
                check.diagnostics.append(Diagnostic(
                    "warning", "compile",
                    f"M machine result {result.machine_value!r} disagrees "
                    f"with the evaluator's {result.value!r}",
                    check.filename, binding=entry))
            elif result.machine_agrees is None:
                check.diagnostics.append(Diagnostic(
                    "note", "compile",
                    "M machine ran but the result has no canonical "
                    "comparison (function value)",
                    check.filename, binding=entry))
            if self.options.validate:
                self._validate_entry(check, entry, result, term)
        except ReproError as exc:
            check.diagnostics.append(Diagnostic(
                "warning", "compile",
                f"L→M cross-check failed: {exc}", check.filename,
                binding=entry))

    def _validate_entry(self, check: CheckResult, entry: str,
                        result: RunResult, term) -> None:
        """Discharge the per-step Simulation obligations for ``entry``."""
        from ..validate import validate_term

        report = validate_term(
            term, filename=check.filename, entry=entry,
            align_steps=self.options.align_steps,
            machine_steps=self.options.max_machine_steps)
        result.validation = report
        if report.engaged and not report.ok:
            check.diagnostics.append(Diagnostic(
                "warning", "compile",
                f"translation validation failed: {report.reason}",
                check.filename, binding=entry))

    def compile(self, source: str, filename: str = "<input>",
                entry: str = "main") -> CompileResult:
        """Check, lower ``entry`` to L, compile to M, and run the machine."""
        check = self.check(source, filename)
        result = CompileResult(check, entry)
        if not check.ok:
            return result

        from .lower import LoweringError, lower_entry
        from ..compile.compiler import compile_expr
        from ..lang_l.typing import type_of
        from ..lang_l.syntax import Context
        from ..lang_m.machine import run as run_machine

        schemes = {b.name: b.scheme for b in check.bindings
                   if b.scheme is not None}
        try:
            term = lower_entry(check.parsed.module, schemes, entry)
            l_type = type_of(Context(), term)
            compiled = compile_expr(term)
            outcome = run_machine(compiled.code,
                                  max_steps=self.options.max_machine_steps)
        except (LoweringError, ReproError) as exc:
            check.diagnostics.append(Diagnostic(
                "error", "compile", str(exc), filename,
                check.parsed.span_of_binding(entry), entry))
            check.ok = False
            return result

        result.ok = True
        result.l_source = term.pretty()
        result.l_type = l_type.pretty()
        result.m_code = compiled.pretty()
        result.lazy_lets = compiled.lazy_lets
        result.strict_lets = compiled.strict_lets
        result.machine_value = ("error" if outcome.aborted
                                else outcome.unwrap().pretty())
        result.machine_steps = outcome.costs.steps
        return result

    # -- REPL support ---------------------------------------------------------

    def repl_input(self, line: str) -> str:
        """Process one REPL line; returns the text to display."""
        stripped = line.strip()
        if not stripped:
            return ""
        if stripped.startswith(":t "):
            return self._repl_type_of(stripped[3:])
        if stripped == ":load" or stripped.startswith(":load "):
            return self._repl_load(stripped[5:].strip())
        if stripped.startswith(":"):
            return f"unknown command {stripped.split()[0]!r} " \
                   "(try :t expr, :load DIR, :q)"
        as_decls = self._try_parse_decls(stripped)
        if as_decls:
            # Use the stripped line: pasted indentation must not trip the
            # column-1 declaration rule when the module is re-assembled.
            return self._repl_add_decls(stripped, as_decls)
        return self._repl_eval(stripped)

    @staticmethod
    def _try_parse_decls(text: str):
        """Parse REPL input as declarations; supports ``:load``-style
        multi-declaration pastes (several column-1 decls separated by
        newlines)."""
        try:
            parsed = parse_module(text, "<repl>")
        except ParseError:
            return None
        return list(parsed.module.decls) or None

    def _repl_load(self, args_text: str) -> str:
        """``:load DIR|FILE...`` — check a project and bring its exports
        into the REPL scope.  The project rides the same ProjectPlan as
        ``python -m repro build``, against a session-lived in-memory
        cache, so later redefinitions re-check only the cross-module
        dependents of the edited binding."""
        from .batch import CheckStats, ResultCache
        from .project import check_project, discover_sources, merged_check

        if not args_text:
            return "usage: :load DIR|FILE..."
        try:
            items = discover_sources(args_text.split())
        except OSError as exc:
            return f"cannot load: {exc}"
        if not items:
            return f"no .lev files found under {args_text}"
        if self._repl_project_cache is None:
            self._repl_project_cache = ResultCache()
        stats = CheckStats()
        check = self.check_project(items, cache=self._repl_project_cache,
                                   stats=stats)
        summary = (f"loaded {len(items)} file(s): "
                   f"{stats.checked} unit(s) checked, "
                   f"{stats.cache_hits} from cache")
        if not check.ok:
            errors = "\n".join(d.pretty() for r in check.results
                               for d in r.errors)
            return f"{errors}\n{summary} — load failed"
        self._repl_project = items
        self._repl_project_check = check
        self._repl_overlay = []
        self._repl_decls = []
        self._repl_check = merged_check(check, self.pipeline)
        return summary

    def _repl_project_add(self, text: str, added) -> str:
        """Add/redefine declarations over a ``:load``-ed project.

        A redefinition of a binding defined by exactly one loaded module
        is appended to *that module's* source (last definition wins), so
        the incremental project re-check walks precisely the cross-module
        dependents whose imported schemes changed.  Anything else lands
        in the REPL's overlay module, a headerless file importing every
        loaded module.
        """
        from .batch import CheckStats
        from .project import check_project, merged_check

        project = self._repl_project
        names = [decl.name for decl in added if isinstance(decl, FunBind)]
        defined_in: Dict[str, List[int]] = {}
        for index, exports in enumerate(self._repl_project_check.exports):
            for name in exports or {}:
                defined_in.setdefault(name, []).append(index)
        homes = {home for name in names
                 for home in defined_in.get(name, [])}
        overlay_names = set()
        for decl_text in self._repl_overlay:
            for decl in self._try_parse_decls(decl_text) or []:
                if isinstance(decl, FunBind):
                    overlay_names.add(decl.name)
        target: Optional[int] = None
        if names and len(homes) == 1 and \
                not any(name in overlay_names for name in names):
            target = homes.pop()

        items = list(project)
        overlay = list(self._repl_overlay)
        if target is not None:
            filename, source = items[target]
            items[target] = (filename, source.rstrip("\n") + "\n\n" +
                             text.rstrip() + "\n")
        else:
            overlay.append(text.rstrip())
        if overlay:
            header_names = sorted(
                name for name in self._repl_project_check.plan.by_name)
            overlay_source = "".join(f"import {name}\n"
                                     for name in header_names) + \
                "\n" + "\n".join(overlay) + "\n"
            items.append(("<repl>", overlay_source))

        stats = CheckStats()
        check = self.check_project(items, cache=self._repl_project_cache,
                                   stats=stats)
        if not check.ok:
            return "\n".join(d.pretty() for r in check.results
                             for d in r.errors)
        self._repl_project = items[:len(project)]
        self._repl_overlay = overlay
        self._repl_project_check = check
        self._repl_check = merged_check(check, self.pipeline)
        lines = []
        for name in dict.fromkeys(names):
            for binding in reversed(self._repl_check.bindings):
                if binding.name == name:
                    lines.append(f"{binding.name} :: {binding.rendered}")
                    break
        lines.append(f"(re-checked {stats.checked} unit(s) across "
                     f"{len(items)} file(s))")
        return "\n".join(lines)

    def _repl_add_decls(self, text: str, added) -> str:
        if self._repl_project is not None:
            return self._repl_project_add(text, added)
        candidate = self._repl_decls + [text.rstrip()]
        check = self.pipeline.check("\n".join(candidate) + "\n", "<repl>")
        if not check.ok:
            return "\n".join(d.pretty() for d in check.errors)
        self._repl_decls = candidate
        self._repl_check = check
        # Report the (re)defined bindings.  Redefinition is last-wins and —
        # because checking is dependency-ordered — earlier dependents have
        # already been re-checked against the *new* scheme by this point.
        names: List[str] = []
        for decl in added:
            if isinstance(decl, FunBind) and decl.name not in names:
                names.append(decl.name)
        lines = []
        for name in names:
            for binding in reversed(check.bindings):
                if binding.name == name:
                    lines.append(f"{binding.name} :: {binding.rendered}")
                    break
        return "\n".join(lines) if lines else "defined."

    def _repl_env(self) -> Optional[CheckResult]:
        return self._repl_check

    def _repl_type_of(self, text: str) -> str:
        from ..infer.infer import infer_binding

        try:
            expr = parse_expr(text, "<repl>")
        except ParseError as exc:
            return f"parse error: {exc}"
        check = self._repl_env()
        env = check.env if check is not None else self._base_env
        try:
            # Infer as a synthetic binding "it = <expr>" so the scheme is
            # generalised with Rep defaulting, exactly as GHCi's :type does.
            binding = infer_binding("it", (), expr, env=env,
                                    options=self.options.infer_options())
        except ReproError as exc:
            return f"type error: {exc}"
        if not binding.ok:
            return "type error: " + binding.levity_report.pretty()
        return f"{text.strip()} :: " \
               f"{render_scheme(binding.scheme, self.options.printer_options())}"

    def _repl_eval(self, text: str) -> str:
        from ..infer.infer import infer_binding
        from ..runtime.evaluator import Evaluator

        try:
            expr = parse_expr(text, "<repl>")
        except ParseError as exc:
            return f"parse error: {exc}"
        check = self._repl_env()
        env = check.env if check is not None else self._base_env
        try:
            binding = infer_binding("it", (), expr, env=env,
                                    options=self.options.infer_options())
            if not binding.ok:
                return "type error: " + binding.levity_report.pretty()
        except ReproError as exc:
            return f"type error: {exc}"
        try:
            if check is not None:
                program = _program_from_check(check.parsed.module, check)
            else:
                from ..runtime.evaluator import Program

                program = Program()
            evaluator = Evaluator(program, compiled=self.options.compiled)
            value = evaluator.force(evaluator.eval(expr))
            return value.show(evaluator.heap)
        except ReproError as exc:
            return f"runtime error: {exc}"
