"""Sharded parallel batch checking with a **binding-level** incremental cache.

PR 3 cached whole source texts; this version caches **compilation units**
(single bindings or mutually recursive SCC groups, see
:mod:`repro.driver.depgraph`).  A unit's cache key is::

    sha256( schema : options-fingerprint : unit source slice
            : for each direct dependency, its name + the canonical
              rendering of its scheme )

so editing one binding invalidates exactly that unit plus the units whose
*dependency schemes actually change* — a dependent whose dependency was
edited but re-checked to the same scheme is still a cache hit (early
cutoff).  Parse is always re-done (it is cheap and yields the plan the
walk needs); inference, the levity post-pass and Rep defaulting are what
the cache skips.

Three layers:

* **Unit payloads** — :func:`payload_from_unit_outcome` converts one
  checked unit into a slim JSON dict: per-member rendered schemes, status,
  diagnostics, and the *canonical* (explicit-runtime-reps) scheme
  rendering dependents key on and reconstruct typing environments from
  (via :func:`repro.frontend.parser.parse_scheme`).  Spans are stored
  **relative to the unit's source segments**, so a unit that merely moved
  (an earlier binding grew) is still a hit and is re-stamped with correct
  absolute lines on the way out.

* **The cache** — :class:`ResultCache`, mapping unit keys to unit
  payloads.  On disk it is a **sharded store**
  (:mod:`repro.driver.store`, schema v4): 256 key-prefix shards per key
  namespace, loaded lazily and persisted per-shard with the atomic
  merge-then-replace discipline — a warm no-op run reads only the shards
  it probes, a single-unit edit rewrites only the shards it dirtied, and
  concurrent runs sharing a cache directory cannot tear a shard or
  clobber each other's fresh entries.  An optional session-owned
  :class:`~repro.driver.store.HotTier` serves hot shards from memory.

* **The scheduler** — :func:`check_many_sharded` walks every file's units
  in dependency order.  With ``jobs > 1`` the pending units are dispatched
  in **waves**: each wave contains every unit whose dependencies are
  resolved, sharded across a process pool (units — not files — are the
  unit of sharding).  Workers re-derive the plan from the shipped source
  and receive the transitive dependency schemes as canonical renderings,
  so a worker round-trip is byte-identical to an in-process check.

File-level payload helpers (:func:`result_to_payload` /
:func:`result_from_payload` / :func:`payload_bytes`) are unchanged from
the v1 format and remain the canonical way to compare results for byte
identity.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.errors import ParseError
from ..frontend.lexer import Span
from ..infer.schemes import Scheme
from ..telemetry import (
    REGISTRY as _REGISTRY,
    SHARD_TID_BASE,
    TRACER as _TRACER,
)
from .depgraph import CheckUnit, ModulePlan, build_plan
from .store import CACHE_SCHEMA, HotTier, ShardStore
from .session import (
    BindingSummary,
    CheckResult,
    Diagnostic,
    DriverOptions,
    Pipeline,
    Session,
    UnitOutcome,
    assemble_decl_order,
)

__all__ = [
    "CACHE_SCHEMA",
    "PARALLEL_MODE_ENV",
    "CheckStats",
    "ResultCache",
    "cache_key",
    "canonical_scheme",
    "check_many_sharded",
    "codegen_cache_key",
    "load_codegen",
    "options_fingerprint",
    "outline_key",
    "payload_bytes",
    "payload_from_unit_outcome",
    "project_file_key",
    "result_from_payload",
    "result_to_payload",
    "store_codegen",
    "unit_key",
]

# CACHE_SCHEMA now lives in repro.driver.store (the on-disk layer owns
# the on-disk version number) and is re-exported here for key derivation
# and compatibility.


# ---------------------------------------------------------------------------
# File-level payloads (the result wire format, unchanged from v1)
# ---------------------------------------------------------------------------


def _span_to_list(span: Optional[Span]) -> Optional[List[int]]:
    if span is None:
        return None
    return [span.line, span.column, span.end_line, span.end_column]


def _span_from_list(data: Optional[Sequence[int]]) -> Optional[Span]:
    if data is None:
        return None
    return Span(*data)


def result_to_payload(result: CheckResult) -> dict:
    """The slim, JSON-able view of a whole-file check result.

    Drops the heavyweight fields (``scheme`` objects, the parsed module,
    the typing environment) and keeps what batch consumers need: rendered
    schemes, per-binding status, and diagnostics with spans.
    """
    return {
        "filename": result.filename,
        "ok": result.ok,
        "bindings": [
            {
                "name": binding.name,
                "rendered": binding.rendered,
                "ok": binding.ok,
                "defaulted_rep_vars": list(binding.defaulted_rep_vars),
                "span": _span_to_list(binding.span),
            }
            for binding in result.bindings
        ],
        "diagnostics": [
            {
                "severity": diagnostic.severity,
                "stage": diagnostic.stage,
                "message": diagnostic.message,
                "span": _span_to_list(diagnostic.span),
                "binding": diagnostic.binding,
            }
            for diagnostic in result.diagnostics
        ],
    }


def result_from_payload(payload: dict,
                        filename: Optional[str] = None) -> CheckResult:
    """Rebuild a (slim) :class:`CheckResult` from a file-level payload."""
    name = filename if filename is not None else payload["filename"]
    result = CheckResult(name, ok=payload["ok"])
    for binding in payload["bindings"]:
        result.bindings.append(BindingSummary(
            binding["name"], None, binding["rendered"], binding["ok"],
            tuple(binding["defaulted_rep_vars"]),
            _span_from_list(binding["span"])))
    for diagnostic in payload["diagnostics"]:
        result.diagnostics.append(Diagnostic(
            diagnostic["severity"], diagnostic["stage"],
            diagnostic["message"], name,
            _span_from_list(diagnostic["span"]), diagnostic["binding"]))
    return result


def payload_bytes(payload: dict) -> bytes:
    """The canonical byte encoding of a payload (for identity tests)."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


# ---------------------------------------------------------------------------
# Unit payloads (the cache + worker-IPC format)
# ---------------------------------------------------------------------------


def canonical_scheme(scheme: Scheme) -> str:
    """The canonical textual form of a scheme: the fully explicit rendering.

    This is what unit cache keys hash and what workers/cache hits parse
    back (via :func:`repro.frontend.parser.parse_scheme`) to rebuild a
    dependent's typing environment.  Explicit runtime reps are mandatory —
    the display-defaulted rendering would erase levity polymorphism.

    The rendering is memoised on the scheme object itself (schemes are
    frozen, and their type/rep nodes are hash-consed, so the text can
    never go stale): key derivation renders each scheme once per
    *definition*, not once per *dependent*.  The
    ``solver.scheme_renders`` / ``solver.scheme_render_hits`` counter
    pair makes the hit rate observable.
    """
    _REGISTRY.inc("solver.scheme_renders")
    text = getattr(scheme, "_canonical_src", None)
    if text is None:
        text = scheme.pretty(explicit_runtime_reps=True)
        # Scheme is a frozen dataclass; object.__setattr__ is the same
        # door its own __init__ uses.  The memo is identity-keyed and
        # invisible to dataclass equality/hashing.
        object.__setattr__(scheme, "_canonical_src", text)
    else:
        _REGISTRY.inc("solver.scheme_render_hits")
    return text


def _rel_span(unit: CheckUnit, span: Optional[Span]) -> Optional[List[int]]:
    if span is None:
        return None
    segment, fields = unit.relativize_span(span)
    return [segment] + fields


def _abs_span(unit: CheckUnit,
              data: Optional[Sequence[int]]) -> Optional[Span]:
    if data is None:
        return None
    return unit.absolutize_span(data[0], data[1:])


def payload_from_unit_outcome(outcome: UnitOutcome) -> dict:
    """Convert one checked unit into its slim cache/IPC payload."""
    unit = outcome.unit
    members = []
    for member in outcome.members:
        summary = member.summary
        members.append({
            "name": summary.name,
            "rendered": summary.rendered,
            "ok": summary.ok,
            "defaulted_rep_vars": list(summary.defaulted_rep_vars),
            "span": _rel_span(unit, summary.span),
            "scheme_src": (canonical_scheme(member.env_scheme)
                           if member.env_scheme is not None else None),
            "diagnostics": [
                {
                    "severity": diagnostic.severity,
                    "stage": diagnostic.stage,
                    "message": diagnostic.message,
                    "binding": diagnostic.binding,
                    "span": _rel_span(unit, diagnostic.span),
                }
                for diagnostic in member.diagnostics
            ],
        })
    return {"members": members}


def _unit_payload_valid(payload: dict) -> bool:
    """Shape-check a unit payload before trusting a cache entry."""
    try:
        members = payload["members"]
        if not isinstance(members, list):
            return False
        for member in members:
            member["name"]; member["rendered"]; member["ok"]
            member["scheme_src"]
            list(member["defaulted_rep_vars"])
            if member["span"] is not None:
                Span(*member["span"][1:])
            for diagnostic in member["diagnostics"]:
                diagnostic["severity"]; diagnostic["stage"]
                diagnostic["message"]; diagnostic["binding"]
                if diagnostic["span"] is not None:
                    Span(*diagnostic["span"][1:])
    except (KeyError, TypeError, IndexError):
        return False
    return True


def _file_payload_valid(payload: dict) -> bool:
    """Shape-check a whole-file payload before trusting a cache entry."""
    try:
        result_from_payload(payload, "<probe>")
    except (KeyError, TypeError, IndexError):
        return False
    return True


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------


#: DriverOptions fields that cannot affect ``Pipeline.check`` output.
#: Everything NOT listed here invalidates the cache when it changes, so a
#: future option is cache-safe by default and must be excluded explicitly.
_CHECK_IRRELEVANT_OPTIONS = frozenset({
    "max_machine_steps",  # only consulted by the run/compile bridge
    "compiled",           # evaluator backend choice; checking is unaffected
})


def options_fingerprint(options: DriverOptions) -> str:
    """A stable digest of every option that can change a check's output."""
    state = json.dumps(
        {name: value for name, value in dataclasses.asdict(options).items()
         if name not in _CHECK_IRRELEVANT_OPTIONS},
        sort_keys=True)
    return hashlib.sha256(state.encode("utf-8")).hexdigest()[:16]


def cache_key(source: str, options: DriverOptions,
              _fingerprint: Optional[str] = None) -> str:
    """SHA-256 of a source text, namespaced by schema + options.

    For units the ``source`` is the unit's declaration slice; filenames
    are deliberately excluded, so renaming a file (or moving a binding
    within one) re-uses its cached results.  ``_fingerprint`` lets batch
    loops amortise the options digest across thousands of keys.
    """
    fingerprint = _fingerprint or options_fingerprint(options)
    hasher = hashlib.sha256()
    hasher.update(f"repro-check:{CACHE_SCHEMA}:"
                  f"{fingerprint}:".encode("utf-8"))
    hasher.update(source.encode("utf-8"))
    return hasher.hexdigest()


#: Key marker for a dependency that failed without leaving a scheme; no
#: real rendering can collide with it (schemes never start with \x01).
_FAILED_DEP = "\x01failed"


def unit_key(unit_source: str,
             dep_items: Iterable[Tuple[str, Optional[str]]],
             options: DriverOptions,
             _fingerprint: Optional[str] = None) -> str:
    """The cache key of one unit: source slice + direct-dependency schemes.

    ``dep_items`` pairs each direct dependency's name with the canonical
    rendering of its scheme (or None when the dependency failed to produce
    one).  Editing a dependency only invalidates this key when its
    *scheme* changes — the early-cutoff property.
    """
    hasher = hashlib.sha256()
    hasher.update(cache_key(unit_source, options,
                            _fingerprint).encode("utf-8"))
    for name, scheme_src in sorted(dep_items):
        hasher.update(b"\x00dep\x00")
        hasher.update(name.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update((scheme_src if scheme_src is not None
                       else _FAILED_DEP).encode("utf-8"))
    return hasher.hexdigest()


def project_file_key(source: str,
                     ext_items: Iterable[Tuple[str, Optional[str]]],
                     options: DriverOptions,
                     _fingerprint: Optional[str] = None) -> str:
    """File-level short-circuit key for a module checked inside a project.

    ``ext_items`` pairs each *referenced imported name* with the canonical
    rendering of its exported scheme, exactly as supplied to the module's
    units — so a dependency edit that leaves every referenced scheme
    unchanged keeps the whole module a file-level hit (no re-parse), while
    a scheme change re-opens the module for its unit walk.  The ``pfile:``
    prefix keeps project entries disjoint from single-file entries of the
    same source (their payloads differ: import warnings).
    """
    return "pfile:" + unit_key(source, ext_items, options, _fingerprint)


def outline_key(source: str, options: DriverOptions,
                _fingerprint: Optional[str] = None) -> str:
    """Key of a source's ``outline:`` side-table entry.

    An outline is a pure function of the source text (module name, import
    declarations with spans, union of foreign references) that lets the
    project planner build the module graph for unchanged files without
    re-parsing them.
    """
    return "outline:" + cache_key(source, options, _fingerprint)


def codegen_cache_key(key: str) -> str:
    """Namespace a unit key for the codegen side-table.

    Compiled Python sources live in the same cache document as check
    payloads, under the unit's existing key prefixed with the code
    generator's version — bumping ``CODEGEN_VERSION`` orphans stale
    generated code without touching check results.
    """
    from ..runtime.compiler import CODEGEN_VERSION

    return f"codegen{CODEGEN_VERSION}:{key}"


def _codegen_payload_valid(payload: dict) -> bool:
    """Shape-check a codegen payload before trusting a cache entry."""
    try:
        functions = payload["functions"]
        arities = payload["arities"]
        if not isinstance(functions, dict) or not isinstance(arities, dict):
            return False
        for name, source in functions.items():
            if not isinstance(name, str):
                return False
            if source is not None and not isinstance(source, str):
                return False
        for name, arity in arities.items():
            if not isinstance(name, str) or not isinstance(arity, int):
                return False
    except (KeyError, TypeError):
        return False
    return True


def _exports_payload_valid(payload: dict) -> bool:
    """Shape-check an ``exports:`` side-table entry.

    ``{"exports": null}`` is valid and marks a module that failed entirely
    (did not parse): importers skip structurally instead of re-checking.
    """
    try:
        exports = payload["exports"]
        if exports is None:
            return True
        if not isinstance(exports, dict):
            return False
        for name, scheme_src in exports.items():
            if not isinstance(name, str):
                return False
            if scheme_src is not None and not isinstance(scheme_src, str):
                return False
    except (KeyError, TypeError):
        return False
    return True


def _outline_payload_valid(payload: dict) -> bool:
    """Shape-check an ``outline:`` side-table entry."""
    try:
        name = payload["name"]
        if name is not None and not isinstance(name, str):
            return False
        if not isinstance(payload["parse_error"], bool):
            return False
        for import_name, span in payload["imports"]:
            if not isinstance(import_name, str):
                return False
            Span(*span)
        for foreign in payload["foreign"]:
            if not isinstance(foreign, str):
                return False
    except (KeyError, TypeError, ValueError, IndexError):
        return False
    return True


# ---------------------------------------------------------------------------
# The incremental cache
# ---------------------------------------------------------------------------


class ResultCache:
    """A store-backed map from unit keys to unit payloads.

    With a ``path`` the entries live in a sharded directory managed by
    :class:`repro.driver.store.ShardStore` (see that module for the
    layout, atomicity and GC story); shards load lazily, so construction
    is O(1) regardless of cache size.  Without a path the cache is a
    plain in-process dict (the REPL's ``:load`` state, tests).

    ``hits``/``misses``/``stores`` counters make cache behaviour
    observable to benchmarks, tests and ``--stats``; storing a payload
    identical to the existing entry is a free no-op at every level
    (counters, dirty shards, disk).

    :meth:`save` persists **exactly the dirty shards**, each with the
    atomic merge-then-replace discipline — concurrent ``--jobs`` runs
    sharing one ``--cache`` directory can neither interleave a torn
    shard nor silently drop each other's work.  ``hot`` (a
    :class:`~repro.driver.store.HotTier`, usually session-owned) serves
    repeat shard reads from memory.
    """

    def __init__(self, path: Optional[str] = None,
                 hot: Optional[HotTier] = None) -> None:
        self.path = path
        self._store: Optional[ShardStore] = None
        self._memory: Dict[str, dict] = {}
        if path is not None:
            self._store = ShardStore(path, hot=hot)
        #: Unit-level counters (the granularity ``--stats`` reports).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Whole-file short-circuit counters: an unchanged file is answered
        #: from one file-level entry without even being re-parsed.
        self.file_hits = 0
        self.file_stores = 0
        #: Codegen side-table counters (compiled Python sources per unit).
        self.codegen_hits = 0
        self.codegen_misses = 0
        self.codegen_stores = 0
        #: Project side-table counters (outlines + per-module exports).
        self.outline_hits = 0
        self.outline_misses = 0

    @property
    def entries(self) -> Dict[str, dict]:
        """Every entry, as one dict.

        In-memory caches return their live dict; store-backed caches
        materialise the whole store (disk plus unsaved writes) — an
        inspection affordance for tests and tooling, not a fast path.
        """
        if self._store is None:
            return self._memory
        return self._store.load_all()

    @property
    def shards_read(self) -> int:
        return self._store.shards_read if self._store is not None else 0

    @property
    def shards_written(self) -> int:
        return self._store.shards_written if self._store is not None else 0

    def _get(self, key: str) -> Optional[dict]:
        if self._store is not None:
            return self._store.get(key)
        return self._memory.get(key)

    def _put(self, key: str, payload: dict) -> bool:
        if self._store is not None:
            return self._store.put(key, payload)
        if self._memory.get(key) == payload:
            return False
        self._memory[key] = payload
        return True

    def lookup(self, key: str) -> Optional[dict]:
        payload = self._get(key)
        if payload is not None and not _unit_payload_valid(payload):
            # A malformed entry (hand-edited shard, truncated write) is a
            # miss, not an error; the re-check overwrites it.  Validating
            # here keeps the hit/miss counters truthful.
            payload = None
        if payload is None:
            self.misses += 1
        else:
            self.hits += 1
        return payload

    def store(self, key: str, payload: dict) -> None:
        if self._put(key, payload):
            self.stores += 1

    def lookup_file(self, key: str) -> Optional[dict]:
        """Whole-file fast path; a miss here is silent (the unit walk that
        follows keeps the truthful per-unit counters)."""
        payload = self._get(key)
        if payload is None or not _file_payload_valid(payload):
            return None
        self.file_hits += 1
        return payload

    def store_file(self, key: str, payload: dict) -> None:
        if self._put(key, payload):
            self.file_stores += 1

    def lookup_exports(self, file_key: str) -> Optional[dict]:
        """The ``exports:`` entry of a project file key, or None.

        The returned payload's ``"exports"`` field is either a
        ``{name: canonical scheme rendering | None}`` map or None (the
        module failed entirely — e.g. did not parse)."""
        payload = self._get("exports:" + file_key)
        if payload is None or not _exports_payload_valid(payload):
            return None
        return payload

    def store_exports(self, file_key: str,
                      exports: Optional[Dict[str, Optional[str]]]) -> None:
        self._put("exports:" + file_key, {"exports": exports})

    def lookup_outline(self, key: str) -> Optional[dict]:
        payload = self._get(key)
        if payload is None or not _outline_payload_valid(payload):
            self.outline_misses += 1
            return None
        self.outline_hits += 1
        return payload

    def store_outline(self, key: str, payload: dict) -> None:
        self._put(key, payload)

    def lookup_codegen(self, key: str) -> Optional[dict]:
        payload = self._get(key)
        if payload is not None and not _codegen_payload_valid(payload):
            payload = None
        if payload is None:
            self.codegen_misses += 1
        else:
            self.codegen_hits += 1
        return payload

    def store_codegen(self, key: str, payload: dict) -> None:
        if self._put(key, payload):
            self.codegen_stores += 1

    def save(self) -> None:
        """Persist dirty shards (see :meth:`ShardStore.save`); a no-op
        for in-memory caches and when nothing changed.  Callers that
        nulled ``path`` after construction (benchmarks do, to get a
        read-only view) persist nothing."""
        if self.path is None or self._store is None:
            return
        self._store.save()


# ---------------------------------------------------------------------------
# The per-unit codegen side-table
# ---------------------------------------------------------------------------


def load_codegen(cache: ResultCache, check: CheckResult,
                 options: DriverOptions):
    """Resolve cached compiled sources for a fully-checked module.

    Returns ``(sources, units)``.  ``sources`` maps binding names to the
    generated Python source served from the cache (``None`` marks a
    binding the compiler is known to skip — still a hit: no codegen is
    re-attempted).  ``units`` lists ``(key, names, arities)`` per
    compilation unit, in plan order, for :func:`store_codegen` to write
    fresh codegen back after the evaluator lowered the misses.

    Keys are the **existing per-unit check keys** (source slice +
    dependency schemes) under the :func:`codegen_cache_key` namespace.
    One extra validation is needed that check results do not: compiled
    call sites bake in each callee's *syntactic arity* (how many
    parameters its equation binds), which a scheme does not determine —
    ``f x = \\y -> …`` and ``f x y = …`` share a scheme but not an arity.
    Each entry therefore records its dependencies' arities and is
    discarded when any changed.
    """
    plan = build_plan(check.parsed)
    arity_of = {name: len(bind.params)
                for name, bind in check.parsed.module.bindings().items()}
    scheme_srcs = {
        binding.name: (canonical_scheme(binding.scheme)
                       if binding.scheme is not None else None)
        for binding in check.bindings}
    fingerprint = options_fingerprint(options)
    sources: Dict[str, Optional[str]] = {}
    units: List[Tuple[str, Tuple[str, ...], Dict[str, int]]] = []
    for unit in plan.units:
        key = codegen_cache_key(unit_key(
            unit.source,
            [(dep, scheme_srcs.get(dep)) for dep in unit.deps],
            options, fingerprint))
        arities = {dep: arity_of[dep] for dep in unit.deps
                   if dep in arity_of}
        units.append((key, unit.names, arities))
        payload = cache.lookup_codegen(key)
        if payload is None or payload["arities"] != arities:
            continue
        for name in unit.names:
            if name in payload["functions"]:
                sources[name] = payload["functions"][name]
    return sources, units


def store_codegen(cache: ResultCache, units, compiled) -> None:
    """Persist a :class:`~repro.runtime.compiler.CompiledProgram`'s
    generated sources, one entry per compilation unit from
    :func:`load_codegen`'s ``units`` listing."""
    for key, names, arities in units:
        functions = {name: compiled.sources[name] for name in names
                     if name in compiled.sources}
        if not functions:
            continue
        cache.store_codegen(key, {"functions": functions,
                                  "arities": arities})


# ---------------------------------------------------------------------------
# --stats bookkeeping
# ---------------------------------------------------------------------------


@dataclass
class UnitTiming:
    """One unit's row in the ``--stats`` table."""

    filename: str
    names: Tuple[str, ...]
    #: Wall seconds when the unit was timed in-process; None for rows
    #: that were never timed (cache hits, deduplicated jobs, and units
    #: checked inside a worker process).
    seconds: Optional[float]
    #: Where the row came from: "checked" (type-checked this call),
    #: "hit" (served from the unit cache), or "skipped" (a deduplicated
    #: duplicate job — the identical unit was checked once elsewhere in
    #: the batch).  Cache hits used to record 0.0 seconds, which made
    #: them indistinguishable from genuinely instant units; the explicit
    #: source plus ``seconds=None`` removes that ambiguity.
    source: str

    @property
    def outcome(self) -> str:
        """Backwards-compatible alias for :attr:`source`."""
        return self.source


@dataclass
class CheckStats:
    """Per-unit timing and cache behaviour of one ``check_many`` call."""

    files: int = 0
    parse_failures: int = 0
    #: Files answered whole from a file-level cache entry (never parsed).
    file_hits: int = 0
    units: int = 0
    checked: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Deduplicated duplicate jobs (identical source + deps in one batch).
    skipped: int = 0
    timings: List[UnitTiming] = field(default_factory=list)

    def note(self, filename: str, unit: CheckUnit,
             seconds: Optional[float], source: str) -> None:
        self.units += 1
        if source == "hit":
            self.cache_hits += 1
            _REGISTRY.inc("cache.unit_hits")
        elif source == "skipped":
            self.skipped += 1
            _REGISTRY.inc("batch.units_skipped")
        else:
            self.checked += 1
            _REGISTRY.inc("batch.units_checked")
        self.timings.append(UnitTiming(filename, unit.names, seconds,
                                       source))

    def as_dict(self) -> dict:
        """JSON-ready form for the unified ``--stats --json`` document."""
        return {
            "files": self.files,
            "parse_failures": self.parse_failures,
            "file_hits": self.file_hits,
            "units": self.units,
            "checked": self.checked,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "skipped": self.skipped,
            "timings": [
                {"filename": t.filename, "names": list(t.names),
                 "seconds": t.seconds, "source": t.source}
                for t in self.timings],
        }

    def pretty(self, slowest: int = 10) -> str:
        summary = (
            f"files: {self.files}  file hits: {self.file_hits}  "
            f"units: {self.units}  checked: {self.checked}  "
            f"cache hits: {self.cache_hits}  "
            f"cache misses: {self.cache_misses}"
        )
        if self.skipped:
            summary += f"  skipped: {self.skipped}"
        lines = [summary]
        if self.parse_failures:
            lines.append(f"parse failures: {self.parse_failures}")
        timed = [t for t in self.timings if t.seconds is not None]
        timed.sort(key=lambda t: t.seconds, reverse=True)
        if timed:
            lines.append(f"slowest units (of {len(timed)} timed):")
            for timing in timed[:slowest]:
                names = ", ".join(timing.names)
                lines.append(f"  {timing.filename}:{names}  "
                             f"{timing.seconds * 1000:.2f}ms  "
                             f"[{timing.source}]")
        untimed = [t for t in self.timings if t.seconds is None]
        if untimed:
            counts: Dict[str, int] = {}
            for timing in untimed:
                counts[timing.source] = counts.get(timing.source, 0) + 1
            rendered = "  ".join(f"{source}: {count}" for source, count
                                 in sorted(counts.items()))
            lines.append(f"untimed units ({len(untimed)}):  {rendered}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The incremental unit walk (shared by the serial path and the workers)
# ---------------------------------------------------------------------------


class _SchemeResolver:
    """Materialise dependency :class:`Scheme` objects on demand.

    Schemes computed in-process are kept as objects; schemes that came
    from cache hits or worker payloads exist only as canonical renderings
    and are parsed back lazily.  If a rendering unexpectedly fails to
    re-parse (a printer gap), the resolver *re-checks the defining unit
    in-process* instead of propagating junk — self-healing at the cost of
    one redundant check.
    """

    def __init__(self, pipeline: Pipeline, plan: ModulePlan,
                 srcs: Dict[str, Optional[str]],
                 objects: Optional[Dict[str, Optional[Scheme]]] = None
                 ) -> None:
        self.pipeline = pipeline
        self.plan = plan
        self.srcs = srcs
        self.objects = objects if objects is not None else {}

    def scheme(self, name: str) -> Optional[Scheme]:
        if name in self.objects:
            return self.objects[name]
        src = self.srcs.get(name)
        scheme: Optional[Scheme] = None
        if src is not None:
            from ..frontend.parser import parse_scheme

            try:
                scheme = parse_scheme(src)
            except ParseError:
                scheme = self._recheck(name)
        self.objects[name] = scheme
        return scheme

    def _recheck(self, name: str) -> Optional[Scheme]:
        uid = self.plan.defining_unit.get(name)
        if uid is None:
            return None
        unit = self.plan.units[uid]
        available = {dep: self.scheme(dep) for dep in unit.deps}
        outcome = self.pipeline.check_unit(self.plan, unit, available)
        for member in outcome.members:
            if member.summary.name == name:
                return member.env_scheme
        return None

    def available_for(self, unit: CheckUnit) -> Dict[str, Optional[Scheme]]:
        available = {dep: self.scheme(dep) for dep in unit.deps}
        # Foreign names resolve only when the srcs map has an entry for
        # them (project mode seeds it with imported exports; a present-
        # but-None entry means the exporting binding failed).  Absent
        # names stay unbound: ordinary scope errors.
        for name in unit.foreign:
            if name in self.srcs:
                available[name] = self.scheme(name)
        return available


def _compute_unit_payload(pipeline: Pipeline, plan: ModulePlan, uid: int,
                          resolver: _SchemeResolver
                          ) -> Tuple[dict, UnitOutcome]:
    unit = plan.units[uid]
    outcome = pipeline.check_unit(plan, unit, resolver.available_for(unit))
    return payload_from_unit_outcome(outcome), outcome


# ---------------------------------------------------------------------------
# Per-file state
# ---------------------------------------------------------------------------


class _FileState:
    """One input file's parse, plan, and per-unit resolution state.

    ``externals`` (project mode) maps imported names to the canonical
    renderings of their exported schemes (None = the export failed); it
    seeds ``scheme_srcs``, so foreign references resolve through exactly
    the same machinery as local dependencies — including the worker IPC
    path, which ships ``scheme_srcs`` wholesale.
    """

    def __init__(self, index: int, filename: str, source: str,
                 pipeline: Pipeline,
                 externals: Optional[Dict[str, Optional[str]]] = None,
                 imports_resolved: bool = False) -> None:
        self.index = index
        self.filename = filename
        self.source = source
        self.imports_resolved = imports_resolved
        self.parsed, self.parse_diagnostics = pipeline.parse(source, filename)
        self.plan: Optional[ModulePlan] = None
        if self.parsed is not None:
            with _TRACER.span("depgraph", file=filename):
                self.plan = build_plan(self.parsed)
        #: uid -> unit payload, filled as units resolve.
        self.payloads: Dict[int, dict] = {}
        #: defined or imported name -> canonical scheme rendering (or
        #: None = failed).  Locals overwrite imports on collision (a
        #: local definition shadows an imported name).
        self.scheme_srcs: Dict[str, Optional[str]] = \
            dict(externals) if externals else {}
        #: defined name -> materialised Scheme (in-process checks only).
        self.schemes: Dict[str, Optional[Scheme]] = {}

    @property
    def units(self) -> List[CheckUnit]:
        return self.plan.units if self.plan is not None else []

    def dep_items(self, unit: CheckUnit
                  ) -> List[Tuple[str, Optional[str]]]:
        items = [(dep, self.scheme_srcs.get(dep)) for dep in unit.deps]
        # Imported schemes the unit references are part of its key: a
        # change to one invalidates exactly the units naming it.
        items.extend((name, self.scheme_srcs[name]) for name in unit.foreign
                     if name in self.scheme_srcs)
        return items

    def exports(self) -> Optional[Dict[str, Optional[str]]]:
        """The module's export map (None when the file did not parse)."""
        if self.plan is None:
            return None
        return {name: self.scheme_srcs.get(name)
                for name in sorted(self.plan.defining_decl)}

    def resolve(self, plan_unit: CheckUnit, payload: dict,
                outcome: Optional[UnitOutcome] = None) -> None:
        """Record a unit's payload and export its defining schemes."""
        self.payloads[plan_unit.uid] = payload
        plan = self.plan
        by_name = {}
        if outcome is not None:
            by_name = {m.summary.name: m for m in outcome.members}
        for decl_index, member in zip(plan_unit.member_decls,
                                      payload["members"]):
            name = member["name"]
            if plan.defining_decl.get(name) != decl_index:
                continue
            self.scheme_srcs[name] = member["scheme_src"]
            if name in by_name:
                self.schemes[name] = by_name[name].env_scheme

    def assemble(self) -> CheckResult:
        """Stitch the resolved unit payloads into a slim file result."""
        result = CheckResult(self.filename)
        result.diagnostics.extend(self.parse_diagnostics)
        if self.parsed is None:
            result.ok = False
            return result
        plan = self.plan
        entries: Dict[int, Tuple[BindingSummary, List[Diagnostic]]] = {}
        for unit in plan.units:
            payload = self.payloads[unit.uid]
            for decl_index, member in zip(unit.member_decls,
                                          payload["members"]):
                span = _abs_span(unit, member["span"])
                summary = BindingSummary(
                    member["name"], None, member["rendered"], member["ok"],
                    tuple(member["defaulted_rep_vars"]), span)
                diagnostics = [
                    Diagnostic(d["severity"], d["stage"], d["message"],
                               self.filename, _abs_span(unit, d["span"]),
                               d["binding"])
                    for d in member["diagnostics"]]
                entries[decl_index] = (summary, diagnostics)
        assemble_decl_order(plan, entries, result,
                            imports_resolved=self.imports_resolved)
        result.ok = not result.errors
        return result


# ---------------------------------------------------------------------------
# Worker processes
# ---------------------------------------------------------------------------

#: The per-process warm session (prelude built once per worker).
_WORKER_SESSION: Optional[Session] = None

#: Process-global parse/plan memo, keyed by source hash (bounded).
_WORKER_PLANS: Dict[str, ModulePlan] = {}
_WORKER_PLAN_LIMIT = 1024


def _worker_init(options_state: dict, trace_enabled: bool = False) -> None:
    global _WORKER_SESSION
    # Under the fork start method the child inherits the parent tracer's
    # buffered events and epoch; reset so the worker payload carries only
    # spans this process actually recorded, timed from its own clock.
    _TRACER.reset(process_name="repro worker")
    if trace_enabled:
        _TRACER.enable()
    else:
        _TRACER.disable()
    _WORKER_SESSION = Session(DriverOptions(**options_state))


def _plan_for(pipeline: Pipeline, filename: str, source: str) -> ModulePlan:
    memo_key = hashlib.sha256(source.encode("utf-8")).hexdigest()
    plan = _WORKER_PLANS.get(memo_key)
    if plan is None:
        parsed, _ = pipeline.parse(source, filename)
        assert parsed is not None, \
            "worker received a source that does not parse"
        plan = build_plan(parsed)
        if len(_WORKER_PLANS) >= _WORKER_PLAN_LIMIT:
            _WORKER_PLANS.clear()
        _WORKER_PLANS[memo_key] = plan
    return plan


def _check_pending_units(pipeline: Pipeline, plan: ModulePlan,
                         pending: Sequence[int],
                         resolver: "_SchemeResolver"
                         ) -> List[Tuple[int, dict]]:
    """Check a file's pending units in dependency order, exporting each
    unit's schemes into the resolver so later units in the chain see them.
    ``pending`` uids are ascending, which *is* dependency order."""
    payloads: List[Tuple[int, dict]] = []
    for uid in pending:
        unit = plan.units[uid]
        payload, outcome = _compute_unit_payload(pipeline, plan, uid,
                                                 resolver)
        payloads.append((uid, payload))
        for member in outcome.members:
            name = member.summary.name
            if plan.defining_decl.get(name) == member.decl_index:
                resolver.objects[name] = member.env_scheme
                resolver.srcs[name] = (
                    canonical_scheme(member.env_scheme)
                    if member.env_scheme is not None else None)
    return payloads


#: One worker job: (job id, filename, source, pending unit uids,
#: resolved dependency scheme renderings).
_UnitJob = Tuple[int, str, str, List[int],
                 List[Tuple[str, Optional[str]]]]


def _worker_check_units(shard: List[_UnitJob]
                        ) -> Tuple[List[Tuple[int, List[Tuple[int, dict]]]],
                                   Optional[dict]]:
    """Check one shard of unit jobs.

    The shard's granularity is the *unit*: fully-cached units never reach
    a worker, and each job carries exactly one file's pending units (file
    affinity keeps one parse per file; units within a file form dependency
    chains, so they are walked in order locally).  Workers re-derive the
    plan from the shipped source (deterministic) and rebuild dependency
    environments from the canonical scheme renderings, so worker output is
    byte-identical to an in-process check.

    Returns ``(results, trace_payload)``: when the worker tracer is on,
    the second element ships this process's spans (with its pid and
    wall-clock epoch) back for the parent to rebase onto its timeline.
    """
    session = _WORKER_SESSION
    assert session is not None, "worker used without _worker_init"
    pipeline = session.pipeline
    traced = _TRACER.enabled
    out = []
    for job, filename, source, pending, dep_srcs in shard:
        if traced:
            _TRACER.begin("worker.file", file=filename, units=len(pending))
        try:
            plan = _plan_for(pipeline, filename, source)
            resolver = _SchemeResolver(pipeline, plan, dict(dep_srcs))
            out.append((job, _check_pending_units(pipeline, plan, pending,
                                                  resolver)))
        finally:
            if traced:
                _TRACER.end("worker.file")
    return out, (_TRACER.worker_payload() if traced else None)


def _shard(pending: List, jobs: int) -> List[List]:
    """Contiguous shards, one per worker (a single IPC round-trip each)."""
    size, remainder = divmod(len(pending), jobs)
    shards = []
    start = 0
    for worker in range(jobs):
        stop = start + size + (1 if worker < remainder else 0)
        if stop > start:
            shards.append(pending[start:stop])
        start = stop
    return shards


# ---------------------------------------------------------------------------
# Parallel scheduling policy
# ---------------------------------------------------------------------------

#: Environment override for the serial-cutoff heuristics:
#: ``auto`` (default) applies them, ``always`` fans out whenever
#: ``jobs > 1`` (benchmarks/tests proving pool reuse), ``never`` forces
#: the in-process path.
PARALLEL_MODE_ENV = "REPRO_PARALLEL"

#: Fewest pending units that may ship to one worker before fan-out is
#: worth its dispatch cost (pickling + IPC; spawn is already amortised by
#: the persistent pool, but a warm round-trip is still not free).
_MIN_UNITS_PER_WORKER = 4


def _parallel_mode() -> str:
    mode = os.environ.get(PARALLEL_MODE_ENV, "auto").strip().lower()
    return mode if mode in ("auto", "always", "never") else "auto"


def _effective_jobs(jobs: int, pending_units: int, unit_jobs: int) -> int:
    """How many workers this batch should actually use.

    ``auto`` mode applies the serial cutoff (tiny batches and 1-CPU hosts
    never pay worker dispatch) and autotunes the shard count so every
    worker has at least :data:`_MIN_UNITS_PER_WORKER` units; ``always``
    and ``never`` bypass the heuristics in either direction.
    """
    if jobs <= 1:
        return 1
    mode = _parallel_mode()
    if mode == "never":
        return 1
    if mode == "always":
        return jobs
    cpus = os.cpu_count() or 1
    if cpus <= 1 or unit_jobs <= 1:
        return 1
    jobs = min(jobs, cpus, unit_jobs)
    while jobs > 1 and pending_units < jobs * _MIN_UNITS_PER_WORKER:
        jobs -= 1
    return jobs


# ---------------------------------------------------------------------------
# The public batch entry point
# ---------------------------------------------------------------------------


def check_many_sharded(sources: Iterable[Tuple[str, str]],
                       options: Optional[DriverOptions] = None,
                       jobs: int = 1,
                       cache: Union[ResultCache, str, None] = None,
                       session: Optional[Session] = None,
                       stats: Optional[CheckStats] = None,
                       externals: Optional[Sequence[
                           Optional[Dict[str, Optional[str]]]]] = None,
                       file_keys_in: Optional[Sequence[
                           Optional[str]]] = None,
                       exports_out: Optional[List[
                           Optional[Dict[str, Optional[str]]]]] = None,
                       ) -> List[CheckResult]:
    """Check many ``(filename, source)`` programs at unit granularity.

    The cache is hierarchical: an unchanged *file* (whole-source key) is
    answered from one file-level entry without even re-parsing; an edited
    file is parsed and planned, and its units resolve individually — from
    the per-unit cache (source slice + dependency schemes) where possible,
    otherwise by checking, in-process or across ``jobs`` worker processes.
    Sharding is unit-granular with file affinity: only pending units ship,
    one job per file, so one worker round-trip covers a whole dependency
    chain with a single parse.

    Results always come back **in input order**, as slim payload-backed
    :class:`CheckResult` values (``scheme``/``parsed``/``env`` are None).
    ``stats`` (a :class:`CheckStats`) collects per-unit timing and cache
    hit/miss counts for ``--stats``; counters accumulate, so the project
    walk can thread one object through its per-level calls.

    The project planner (:mod:`repro.driver.project`) drives the three
    extra per-file sequences, each parallel to ``sources``:

    * ``externals[i]`` — imported name → canonical exported scheme
      rendering (None value = the export failed).  A non-None entry puts
      file ``i`` in **project mode**: foreign references resolve against
      it, unit keys fold in the referenced renderings, and import
      declarations produce no single-file warning.
    * ``file_keys_in[i]`` — overrides the file-level cache key (the
      planner computes :func:`project_file_key` from the outline's foreign
      references, which the plain source key cannot see).
    * ``exports_out[i]`` — filled with the file's export map
      ({defined name: canonical rendering | None}), or None when the file
      failed to parse.  Served from the ``exports:`` side-table on
      file-level hits, so a warm module never re-parses.
    """
    options = options or DriverOptions()
    jobs = max(1, int(jobs))
    if session is None:
        session = Session(options)
    if isinstance(cache, str):
        # A path-spelled cache is opened against the session's hot tier,
        # so repeated calls in one warm process serve hot shards from
        # memory instead of disk.
        cache = ResultCache(cache, hot=session.store_hot_tier())
    if stats is None:
        # Counting always (into an internal CheckStats) keeps the
        # telemetry registry's cache.*/batch.* counters accurate whether
        # or not the caller asked for a --stats table.
        stats = CheckStats()
    pipeline = session.pipeline
    fingerprint = options_fingerprint(options)

    items = list(sources)
    results: List[Optional[CheckResult]] = [None] * len(items)
    file_keys: List[str] = []
    active: List[_FileState] = []
    for index, (filename, source) in enumerate(items):
        ext = externals[index] if externals is not None else None
        file_key = file_keys_in[index] \
            if file_keys_in is not None and file_keys_in[index] is not None \
            else cache_key(source, options, fingerprint)
        file_keys.append(file_key)
        if cache is not None:
            payload = cache.lookup_file(file_key)
            if payload is not None:
                exports_payload = cache.lookup_exports(file_key) \
                    if ext is not None else None
                if ext is None or exports_payload is not None:
                    # In project mode a file-level hit must also supply
                    # the module's exports (importers need them without a
                    # re-parse); a missing exports entry re-opens the file.
                    results[index] = result_from_payload(payload, filename)
                    if exports_out is not None:
                        exports_out[index] = exports_payload["exports"] \
                            if exports_payload is not None else None
                    _REGISTRY.inc("cache.file_hits")
                    stats.file_hits += 1
                    continue
        active.append(_FileState(index, filename, source, pipeline,
                                 externals=ext,
                                 imports_resolved=ext is not None))

    parse_failures = sum(1 for state in active if state.parsed is None)
    _REGISTRY.inc("batch.files", len(items))
    if parse_failures:
        _REGISTRY.inc("batch.parse_failures", parse_failures)
    stats.files += len(items)
    stats.parse_failures += parse_failures

    #: In-batch memo: identical units (same key) check at most once even
    #: without a persistent cache.
    memo: Dict[str, dict] = {}

    def lookup(key: str) -> Optional[dict]:
        traced = _TRACER.enabled
        if traced:
            _TRACER.begin("cache.lookup")
        try:
            if cache is not None:
                payload = cache.lookup(key)
                if payload is None:
                    _REGISTRY.inc("cache.unit_misses")
                    if stats is not None:
                        stats.cache_misses += 1
                return payload
            return memo.get(key)
        finally:
            if traced:
                _TRACER.end("cache.lookup")

    def record(key: str, payload: dict) -> None:
        if cache is not None:
            cache.store(key, payload)  # identical payloads store free
        memo[key] = payload

    if jobs == 1:
        for state in active:
            if state.plan is None:
                continue
            resolver = _SchemeResolver(pipeline, state.plan,
                                       state.scheme_srcs, state.schemes)
            for unit in state.units:
                key = unit_key(unit.source, state.dep_items(unit), options,
                               fingerprint)
                payload = lookup(key)
                if payload is not None:
                    state.resolve(unit, payload)
                    if stats is not None:
                        stats.note(state.filename, unit, None, "hit")
                    continue
                payload, outcome = _compute_unit_payload(
                    pipeline, state.plan, unit.uid, resolver)
                record(key, payload)
                state.resolve(unit, payload, outcome)
                if stats is not None:
                    stats.note(state.filename, unit, outcome.seconds,
                               "checked")
    else:
        _check_units_parallel(active, options, jobs, lookup, record, stats,
                              pipeline, session, fingerprint)

    for state in active:
        result = state.assemble()
        results[state.index] = result
        exports = state.exports() if state.imports_resolved else None
        if exports_out is not None and state.imports_resolved:
            exports_out[state.index] = exports
        if cache is not None:
            # File-level short-circuit entry for the next unchanged run.
            # The filename is normalised out (re-stamped on load), so
            # identical sources share one entry regardless of name.
            payload = result_to_payload(result)
            payload["filename"] = ""
            cache.store_file(file_keys[state.index], payload)
            if state.imports_resolved:
                cache.store_exports(file_keys[state.index], exports)

    if cache is not None:
        cache.save()
    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]


def _check_units_parallel(active: List[_FileState], options: DriverOptions,
                          jobs: int, lookup, record,
                          stats: Optional[CheckStats],
                          pipeline: Pipeline,
                          session: Session,
                          fingerprint: Optional[str] = None) -> None:
    """Resolve pending units across the session's persistent worker pool.

    Per file, cache-resolvable units are answered in dependency order in
    the main process (a hit exports its scheme rendering, which may make
    the *next* unit's key resolvable — the early-cutoff cascade); the
    first unresolvable unit and everything after it become one unit job.
    Jobs are deduplicated (identical sources check once) and sharded
    contiguously across the pool owned by ``session`` — reused from the
    previous batch when large enough, so spawn cost is paid at most once
    per session.  The serial cutoff (:func:`_effective_jobs`) keeps tiny
    batches and 1-CPU hosts on the in-process path, and restricted
    environments (no fork, no /dev/shm) degrade to it rather than
    failing.
    """
    import concurrent.futures

    #: (state, pending uids) per file that still has work.
    unit_jobs: List[Tuple[_FileState, List[int]]] = []
    for state in active:
        if state.plan is None:
            continue
        pending: List[int] = []
        pending_uids: set = set()
        for unit in state.units:
            blocked = any(state.plan.defining_unit[dep] in pending_uids
                          for dep in unit.deps)
            if not blocked:
                key = unit_key(unit.source, state.dep_items(unit), options,
                               fingerprint)
                payload = lookup(key)
                if payload is not None:
                    state.resolve(unit, payload)
                    if stats is not None:
                        stats.note(state.filename, unit, None, "hit")
                    continue
            pending.append(unit.uid)
            pending_uids.add(unit.uid)
        if pending:
            unit_jobs.append((state, pending))
    if not unit_jobs:
        return

    # Deduplicate identical jobs (same source, same pending units, same
    # dependency schemes): duplicate corpora check once.
    signature_of: Dict[Tuple, int] = {}
    unique: List[Tuple[_FileState, List[int]]] = []
    duplicate_of: List[int] = []
    for state, pending in unit_jobs:
        signature = (state.source, tuple(pending),
                     tuple(sorted(state.scheme_srcs.items())))
        position = signature_of.get(signature)
        if position is None:
            signature_of[signature] = len(unique)
            duplicate_of.append(len(unique))
            unique.append((state, pending))
        else:
            duplicate_of.append(position)

    shipped: List[_UnitJob] = [
        (position, state.filename, state.source, pending,
         list(state.scheme_srcs.items()))
        for position, (state, pending) in enumerate(unique)]

    computed: List[Optional[List[Tuple[int, dict]]]] = [None] * len(unique)

    def compute_serially() -> None:
        for position, (state, pending) in enumerate(unique):
            if computed[position] is not None:
                continue
            resolver = _SchemeResolver(pipeline, state.plan,
                                       dict(state.scheme_srcs),
                                       dict(state.schemes))
            computed[position] = _check_pending_units(
                pipeline, state.plan, pending, resolver)

    pending_units = sum(len(pending) for _, pending in unique)
    effective = _effective_jobs(jobs, pending_units, len(unique))
    if effective <= 1:
        session.pool_stats["serial_batches"] += 1
        _REGISTRY.inc("pool.serial_batches")
        compute_serially()
    else:
        # Each shard gets its own synthetic tid row: the dispatch windows
        # overlap each other by design, and separate rows keep the B/E
        # stack discipline intact per (pid, tid).  Worker spans come back
        # in the result payload and are rebased onto this timeline under
        # the worker's own pid, temporally inside their shard window.
        traced = _TRACER.enabled
        begun: List[int] = []
        ended = 0
        try:
            executor = session.acquire_pool(effective, options)
            shards = _shard(shipped, min(effective, len(shipped)))
            futures = []
            for shard_index, shard in enumerate(shards):
                if traced:
                    _TRACER.begin("pool.shard",
                                  tid=SHARD_TID_BASE + shard_index,
                                  shard=shard_index, files=len(shard))
                    begun.append(shard_index)
                futures.append(executor.submit(_worker_check_units, shard))
            for shard_index, future in enumerate(futures):
                shard_results, trace_payload = future.result()
                for position, payloads in shard_results:
                    computed[position] = payloads
                if traced:
                    _TRACER.merge_worker(trace_payload)
                    _TRACER.end("pool.shard",
                                tid=SHARD_TID_BASE + shard_index)
                    ended += 1
            session.pool_stats["parallel_batches"] += 1
            _REGISTRY.inc("pool.parallel_batches")
        except (OSError, PermissionError,
                concurrent.futures.process.BrokenProcessPool):
            # A broken/unspawnable pool is dropped (the next batch may
            # retry); this batch completes in-process.
            if traced:
                for shard_index in begun[ended:]:
                    _TRACER.end("pool.shard",
                                tid=SHARD_TID_BASE + shard_index)
            session.discard_pool()
            session.pool_stats["serial_batches"] += 1
            _REGISTRY.inc("pool.serial_batches")
            compute_serially()

    for job_index, (state, pending) in enumerate(unit_jobs):
        payloads = computed[duplicate_of[job_index]]
        assert payloads is not None
        is_duplicate = state is not unique[duplicate_of[job_index]][0]
        for uid, payload in payloads:
            unit = state.plan.units[uid]
            key = unit_key(unit.source, state.dep_items(unit), options,
                           fingerprint)
            if not is_duplicate:
                record(key, payload)
            state.resolve(unit, payload)
            if stats is not None:
                stats.note(state.filename, unit, None,
                           "skipped" if is_duplicate else "checked")
