"""Sharded parallel batch checking with an incremental source-hash cache.

PR 2 made programs *data* (``.lev`` corpora through
:meth:`repro.driver.Session.check_many`); this module makes checking them
scale the way the batch-verification frameworks in the related work do:
independent program units fanned out across workers, with verification
results cached so unchanged inputs are never re-checked.

Three layers:

* **Payloads** — :func:`result_to_payload` / :func:`result_from_payload`
  convert a :class:`~repro.driver.session.CheckResult` to and from a slim,
  JSON-able dict (rendered schemes, diagnostics with spans, per-binding
  status).  Payloads are the wire format between worker processes *and* the
  on-disk cache format, so a cache hit and a worker round-trip produce the
  same bytes.  Payload results carry ``scheme=None``/``parsed=None``/
  ``env=None`` — everything else is preserved exactly.

* **The cache** — :class:`ResultCache`, a single JSON file mapping cache
  keys to payloads.  The key is the SHA-256 of the *source text*,
  namespaced by :data:`CACHE_SCHEMA` and a fingerprint of the
  :class:`~repro.driver.session.DriverOptions` (a result rendered with
  ``--explicit-reps`` must never satisfy a default-display lookup).  The
  filename deliberately stays out of the key: renaming a file re-uses its
  cached result, re-stamped with the new name.

* **The shards** — :func:`check_many_sharded` splits the un-cached
  ``(filename, source)`` pairs into contiguous shards, one per worker of a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker builds the
  prelude once (:func:`_worker_init` creates a warm
  :class:`~repro.driver.session.Session` per process) and checks its whole
  shard in one round-trip.  Results are merged back **in input order**
  regardless of which worker finished first, and a pipeline failure on one
  binding stays a diagnostic in that program's result — shards cannot
  poison each other because they share nothing but the prelude.

Full (non-slim) results still cross process boundaries correctly when
needed: the hash-consed type/kind/representation nodes define
``__reduce__``, so pickled schemes re-intern on the receiving side.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..frontend.lexer import Span
from .session import (
    BindingSummary,
    CheckResult,
    Diagnostic,
    DriverOptions,
    Session,
)

__all__ = [
    "CACHE_SCHEMA",
    "ResultCache",
    "cache_key",
    "check_many_sharded",
    "options_fingerprint",
    "payload_bytes",
    "result_from_payload",
    "result_to_payload",
]

#: Bump when the payload layout or the pipeline's observable output changes
#: incompatibly; old cache entries then miss instead of deserialising junk.
CACHE_SCHEMA = 1


# ---------------------------------------------------------------------------
# Payloads (the wire + cache format)
# ---------------------------------------------------------------------------


def _span_to_list(span: Optional[Span]) -> Optional[List[int]]:
    if span is None:
        return None
    return [span.line, span.column, span.end_line, span.end_column]


def _span_from_list(data: Optional[Sequence[int]]) -> Optional[Span]:
    if data is None:
        return None
    return Span(*data)


def result_to_payload(result: CheckResult) -> dict:
    """The slim, JSON-able view of a check result.

    Drops the heavyweight fields (``scheme`` objects, the parsed module,
    the typing environment) and keeps what batch consumers need: rendered
    schemes, per-binding status, and diagnostics with spans.
    """
    return {
        "filename": result.filename,
        "ok": result.ok,
        "bindings": [
            {
                "name": binding.name,
                "rendered": binding.rendered,
                "ok": binding.ok,
                "defaulted_rep_vars": list(binding.defaulted_rep_vars),
                "span": _span_to_list(binding.span),
            }
            for binding in result.bindings
        ],
        "diagnostics": [
            {
                "severity": diagnostic.severity,
                "stage": diagnostic.stage,
                "message": diagnostic.message,
                "span": _span_to_list(diagnostic.span),
                "binding": diagnostic.binding,
            }
            for diagnostic in result.diagnostics
        ],
    }


def result_from_payload(payload: dict,
                        filename: Optional[str] = None) -> CheckResult:
    """Rebuild a (slim) :class:`CheckResult` from a payload dict.

    ``filename`` re-stamps the result — cache hits keyed purely by source
    text use it to report the name the caller actually passed.
    """
    name = filename if filename is not None else payload["filename"]
    result = CheckResult(name, ok=payload["ok"])
    for binding in payload["bindings"]:
        result.bindings.append(BindingSummary(
            binding["name"], None, binding["rendered"], binding["ok"],
            tuple(binding["defaulted_rep_vars"]),
            _span_from_list(binding["span"])))
    for diagnostic in payload["diagnostics"]:
        result.diagnostics.append(Diagnostic(
            diagnostic["severity"], diagnostic["stage"],
            diagnostic["message"], name,
            _span_from_list(diagnostic["span"]), diagnostic["binding"]))
    return result


def payload_bytes(payload: dict) -> bytes:
    """The canonical byte encoding of a payload (for identity tests)."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _payload_valid(payload: dict) -> bool:
    """Can ``payload`` actually be rebuilt into a CheckResult?"""
    try:
        result_from_payload(payload)
    except (KeyError, TypeError, IndexError):
        return False
    return True


# ---------------------------------------------------------------------------
# The incremental cache
# ---------------------------------------------------------------------------


#: DriverOptions fields that cannot affect ``Pipeline.check`` output.
#: Everything NOT listed here invalidates the cache when it changes, so a
#: future option is cache-safe by default and must be excluded explicitly.
_CHECK_IRRELEVANT_OPTIONS = frozenset({
    "max_machine_steps",  # only consulted by the run/compile bridge
})


def options_fingerprint(options: DriverOptions) -> str:
    """A stable digest of every option that can change a check's output."""
    state = json.dumps(
        {name: value for name, value in dataclasses.asdict(options).items()
         if name not in _CHECK_IRRELEVANT_OPTIONS},
        sort_keys=True)
    return hashlib.sha256(state.encode("utf-8")).hexdigest()[:16]


def cache_key(source: str, options: DriverOptions) -> str:
    """SHA-256 of the source text, namespaced by schema + options.

    The filename is deliberately excluded — see the module docstring.
    """
    hasher = hashlib.sha256()
    hasher.update(f"repro-check:{CACHE_SCHEMA}:"
                  f"{options_fingerprint(options)}:".encode("utf-8"))
    hasher.update(source.encode("utf-8"))
    return hasher.hexdigest()


class ResultCache:
    """A file-backed map from cache keys to result payloads.

    The on-disk format is one JSON document::

        {"schema": 1, "entries": {"<sha256>": {...payload...}, ...}}

    Entries from an older :data:`CACHE_SCHEMA` are discarded wholesale on
    load.  ``hits``/``misses``/``stores`` counters make cache behaviour
    observable to benchmarks and tests.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.entries: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._dirty = False
        if path is not None and os.path.exists(path):
            self._load(path)

    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return  # an unreadable/corrupt cache is just a cold cache
        if document.get("schema") != CACHE_SCHEMA:
            return
        entries = document.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    def lookup(self, source: str, options: DriverOptions) -> Optional[dict]:
        payload = self.entries.get(cache_key(source, options))
        if payload is not None and not _payload_valid(payload):
            # A malformed entry (hand-edited file, truncated write) is a
            # miss, not an error; the re-check overwrites it.  Validating
            # here keeps the hit/miss counters truthful.
            payload = None
        if payload is None:
            self.misses += 1
        else:
            self.hits += 1
        return payload

    def store(self, source: str, options: DriverOptions,
              payload: dict) -> None:
        self.entries[cache_key(source, options)] = payload
        self.stores += 1
        self._dirty = True

    def save(self) -> None:
        """Write the cache atomically (write-to-temp + rename)."""
        if self.path is None or not self._dirty:
            return
        document = {"schema": CACHE_SCHEMA, "entries": self.entries}
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".repro-cache-")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self._dirty = False


# ---------------------------------------------------------------------------
# Worker processes
# ---------------------------------------------------------------------------

#: The per-process warm session (prelude built once per worker).
_WORKER_SESSION: Optional[Session] = None


def _worker_init(options_state: dict) -> None:
    global _WORKER_SESSION
    _WORKER_SESSION = Session(DriverOptions(**options_state))


def _worker_check_shard(shard: List[Tuple[int, str, str]]
                        ) -> List[Tuple[int, dict]]:
    """Check one shard of ``(index, filename, source)`` jobs.

    Returns payload dicts (not CheckResults): the slim form keeps the IPC
    pickle small and makes worker output byte-identical to cache output.
    """
    session = _WORKER_SESSION
    assert session is not None, "worker used without _worker_init"
    return [(index, result_to_payload(session.check(source, filename)))
            for index, filename, source in shard]


def _shard(pending: List[Tuple[int, str, str]],
           jobs: int) -> List[List[Tuple[int, str, str]]]:
    """Contiguous shards, one per worker (a single IPC round-trip each)."""
    size, remainder = divmod(len(pending), jobs)
    shards = []
    start = 0
    for worker in range(jobs):
        stop = start + size + (1 if worker < remainder else 0)
        if stop > start:
            shards.append(pending[start:stop])
        start = stop
    return shards


def _check_serial(pending: List[Tuple[int, str, str]],
                  options: DriverOptions,
                  session: Optional[Session] = None
                  ) -> List[Tuple[int, dict]]:
    if session is None:
        session = Session(options)
    return [(index, result_to_payload(session.check(source, filename)))
            for index, filename, source in pending]


def _check_parallel(pending: List[Tuple[int, str, str]],
                    options: DriverOptions,
                    jobs: int) -> List[Tuple[int, dict]]:
    import concurrent.futures

    options_state = dataclasses.asdict(options)
    try:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs, initializer=_worker_init,
                initargs=(options_state,)) as executor:
            futures = [executor.submit(_worker_check_shard, shard)
                       for shard in _shard(pending, jobs)]
            out: List[Tuple[int, dict]] = []
            for future in futures:
                out.extend(future.result())
            return out
    except (OSError, PermissionError,
            concurrent.futures.process.BrokenProcessPool):
        # Restricted environments (no /dev/shm, no fork) degrade to the
        # serial path rather than failing the whole batch.
        return _check_serial(pending, options)


# ---------------------------------------------------------------------------
# The public batch entry point
# ---------------------------------------------------------------------------


def check_many_sharded(sources: Iterable[Tuple[str, str]],
                       options: Optional[DriverOptions] = None,
                       jobs: int = 1,
                       cache: Union[ResultCache, str, None] = None,
                       session: Optional[Session] = None,
                       ) -> List[CheckResult]:
    """Check many ``(filename, source)`` programs, sharded and cached.

    * ``jobs > 1`` fans the un-cached programs out across that many worker
      processes; ``jobs == 1`` checks them in-process (still through the
      payload round-trip, so results are identical either way).
    * ``cache`` (a path or a :class:`ResultCache`) skips every program
      whose source hash is already recorded and persists new results.

    Results always come back **in input order**, as slim payload-backed
    :class:`CheckResult` values (``scheme``/``parsed``/``env`` are None).
    """
    options = options or DriverOptions()
    jobs = max(1, int(jobs))
    items = [(index, filename, source)
             for index, (filename, source) in enumerate(sources)]
    results: List[Optional[CheckResult]] = [None] * len(items)

    if isinstance(cache, str):
        cache = ResultCache(cache)

    pending: List[Tuple[int, str, str]] = []
    if cache is not None:
        for index, filename, source in items:
            payload = cache.lookup(source, options)  # validates the entry
            if payload is None:
                pending.append((index, filename, source))
            else:
                results[index] = result_from_payload(payload, filename)
    else:
        pending = items

    if pending:
        # Results are filename-independent (the payload is re-stamped per
        # caller), so duplicate source texts in one batch check only once.
        representative: Dict[str, int] = {}
        unique: List[Tuple[int, str, str]] = []
        for index, filename, source in pending:
            if source not in representative:
                representative[source] = index
                unique.append((index, filename, source))
        if jobs == 1 or len(unique) == 1:
            computed = _check_serial(unique, options, session)
        else:
            computed = _check_parallel(unique, options,
                                       min(jobs, len(unique)))
        by_index = {index: payload for index, payload in computed}
        for index, filename, source in pending:
            payload = by_index[representative[source]]
            if cache is not None and representative[source] == index:
                cache.store(source, options, payload)
            results[index] = result_from_payload(payload, filename)

    if cache is not None:
        cache.save()
    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]
