"""Binding-level dependency graphs: the driver's compilation units.

The paper's checking discipline is inherently per-binding — each top-level
binding is inferred, levity-checked and Rep-defaulted against the schemes
of the bindings it *uses* — so the driver's unit of work is not the module
but the **binding group**:

* :func:`decl_references` computes which module-level names a binding's
  right-hand side mentions (its free variables minus its parameters);
* :func:`build_plan` resolves those references (**last definition wins**,
  consistent with :meth:`repro.surface.ast.Module.bindings`), builds the
  binding dependency graph over the module's ``FunBind`` declarations, and
  condenses it into strongly connected components with an iterative
  Tarjan pass;
* the resulting :class:`ModulePlan` lists :class:`CheckUnit` values in
  **dependency order** (every unit appears after all the units it depends
  on), so the pipeline can thread a typing environment unit by unit.  An
  SCC with more than one member is a mutually recursive group and is
  checked as one unit.

Each unit also knows its **source segments** — the exact line slices of
its declarations (type signatures included).  Two consumers rely on them:

* the incremental cache (:mod:`repro.driver.batch`) keys a unit by the
  hash of its source text plus the schemes of its direct dependencies, so
  editing one binding invalidates only that unit and (transitively) the
  units whose dependency schemes actually change;
* cached diagnostics store spans *relative to their segment*, so a unit
  that merely moved (because an earlier binding grew or shrank) can be
  answered from the cache with correctly re-based line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..frontend.lexer import Span
from ..frontend.parser import ParsedModule
from ..surface.ast import FunBind, ImportDecl, ModuleHeader, TypeSig

__all__ = [
    "CheckUnit",
    "ModulePlan",
    "Segment",
    "build_plan",
    "decl_references",
]


@dataclass(frozen=True)
class Segment:
    """One declaration's slice of the module source.

    ``start_line``/``end_line`` are 1-based and inclusive; ``text`` is the
    corresponding lines of the source, newline-terminated.
    """

    decl_index: int
    start_line: int
    end_line: int
    text: str

    def contains_line(self, line: int) -> bool:
        return self.start_line <= line <= self.end_line


@dataclass(frozen=True)
class CheckUnit:
    """One compilation unit: a binding (or mutually recursive group).

    ``uid`` is the unit's position in :attr:`ModulePlan.units` — a
    dependency-ordered (topological) index.  ``names`` are the member
    binding names in declaration order; for the common case of a single
    non-recursive binding there is exactly one.  ``deps`` are the *names*
    of the module bindings this unit directly uses (sorted, excluding the
    unit's own members).
    """

    uid: int
    names: Tuple[str, ...]
    member_decls: Tuple[int, ...]      # decl indices of the member FunBinds
    segments: Tuple[Segment, ...]      # sigs + binds, declaration order
    deps: Tuple[str, ...]
    source: str                        # concatenated segment texts
    #: References bound by no declaration in this module (sorted).  In
    #: project mode these are the candidates for resolution against the
    #: exports of imported modules; unresolved leftovers surface as the
    #: usual not-in-scope diagnostics.
    foreign: Tuple[str, ...] = ()

    @property
    def is_group(self) -> bool:
        """More than one member: a mutually recursive binding group."""
        return len(self.member_decls) > 1

    def segment_of_line(self, line: int) -> Optional[int]:
        """Index (into ``segments``) of the segment containing ``line``."""
        for index, segment in enumerate(self.segments):
            if segment.contains_line(line):
                return index
        return None

    def relativize_span(self, span: Span) -> Tuple[int, List[int]]:
        """Express ``span`` relative to the segment that contains it.

        Returns ``(segment_index, [dline, col, dend_line, end_col])`` where
        the line fields are offsets from the segment's first line.  A span
        outside every segment (defensive case) is returned absolute with
        segment index ``-1``.
        """
        index = self.segment_of_line(span.line)
        if index is None:
            return -1, [span.line, span.column, span.end_line,
                        span.end_column]
        base = self.segments[index].start_line
        return index, [span.line - base, span.column,
                       span.end_line - base, span.end_column]

    def absolutize_span(self, segment_index: int,
                        fields: Sequence[int]) -> Span:
        """Inverse of :meth:`relativize_span` against *this* unit's layout."""
        dline, column, dend, end_column = fields
        if segment_index < 0 or segment_index >= len(self.segments):
            return Span(dline, column, dend, end_column)
        base = self.segments[segment_index].start_line
        return Span(base + dline, column, base + dend, end_column)


@dataclass
class ModulePlan:
    """A parsed module broken into dependency-ordered check units."""

    parsed: ParsedModule
    units: List[CheckUnit]
    #: FunBind decl index -> uid of the unit containing it.
    unit_of_decl: Dict[int, int]
    #: name -> decl index of its *defining* (last) FunBind.
    defining_decl: Dict[str, int]
    #: name -> uid of the unit whose member is the defining decl.
    defining_unit: Dict[str, int]
    #: decl indices of TypeSig declarations without a matching binding.
    orphan_sigs: List[int]
    #: The module's name: the ``module M where`` header's name when the
    #: file has one, else the parser's default ("Main").
    module_name: str = "Main"
    #: Span of the header declaration, if present.
    header_span: Optional[Span] = None
    #: ``import`` declarations in declaration order (name, span), duplicates
    #: kept so diagnostics can point at the exact occurrence.
    imports: Tuple[Tuple[str, Span], ...] = ()

    @property
    def has_header(self) -> bool:
        return self.header_span is not None

    @property
    def import_names(self) -> Tuple[str, ...]:
        """Imported module names, declaration order, de-duplicated."""
        seen: Dict[str, None] = {}
        for name, _span in self.imports:
            seen.setdefault(name, None)
        return tuple(seen)

    @property
    def defined_names(self) -> FrozenSet[str]:
        return frozenset(self.defining_decl)


def decl_references(bind: FunBind) -> FrozenSet[str]:
    """Names a binding's right-hand side references (minus its parameters).

    The binding's own name *is* included when it recurses — the planner
    turns that into a self-edge, which Tarjan keeps inside the singleton
    SCC.
    """
    return bind.rhs.free_vars() - frozenset(bind.params)


def _segment(source_lines: List[str], decl_index: int, span: Span) -> Segment:
    start = max(1, span.line)
    end = min(len(source_lines), max(span.end_line, start))
    text = "\n".join(source_lines[start - 1:end]) + "\n"
    return Segment(decl_index, start, end, text)


def _tarjan(order: List[int],
            edges: Dict[int, List[int]]) -> List[List[int]]:
    """Iterative Tarjan SCC.  Returns SCCs in dependency order: every SCC
    appears after the SCCs it depends on (reverse-topological completion
    order of the condensation)."""
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = 0

    for root in order:
        if root in index_of:
            continue
        # Each work item is (node, iterator-position into its edge list).
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, edge_pos = work[-1]
            if edge_pos == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            successors = edges.get(node, [])
            while edge_pos < len(successors):
                succ = successors[edge_pos]
                edge_pos += 1
                if succ not in index_of:
                    work[-1] = (node, edge_pos)
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                component.sort()
                sccs.append(component)
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def build_plan(parsed: ParsedModule) -> ModulePlan:
    """Break a parsed module into dependency-ordered check units."""
    module = parsed.module
    source_lines = parsed.source.split("\n")
    decl_span = dict(enumerate(parsed.decl_span_list))

    fun_decls: List[int] = []
    sig_decls_of: Dict[str, List[int]] = {}
    bound_names: Dict[str, int] = {}
    header_span: Optional[Span] = None
    imports: List[Tuple[str, Span]] = []
    for index, decl in enumerate(module.decls):
        if isinstance(decl, FunBind):
            fun_decls.append(index)
            bound_names[decl.name] = index       # last definition wins
        elif isinstance(decl, TypeSig):
            sig_decls_of.setdefault(decl.name, []).append(index)
        elif isinstance(decl, ModuleHeader):
            header_span = decl_span.get(index)
        elif isinstance(decl, ImportDecl):
            span = decl_span.get(index)
            if span is not None:
                imports.append((decl.name, span))

    orphan_sigs = [index
                   for name, indices in sorted(sig_decls_of.items())
                   for index in indices
                   if name not in bound_names]
    orphan_sigs.sort()

    # Edges between FunBind decl indices; references resolve to the
    # *defining* declaration of the referenced name.  The incremental
    # parser memoises per-decl references; fall back to the AST walk.
    memoised_refs = parsed.decl_refs
    edges: Dict[int, List[int]] = {}
    refs_of: Dict[int, FrozenSet[str]] = {}
    for index in fun_decls:
        bind = module.decls[index]
        refs = None
        if memoised_refs is not None and index < len(memoised_refs):
            refs = memoised_refs[index]
        if refs is None:
            refs = decl_references(bind)
        refs_of[index] = refs
        targets = sorted({bound_names[name] for name in refs
                          if name in bound_names})
        edges[index] = targets

    sccs = _tarjan(fun_decls, edges)

    units: List[CheckUnit] = []
    unit_of_decl: Dict[int, int] = {}
    defining_unit: Dict[str, int] = {}
    for uid, members in enumerate(sccs):
        member_names: List[str] = []
        segment_decls: List[int] = []
        deps: set = set()
        foreign: set = set()
        for index in members:
            bind = module.decls[index]
            member_names.append(bind.name)
            segment_decls.extend(sig_decls_of.get(bind.name, []))
            segment_decls.append(index)
            for name in refs_of[index]:
                if name in bound_names:
                    if bound_names[name] not in members:
                        deps.add(name)
                else:
                    foreign.add(name)
        segment_decls = sorted(set(segment_decls))
        segments = tuple(
            _segment(source_lines, decl_index, decl_span[decl_index])
            for decl_index in segment_decls
            if decl_span.get(decl_index) is not None)
        unit = CheckUnit(
            uid=uid,
            names=tuple(member_names),
            member_decls=tuple(members),
            segments=segments,
            deps=tuple(sorted(deps)),
            source="".join(segment.text for segment in segments),
            foreign=tuple(sorted(foreign)))
        units.append(unit)
        for index in members:
            unit_of_decl[index] = uid
            bind = module.decls[index]
            if bound_names[bind.name] == index:
                defining_unit[bind.name] = uid

    return ModulePlan(parsed=parsed, units=units, unit_of_decl=unit_of_decl,
                      defining_decl=bound_names, defining_unit=defining_unit,
                      orphan_sigs=orphan_sigs,
                      module_name=module.name, header_span=header_span,
                      imports=tuple(imports))
