"""Exception hierarchy shared across the repro packages.

The library distinguishes three broad families of failures:

* :class:`LevityError` and its subclasses — violations of the levity
  polymorphism discipline of Section 5.1 of the paper (binding or passing a
  value whose runtime representation is not fixed).
* :class:`TypeCheckError` — ordinary type or kind errors in either the core
  calculus L, the surface language, or the sub-kinding baseline.
* :class:`EvaluationError` / :class:`MachineError` — runtime failures of the
  L small-step semantics, the M machine, or the cost-model runtime.

Keeping these in one module lets every sub-package raise the same exception
types, so tests and downstream users can catch them uniformly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library.

    ``span`` is an optional source location (a
    :class:`repro.frontend.lexer.Span`) attached by layers that know where
    the offending syntax came from — the inference engine sets it to the
    span of the offending *sub-expression* when one is on record, so the
    driver's diagnostics can point at the identifier or argument rather
    than the whole binding.
    """

    #: Optional source span (set post-construction by span-aware callers).
    span = None


class TypeCheckError(ReproError):
    """A type or kind error (ill-typed term, ill-kinded type, and so on)."""


class KindError(TypeCheckError):
    """A kind mismatch or an ill-formed kind."""


class LevityError(TypeCheckError):
    """Violation of the levity-polymorphism restrictions (Section 5.1)."""


class LevityPolymorphicBinder(LevityError):
    """A bound term variable has a levity-polymorphic type.

    Restriction 1 of Section 5.1: every bound term variable must have a type
    whose kind is fixed and free of representation variables.
    """


class LevityPolymorphicArgument(LevityError):
    """A function argument has a levity-polymorphic type.

    Restriction 2 of Section 5.1: arguments are passed in registers, so the
    register class (and width) must be known at compile time.
    """


class UnificationError(TypeCheckError):
    """Two types, kinds or representations could not be unified."""


class OccursCheckError(UnificationError):
    """A unification variable occurs inside the type it would be bound to."""


class ScopeError(TypeCheckError):
    """An out-of-scope variable, type variable or representation variable."""


class ParseError(ReproError):
    """A lexical or syntactic error in surface-language source text."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class EvaluationError(ReproError):
    """The L small-step semantics or the cost-model runtime got stuck."""


class MachineError(ReproError):
    """The M machine reached a state with no applicable transition rule."""


class CompilationError(ReproError):
    """The L-to-M compiler could not produce code.

    The Compilation theorem (Section 6.3) guarantees this never happens for
    well-typed L programs; encountering it signals an ill-typed input or a
    bug.
    """


class InstanceResolutionError(TypeCheckError):
    """No type-class instance (dictionary) could be found for a constraint."""


class PatternError(EvaluationError):
    """A case expression failed to match its scrutinee."""
