"""The shared ``Int#`` primop signature table and delta rules.

Both the L small-step semantics (:mod:`repro.lang_l.semantics`) and the
M machine (:mod:`repro.lang_m.machine`) reduce saturated primop
applications over unboxed integer literals.  The two layers must agree
*exactly* — the translation-validation layer (:mod:`repro.validate`)
cross-checks them program by program — so the delta function lives here,
in :mod:`repro.core`, and both import it.

Semantics (mirroring GHC's ``Int#`` primops, restricted to the ones the
L fragment carries):

* ``+# -# *#`` — exact integer arithmetic (Python ints, no wraparound);
* ``quotInt# remInt#`` — truncate-towards-zero division; **division by
  zero is bottom** (``delta`` returns ``None``; L steps to ``error``,
  the machine aborts, the evaluator raises);
* ``negateInt#`` — unary negation;
* ``<# ># <=# >=# ==# /=#`` — comparisons returning ``1#``/``0#``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

#: Arity of every primop the L fragment supports, keyed by surface name.
INT_PRIMOPS: Dict[str, int] = {
    "+#": 2,
    "-#": 2,
    "*#": 2,
    "quotInt#": 2,
    "remInt#": 2,
    "negateInt#": 1,
    "<#": 2,
    ">#": 2,
    "<=#": 2,
    ">=#": 2,
    "==#": 2,
    "/=#": 2,
}


def primop_delta(name: str, arguments: Sequence[int]) -> Optional[int]:
    """The delta rule ``δ(op, n1 … nk)`` on unboxed integer literals.

    Returns ``None`` exactly when the application is bottom — i.e. for
    ``quotInt#``/``remInt#`` with a zero divisor.  Raises ``KeyError``
    for unknown primops and ``ValueError`` on an arity mismatch, both of
    which indicate an ill-typed term (the L type checker and the machine
    reject them before reduction).
    """
    arity = INT_PRIMOPS[name]
    if len(arguments) != arity:
        raise ValueError(f"primop {name!r} expects {arity} arguments, "
                         f"got {len(arguments)}")
    if name == "+#":
        return arguments[0] + arguments[1]
    if name == "-#":
        return arguments[0] - arguments[1]
    if name == "*#":
        return arguments[0] * arguments[1]
    if name == "negateInt#":
        return -arguments[0]
    if name in ("quotInt#", "remInt#"):
        a, b = arguments
        if b == 0:
            return None
        quot = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quot = -quot
        if name == "quotInt#":
            return quot
        return a - b * quot
    comparisons = {
        "<#": arguments[0] < arguments[1],
        ">#": arguments[0] > arguments[1],
        "<=#": arguments[0] <= arguments[1],
        ">=#": arguments[0] >= arguments[1],
        "==#": arguments[0] == arguments[1],
        "/=#": arguments[0] != arguments[1],
    }
    return 1 if comparisons[name] else 0
