"""Runtime representations: the ``Rep`` algebra of Section 4.1.

The paper replaces GHC's old sub-kinding story with a single primitive
type-level constant ``TYPE :: Rep -> Type`` where ``Rep`` is an ordinary
(promoted) algebraic data type describing the runtime representation of the
values of a type::

    data Rep = LiftedRep | UnliftedRep | IntRep | WordRep | Int64Rep
             | Word64Rep | AddrRep | CharRep | FloatRep | DoubleRep
             | TupleRep [Rep] | SumRep [Rep] | ...

This module implements that algebra.  Each representation knows:

* whether it is **boxed** (a pointer into the heap) or **unboxed**;
* whether it is **lifted** (may be a thunk / contain bottom) or **unlifted**;
* its **register shape** — the sequence of machine register classes used to
  pass a value of that representation (Section 4.2: unboxed tuples occupy
  several registers; the nullary unboxed tuple occupies none at all);
* how to pretty-print itself.

Representation *variables* (:class:`RepVar`) are what levity polymorphism
abstracts over.  A representation is *concrete* (the paper's metavariable
``υ``) when no representation variable occurs inside it; only concrete
representations may appear in the kind of a binder or a function argument
(Section 5.1).

Performance notes (see ``docs/PERF.md``): representations are **hash-consed**
— constructing a structurally-equal ``Rep`` twice yields the *same* Python
object, so ``==`` usually short-circuits on identity and nodes can be used
as dictionary keys with a cached hash.  ``free_rep_vars`` and
``register_shape`` are computed once per node and memoised on the instance.
Instances are immutable by convention: never assign to their fields.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Dict, Iterable, List, Tuple

_EMPTY_NAMES: "frozenset[str]" = frozenset()


class RegisterClass(Enum):
    """Machine register classes used by the calling-convention model.

    The paper's formal language M distinguishes only pointer registers and
    integer registers (metavariables ``p`` and ``i``); the implementation in
    GHC additionally uses dedicated floating-point registers, which we model
    so that ``FloatRep``/``DoubleRep`` genuinely differ from ``IntRep`` in
    calling convention (Section 1's motivating example).
    """

    GC_POINTER = "gcptr"
    INTEGER = "int"
    FLOAT = "float"
    DOUBLE = "double"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegisterClass.{self.name}"


class Rep:
    """Abstract base class of runtime representations.

    Concrete subclasses are :class:`LiftedRep`, :class:`UnliftedRep`,
    :class:`IntRep`, :class:`WordRep`, :class:`FloatRep`, :class:`DoubleRep`,
    :class:`CharRep`, :class:`AddrRep`, :class:`TupleRep`, :class:`SumRep`
    and :class:`RepVar`.
    """

    __slots__ = ("_hash", "_free", "_shape")

    def _init_caches(self) -> None:
        self._hash = None
        self._free = None
        self._shape = None

    # -- classification -----------------------------------------------------

    def is_concrete(self) -> bool:
        """True when no representation variable occurs in this rep.

        Corresponds to the paper's concrete representations ``υ``.
        """
        return not self.free_rep_vars()

    def is_boxed(self) -> bool:
        """True when values of this representation are heap pointers."""
        raise NotImplementedError

    def is_lifted(self) -> bool:
        """True when values of this representation may be thunks (lazy)."""
        raise NotImplementedError

    def is_unboxed(self) -> bool:
        return self.is_concrete() and not self.is_boxed()

    def is_unlifted(self) -> bool:
        return self.is_concrete() and not self.is_lifted()

    # -- structure ----------------------------------------------------------

    def free_rep_vars(self) -> "frozenset[str]":
        """The set of representation-variable names occurring in this rep."""
        free = self._free
        if free is None:
            free = self._compute_free_rep_vars()
            self._free = free
        return free

    def _compute_free_rep_vars(self) -> "frozenset[str]":
        raise NotImplementedError

    def substitute(self, mapping: Dict[str, "Rep"]) -> "Rep":
        """Capture-avoiding substitution of representation variables."""
        raise NotImplementedError

    def zonk(self, lookup) -> "Rep":
        """Replace solved unification variables using ``lookup(name)``.

        ``lookup`` returns either a :class:`Rep` or ``None``; unsolved
        variables are left in place.  Mirrors GHC's *zonking* (Section 8.2).
        """
        return self.substitute({})

    # -- calling convention --------------------------------------------------

    def register_shape(self) -> Tuple[RegisterClass, ...]:
        """The sequence of registers a value of this rep occupies.

        Raises :class:`ValueError` for non-concrete representations: the
        whole point of the Section 5.1 restrictions is that code generation
        never needs the register shape of a levity-polymorphic value.
        """
        shape = self._shape
        if shape is None:
            shape = self._compute_register_shape()
            self._shape = shape
        return shape

    def _compute_register_shape(self) -> Tuple[RegisterClass, ...]:
        raise NotImplementedError

    def register_count(self) -> int:
        """Number of registers a value of this rep occupies."""
        return len(self.register_shape())

    def width_bytes(self) -> int:
        """Total width in bytes on a 64-bit machine (pointers are 8 bytes)."""
        widths = {
            RegisterClass.GC_POINTER: 8,
            RegisterClass.INTEGER: 8,
            RegisterClass.FLOAT: 4,
            RegisterClass.DOUBLE: 8,
        }
        return sum(widths[r] for r in self.register_shape())

    # -- hashing / equality ---------------------------------------------------

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._compute_hash()
            self._hash = h
        return h

    def _compute_hash(self) -> int:
        raise NotImplementedError

    # -- misc ---------------------------------------------------------------

    def __repr__(self) -> str:
        return self.pretty()

    def pretty(self) -> str:
        raise NotImplementedError


class _NullaryRep(Rep):
    """Shared implementation for representations with no sub-structure.

    Each subclass is a hash-consed singleton: ``LiftedRep() is LiftedRep()``.
    """

    __slots__ = ()

    _BOXED = False
    _LIFTED = False
    _PRETTY = "?"
    _SHAPE: Tuple[RegisterClass, ...] = ()

    def __new__(cls) -> "_NullaryRep":
        instance = cls.__dict__.get("_instance")
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            cls._instance = instance
        return instance

    def is_boxed(self) -> bool:
        return self._BOXED

    def is_lifted(self) -> bool:
        return self._LIFTED

    def _compute_free_rep_vars(self) -> "frozenset[str]":
        return _EMPTY_NAMES

    def substitute(self, mapping: Dict[str, Rep]) -> Rep:
        return self

    def zonk(self, lookup) -> Rep:
        return self

    def _compute_register_shape(self) -> Tuple[RegisterClass, ...]:
        return self._SHAPE

    def _compute_hash(self) -> int:
        return hash(type(self).__qualname__)

    def __eq__(self, other: object) -> bool:
        return self is other or type(self) is type(other)

    __hash__ = Rep.__hash__

    def pretty(self) -> str:
        return self._PRETTY


class LiftedRep(_NullaryRep):
    """Boxed, lifted values: ordinary Haskell data such as ``Int``, ``Bool``."""

    __slots__ = ()
    _BOXED = True
    _LIFTED = True
    _PRETTY = "LiftedRep"
    _SHAPE = (RegisterClass.GC_POINTER,)


class UnliftedRep(_NullaryRep):
    """Boxed but unlifted values such as ``ByteArray#`` or ``Array# a``."""

    __slots__ = ()
    _BOXED = True
    _LIFTED = False
    _PRETTY = "UnliftedRep"
    _SHAPE = (RegisterClass.GC_POINTER,)


class IntRep(_NullaryRep):
    """Unboxed machine integers (``Int#``)."""

    __slots__ = ()
    _PRETTY = "IntRep"
    _SHAPE = (RegisterClass.INTEGER,)


class WordRep(_NullaryRep):
    """Unboxed machine words (``Word#``)."""

    __slots__ = ()
    _PRETTY = "WordRep"
    _SHAPE = (RegisterClass.INTEGER,)


class CharRep(_NullaryRep):
    """Unboxed characters (``Char#``)."""

    __slots__ = ()
    _PRETTY = "CharRep"
    _SHAPE = (RegisterClass.INTEGER,)


class AddrRep(_NullaryRep):
    """Raw machine addresses (``Addr#``), not followed by the GC."""

    __slots__ = ()
    _PRETTY = "AddrRep"
    _SHAPE = (RegisterClass.INTEGER,)


class FloatRep(_NullaryRep):
    """Unboxed single-precision floats (``Float#``)."""

    __slots__ = ()
    _PRETTY = "FloatRep"
    _SHAPE = (RegisterClass.FLOAT,)


class DoubleRep(_NullaryRep):
    """Unboxed double-precision floats (``Double#``)."""

    __slots__ = ()
    _PRETTY = "DoubleRep"
    _SHAPE = (RegisterClass.DOUBLE,)


class TupleRep(Rep):
    """Unboxed tuples: a value spread over several registers (Section 4.2).

    ``TupleRep []`` is the representation of the nullary unboxed tuple
    ``(# #)``, which occupies no registers at all.
    """

    __slots__ = ("reps",)

    _intern: Dict[Tuple[Rep, ...], "TupleRep"] = {}

    def __new__(cls, reps: Iterable[Rep] = ()) -> "TupleRep":
        key = tuple(reps)
        instance = cls._intern.get(key)
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            instance.reps = key
            cls._intern[key] = instance
        return instance

    def __init__(self, reps: Iterable[Rep] = ()) -> None:
        # All state is set in __new__ (hash-consing); nothing to do here.
        pass

    def is_boxed(self) -> bool:
        return False

    def is_lifted(self) -> bool:
        return False

    def _compute_free_rep_vars(self) -> "frozenset[str]":
        out: "frozenset[str]" = _EMPTY_NAMES
        for rep in self.reps:
            out = out | rep.free_rep_vars()
        return out

    def substitute(self, mapping: Dict[str, Rep]) -> Rep:
        if not mapping or self.free_rep_vars().isdisjoint(mapping):
            return self
        return TupleRep(rep.substitute(mapping) for rep in self.reps)

    def zonk(self, lookup) -> Rep:
        if not self.free_rep_vars():
            return self
        return TupleRep(rep.zonk(lookup) for rep in self.reps)

    def _compute_register_shape(self) -> Tuple[RegisterClass, ...]:
        shape: List[RegisterClass] = []
        for rep in self.reps:
            shape.extend(rep.register_shape())
        return tuple(shape)

    def flatten(self) -> "TupleRep":
        """Flatten nested ``TupleRep`` structure.

        Section 4.2 observes that nesting of unboxed tuples is
        *computationally irrelevant*: ``(# Int, (# Bool, Double #) #)`` and
        ``(# (# Char, String #), Int #)`` have the same register shape even
        though their kinds differ.  The paper deliberately keeps the nested
        kinds distinct; this helper computes the flattened view used by the
        runtime and by the E10 ablation bench.
        """
        flat: List[Rep] = []
        for rep in self.reps:
            if isinstance(rep, TupleRep):
                flat.extend(rep.flatten().reps)
            else:
                flat.append(rep)
        return TupleRep(flat)

    def __reduce__(self):
        # Hash-consed nodes have a required-argument ``__new__``, which the
        # default pickling protocol cannot call; reconstruct through the
        # constructor so unpickling re-interns in the receiving process.
        return (TupleRep, (self.reps,))

    def _compute_hash(self) -> int:
        return hash(("TupleRep", self.reps))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return type(other) is TupleRep and self.reps == other.reps

    __hash__ = Rep.__hash__

    def pretty(self) -> str:
        inner = ", ".join(rep.pretty() for rep in self.reps)
        return f"TupleRep [{inner}]"


class SumRep(Rep):
    """Unboxed sums (``(# a | b #)``): one tag register plus the slot union.

    The paper's "... etc ..." in the ``Rep`` declaration covers unboxed sums,
    which GHC 8.2 added alongside levity polymorphism.  Their register shape
    is a tag register followed by enough registers to hold any alternative
    (computed field-by-field as the per-class maximum).
    """

    __slots__ = ("alternatives",)

    _intern: Dict[Tuple[Rep, ...], "SumRep"] = {}

    def __new__(cls, alternatives: Iterable[Rep] = ()) -> "SumRep":
        key = tuple(alternatives)
        instance = cls._intern.get(key)
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            instance.alternatives = key
            cls._intern[key] = instance
        return instance

    def __init__(self, alternatives: Iterable[Rep] = ()) -> None:
        pass

    def is_boxed(self) -> bool:
        return False

    def is_lifted(self) -> bool:
        return False

    def _compute_free_rep_vars(self) -> "frozenset[str]":
        out: "frozenset[str]" = _EMPTY_NAMES
        for rep in self.alternatives:
            out = out | rep.free_rep_vars()
        return out

    def substitute(self, mapping: Dict[str, Rep]) -> Rep:
        if not mapping or self.free_rep_vars().isdisjoint(mapping):
            return self
        return SumRep(rep.substitute(mapping) for rep in self.alternatives)

    def zonk(self, lookup) -> Rep:
        if not self.free_rep_vars():
            return self
        return SumRep(rep.zonk(lookup) for rep in self.alternatives)

    def _compute_register_shape(self) -> Tuple[RegisterClass, ...]:
        counts: Dict[RegisterClass, int] = {}
        for rep in self.alternatives:
            per_alt: Dict[RegisterClass, int] = {}
            for reg in rep.register_shape():
                per_alt[reg] = per_alt.get(reg, 0) + 1
            for reg, count in per_alt.items():
                counts[reg] = max(counts.get(reg, 0), count)
        shape: List[RegisterClass] = [RegisterClass.INTEGER]  # the tag
        for reg in (RegisterClass.GC_POINTER, RegisterClass.INTEGER,
                    RegisterClass.FLOAT, RegisterClass.DOUBLE):
            shape.extend([reg] * counts.get(reg, 0))
        return tuple(shape)

    def __reduce__(self):
        return (SumRep, (self.alternatives,))

    def _compute_hash(self) -> int:
        return hash(("SumRep", self.alternatives))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return type(other) is SumRep and self.alternatives == other.alternatives

    __hash__ = Rep.__hash__

    def pretty(self) -> str:
        inner = " | ".join(rep.pretty() for rep in self.alternatives)
        return f"SumRep [{inner}]"


class RepVar(Rep):
    """A representation variable ``r`` — the thing levity polymorphism binds.

    A :class:`RepVar` may be a *rigid* (universally quantified, written by
    the user) variable or a *unification* variable invented by the inference
    engine (Section 5.2).  The distinction matters only to the inference
    engine; structurally they behave identically.

    Fresh unification variables made by :meth:`_fresh` carry an integer id
    and format their name **lazily**: variables that are never printed,
    hashed or unified never allocate a name string at all.
    """

    __slots__ = ("_name", "unification", "_fresh_id", "_fresh_prefix")

    _intern: Dict[Tuple[str, bool], "RepVar"] = {}

    def __new__(cls, name: str, unification: bool = False) -> "RepVar":
        key = (name, unification)
        instance = cls._intern.get(key)
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            instance._name = name
            instance.unification = unification
            instance._fresh_id = None
            instance._fresh_prefix = None
            cls._intern[key] = instance
        return instance

    def __init__(self, name: str = "", unification: bool = False) -> None:
        pass

    @classmethod
    def _fresh(cls, uid: int, prefix: str,
               unification: bool = True) -> "RepVar":
        """A fresh variable whose name ``f"{prefix}{uid}"`` is formatted lazily."""
        instance = object.__new__(cls)
        instance._init_caches()
        instance._name = None
        instance.unification = unification
        instance._fresh_id = uid
        instance._fresh_prefix = prefix
        return instance

    @property
    def name(self) -> str:
        name = self._name
        if name is None:
            name = f"{self._fresh_prefix}{self._fresh_id}"
            self._name = name
        return name

    def is_boxed(self) -> bool:
        raise ValueError(
            f"representation variable {self.name!r} has no fixed boxity; "
            "levity-polymorphic values must never be inspected for boxity"
        )

    def is_lifted(self) -> bool:
        raise ValueError(
            f"representation variable {self.name!r} has no fixed levity; "
            "one should never ask whether a levity-polymorphic type is lazy"
        )

    def _compute_free_rep_vars(self) -> "frozenset[str]":
        return frozenset({self.name})

    def substitute(self, mapping: Dict[str, Rep]) -> Rep:
        if not mapping:
            return self
        return mapping.get(self.name, self)

    def zonk(self, lookup) -> Rep:
        solved = lookup(self.name)
        if solved is None:
            return self
        return solved.zonk(lookup)

    def _compute_register_shape(self) -> Tuple[RegisterClass, ...]:
        raise ValueError(
            f"cannot compute a register shape for representation variable "
            f"{self.name!r}: its calling convention is unknown (Section 5.1)"
        )

    def register_shape(self) -> Tuple[RegisterClass, ...]:
        # Never cache: this always raises.
        return self._compute_register_shape()

    def __reduce__(self):
        # Forces the lazily formatted name of fresh variables, which is
        # exactly what crossing a process boundary requires anyway.
        return (RepVar, (self.name, self.unification))

    def _compute_hash(self) -> int:
        return hash((self.name, self.unification))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (type(other) is RepVar
                and self.unification == other.unification
                and self.name == other.name)

    __hash__ = Rep.__hash__

    def pretty(self) -> str:
        return self.name


# Canonical singletons.  The classes are hash-consed, so these are *the*
# unique instances: equality on them is pointer equality.
LIFTED = LiftedRep()
UNLIFTED = UnliftedRep()
INT_REP = IntRep()
WORD_REP = WordRep()
CHAR_REP = CharRep()
ADDR_REP = AddrRep()
FLOAT_REP = FloatRep()
DOUBLE_REP = DoubleRep()
UNIT_TUPLE_REP = TupleRep(())


_rep_var_counter = itertools.count()


def fresh_rep_var(prefix: str = "r") -> RepVar:
    """Create a fresh representation unification variable (Section 5.2)."""
    return RepVar._fresh(next(_rep_var_counter), prefix)


def same_calling_convention(rep1: Rep, rep2: Rep) -> bool:
    """Do two concrete representations share a calling convention?

    Two types with the same kind use the same calling convention (Section 4.1:
    "Int and Bool have the same kind, and hence use the same calling
    convention").  At the level of representations, sharing a calling
    convention means having identical register shapes.
    """
    if not (rep1.is_concrete() and rep2.is_concrete()):
        raise ValueError("calling conventions exist only for concrete reps")
    return rep1.register_shape() == rep2.register_shape()


def all_nullary_reps() -> Tuple[Rep, ...]:
    """All non-compound concrete representations, for enumeration in tests."""
    return (LIFTED, UNLIFTED, INT_REP, WORD_REP, CHAR_REP, ADDR_REP,
            FLOAT_REP, DOUBLE_REP)
