"""The levity-polymorphism restrictions of Section 5.1.

The paper's fundamental requirement is::

    Never move or store a levity-polymorphic value.   (*)

which is enforced by two checks performed *after* type inference:

1. **Disallow levity-polymorphic binders.**  Every bound term variable must
   have a type whose kind is fixed (``TYPE υ`` for a concrete ``υ``) and free
   of representation variables.
2. **Disallow levity-polymorphic function arguments.**  Arguments are passed
   in registers, so the register class must be known when compiling the call.

This module centralises those checks so that the core calculus L, the surface
type checker, and the dictionary translation all enforce exactly the same
discipline.  The checks are deliberately *syntactic on kinds*: one never asks
whether a levity-polymorphic type "happens to" be lifted — the question is
meaningless (Section 8.2, "We cannot always tell whether a type is lifted").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .errors import LevityPolymorphicArgument, LevityPolymorphicBinder
from .kinds import Kind, TypeKind
from .rep import Rep


@dataclass(frozen=True)
class LevityViolation:
    """A single violation of the Section 5.1 restrictions."""

    kind_of_violation: str  # "binder" or "argument"
    description: str
    offending_kind: Optional[Kind] = None
    #: Source span of the offending binder/argument site, when the caller
    #: recorded one (a :class:`repro.frontend.lexer.Span`; kept loosely
    #: typed so the core calculus stays frontend-independent).
    span: Optional[object] = None

    def pretty(self) -> str:
        where = ("A levity-polymorphic binder"
                 if self.kind_of_violation == "binder"
                 else "A levity-polymorphic function argument")
        kind_info = ""
        if self.offending_kind is not None:
            kind_info = f" (kind: {self.offending_kind.pretty()})"
        return f"{where} is not allowed: {self.description}{kind_info}"


def kind_is_fixed(kind: Kind) -> bool:
    """Is ``kind`` of the form ``TYPE υ`` with ``υ`` concrete?

    This is the paper's requirement on the kinds of binders and function
    arguments: the highlighted premises ``Γ ⊢ τ : TYPE υ`` in rules E_APP
    and E_LAM of Figure 3.
    """
    return isinstance(kind, TypeKind) and kind.rep.is_concrete()


def rep_is_fixed(rep: Rep) -> bool:
    """Is the representation concrete (free of representation variables)?"""
    return rep.is_concrete()


def check_binder_kind(kind: Kind, what: str = "bound variable") -> None:
    """Enforce restriction 1: a binder's kind must be fixed.

    Raises :class:`LevityPolymorphicBinder` when the kind either is not of
    the form ``TYPE r`` at all, or mentions a representation variable.
    """
    if not isinstance(kind, TypeKind):
        raise LevityPolymorphicBinder(
            f"{what} must have a value kind (TYPE r), got {kind.pretty()}")
    if not kind.rep.is_concrete():
        raise LevityPolymorphicBinder(
            f"{what} has a levity-polymorphic type: its kind "
            f"{kind.pretty()} mentions representation variable(s) "
            f"{sorted(kind.rep.free_rep_vars())}")


def check_argument_kind(kind: Kind, what: str = "function argument") -> None:
    """Enforce restriction 2: an argument's kind must be fixed."""
    if not isinstance(kind, TypeKind):
        raise LevityPolymorphicArgument(
            f"{what} must have a value kind (TYPE r), got {kind.pretty()}")
    if not kind.rep.is_concrete():
        raise LevityPolymorphicArgument(
            f"{what} is levity-polymorphic: its kind {kind.pretty()} "
            f"mentions representation variable(s) "
            f"{sorted(kind.rep.free_rep_vars())}")


@dataclass
class LevityChecker:
    """Accumulating checker used by the desugarer-style post-inference pass.

    GHC performs the levity checks in the desugarer, after all unification
    variables have been solved (Section 8.2).  The surface pipeline in
    :mod:`repro.infer.levity_check` mirrors that: it walks the elaborated
    program, calling :meth:`check_binder` / :meth:`check_argument`, and
    either collects violations (``collect=True``) or raises on the first one.
    """

    collect: bool = False
    violations: List[LevityViolation] = field(default_factory=list)

    def check_binder(self, kind: Kind, description: str) -> bool:
        """Check a binder; return True when it is acceptable."""
        try:
            check_binder_kind(kind, description)
            return True
        except LevityPolymorphicBinder as exc:
            self._record("binder", str(exc), kind)
            return False

    def check_argument(self, kind: Kind, description: str) -> bool:
        """Check a function argument; return True when it is acceptable."""
        try:
            check_argument_kind(kind, description)
            return True
        except LevityPolymorphicArgument as exc:
            self._record("argument", str(exc), kind)
            return False

    def _record(self, which: str, message: str, kind: Kind) -> None:
        violation = LevityViolation(which, message, kind)
        if self.collect:
            self.violations.append(violation)
        elif which == "binder":
            raise LevityPolymorphicBinder(message)
        else:
            raise LevityPolymorphicArgument(message)

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        """Human-readable report of all collected violations."""
        if self.ok:
            return "no levity-polymorphism violations"
        return "\n".join(v.pretty() for v in self.violations)
