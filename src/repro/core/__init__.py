"""Core notions of the paper: runtime representations, kinds, levity checks.

This package implements Section 4 ("Key Idea: Polymorphism, not Sub-kinding")
and Section 5.1 ("Rejecting Un-compilable Levity Polymorphism"):

* :mod:`repro.core.rep` — the ``Rep`` algebra of runtime representations and
  their register shapes (calling conventions);
* :mod:`repro.core.kinds` — kinds ``TYPE r`` with ``Type = TYPE LiftedRep``;
* :mod:`repro.core.levity` — the two restrictions that make levity
  polymorphism compilable;
* :mod:`repro.core.errors` — the shared exception hierarchy.
"""

from .errors import (
    CompilationError,
    EvaluationError,
    InstanceResolutionError,
    KindError,
    LevityError,
    LevityPolymorphicArgument,
    LevityPolymorphicBinder,
    MachineError,
    OccursCheckError,
    ParseError,
    PatternError,
    ReproError,
    ScopeError,
    TypeCheckError,
    UnificationError,
)
from .kinds import (
    CONSTRAINT,
    REP_KIND,
    TYPE_DOUBLE,
    TYPE_FLOAT,
    TYPE_INT,
    TYPE_LIFTED,
    TYPE_UNLIFTED,
    ArrowKind,
    ConstraintKind,
    Kind,
    KindVar,
    RepKind,
    Type,
    TypeKind,
    arrow_kind,
    fresh_kind_var,
    kind_of_type_constructor,
    type_kind,
    unboxed_tuple_kind,
)
from .levity import (
    LevityChecker,
    LevityViolation,
    check_argument_kind,
    check_binder_kind,
    kind_is_fixed,
    rep_is_fixed,
)
from .rep import (
    ADDR_REP,
    CHAR_REP,
    DOUBLE_REP,
    FLOAT_REP,
    INT_REP,
    LIFTED,
    UNIT_TUPLE_REP,
    UNLIFTED,
    WORD_REP,
    AddrRep,
    CharRep,
    DoubleRep,
    FloatRep,
    IntRep,
    LiftedRep,
    RegisterClass,
    Rep,
    RepVar,
    SumRep,
    TupleRep,
    UnliftedRep,
    WordRep,
    all_nullary_reps,
    fresh_rep_var,
    same_calling_convention,
)

__all__ = [name for name in dir() if not name.startswith("_")]
