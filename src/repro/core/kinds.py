"""Kinds as calling conventions: ``TYPE r`` and friends (Section 4).

The central idea of the paper is that the kind of a type determines the
runtime representation — and hence the calling convention — of its values.
This module provides:

* :class:`TypeKind` — the kind ``TYPE r`` of value types, parameterised by a
  :class:`~repro.core.rep.Rep`;
* :data:`TYPE_LIFTED` (a.k.a. ``Type``) — the synonym ``Type = TYPE LiftedRep``;
* :class:`ArrowKind` — the kind of type constructors such as
  ``Maybe :: Type -> Type``;
* :class:`ConstraintKind` — the kind of class constraints (needed for the
  levity-polymorphic classes of Section 7.3);
* :class:`KindVar` — kind variables, for the kind-polymorphic fragments of
  the surface language.

Kinds are immutable and hashable, so they can be used as dictionary keys by
the inference engine.  Like the ``Rep`` algebra, kinds are **hash-consed**
(except ``TYPE r`` at a representation *variable*, which is too short-lived
to be worth a table entry): equal kinds are usually the same object, hashes
are cached, and the ``free_*`` queries are memoised per node (see
``docs/PERF.md``).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Tuple

from .rep import (
    DOUBLE_REP,
    FLOAT_REP,
    INT_REP,
    LIFTED,
    Rep,
    RepVar,
    UNLIFTED,
    TupleRep,
)

_EMPTY_NAMES: FrozenSet[str] = frozenset()


class Kind:
    """Abstract base class of kinds."""

    __slots__ = ("_hash", "_free_rep", "_free_kind")

    def _init_caches(self) -> None:
        self._hash = None
        self._free_rep = None
        self._free_kind = None

    def is_type_kind(self) -> bool:
        """Is this ``TYPE r`` for some ``r``? (i.e. does it classify values?)"""
        return isinstance(self, TypeKind)

    def free_rep_vars(self) -> FrozenSet[str]:
        free = self._free_rep
        if free is None:
            free = self._compute_free_rep_vars()
            self._free_rep = free
        return free

    def free_kind_vars(self) -> FrozenSet[str]:
        free = self._free_kind
        if free is None:
            free = self._compute_free_kind_vars()
            self._free_kind = free
        return free

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def _compute_free_kind_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def substitute_reps(self, mapping: Dict[str, Rep]) -> "Kind":
        raise NotImplementedError

    def substitute_kinds(self, mapping: Dict[str, "Kind"]) -> "Kind":
        raise NotImplementedError

    def is_concrete(self) -> bool:
        """No representation or kind variables anywhere inside."""
        return not self.free_rep_vars() and not self.free_kind_vars()

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._compute_hash()
            self._hash = h
        return h

    def _compute_hash(self) -> int:
        raise NotImplementedError

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.pretty()


class TypeKind(Kind):
    """The kind ``TYPE r`` of types whose values have representation ``r``."""

    __slots__ = ("rep",)

    _intern: Dict[Rep, "TypeKind"] = {}

    def __new__(cls, rep: Rep) -> "TypeKind":
        if isinstance(rep, RepVar):
            # ``TYPE ρ`` kinds of fresh unification variables are unique by
            # construction; interning them would force the variable's lazily
            # formatted name on the hot path for no sharing gain.
            instance = object.__new__(cls)
            instance._init_caches()
            instance.rep = rep
            return instance
        instance = cls._intern.get(rep)
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            instance.rep = rep
            cls._intern[rep] = instance
        return instance

    def __init__(self, rep: Rep) -> None:
        pass

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        return self.rep.free_rep_vars()

    def _compute_free_kind_vars(self) -> FrozenSet[str]:
        return _EMPTY_NAMES

    def substitute_reps(self, mapping: Dict[str, Rep]) -> Kind:
        if not mapping or self.free_rep_vars().isdisjoint(mapping):
            return self
        return TypeKind(self.rep.substitute(mapping))

    def substitute_kinds(self, mapping: Dict[str, Kind]) -> Kind:
        return self

    def is_lifted_type_kind(self) -> bool:
        """Is this exactly ``Type`` (that is, ``TYPE LiftedRep``)?"""
        return self.rep == LIFTED

    def __reduce__(self):
        # Hash-consed nodes have a required-argument ``__new__``, which the
        # default pickling protocol cannot call; reconstruct through the
        # constructor so unpickling re-interns in the receiving process.
        return (TypeKind, (self.rep,))

    def _compute_hash(self) -> int:
        return hash(("TypeKind", self.rep))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return type(other) is TypeKind and self.rep == other.rep

    __hash__ = Kind.__hash__

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        if self.rep == LIFTED:
            return "Type"
        if not explicit_runtime_reps and isinstance(self.rep, RepVar):
            # Mirrors GHC's default display (Section 8.1): representation
            # variables are defaulted to LiftedRep when printing unless the
            # user passes -fprint-explicit-runtime-reps.
            return "Type"
        return f"TYPE {self.rep.pretty()}"


class ArrowKind(Kind):
    """The kind of type constructors: ``k1 -> k2``."""

    __slots__ = ("argument", "result")

    _intern: Dict[Tuple[Kind, Kind], "ArrowKind"] = {}

    def __new__(cls, argument: Kind, result: Kind) -> "ArrowKind":
        key = (argument, result)
        instance = cls._intern.get(key)
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            instance.argument = argument
            instance.result = result
            cls._intern[key] = instance
        return instance

    def __init__(self, argument: Kind, result: Kind) -> None:
        pass

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        return self.argument.free_rep_vars() | self.result.free_rep_vars()

    def _compute_free_kind_vars(self) -> FrozenSet[str]:
        return self.argument.free_kind_vars() | self.result.free_kind_vars()

    def substitute_reps(self, mapping: Dict[str, Rep]) -> Kind:
        if not mapping or self.free_rep_vars().isdisjoint(mapping):
            return self
        return ArrowKind(self.argument.substitute_reps(mapping),
                         self.result.substitute_reps(mapping))

    def substitute_kinds(self, mapping: Dict[str, Kind]) -> Kind:
        if not mapping or self.free_kind_vars().isdisjoint(mapping):
            return self
        return ArrowKind(self.argument.substitute_kinds(mapping),
                         self.result.substitute_kinds(mapping))

    def __reduce__(self):
        return (ArrowKind, (self.argument, self.result))

    def _compute_hash(self) -> int:
        return hash(("ArrowKind", self.argument, self.result))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (type(other) is ArrowKind
                and self.argument == other.argument
                and self.result == other.result)

    __hash__ = Kind.__hash__

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        arg = self.argument.pretty(explicit_runtime_reps)
        if isinstance(self.argument, ArrowKind):
            arg = f"({arg})"
        return f"{arg} -> {self.result.pretty(explicit_runtime_reps)}"


class _NullaryKind(Kind):
    """Shared implementation for kinds with no sub-structure (singletons)."""

    __slots__ = ()

    _PRETTY = "?"

    def __new__(cls) -> "_NullaryKind":
        instance = cls.__dict__.get("_instance")
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            cls._instance = instance
        return instance

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        return _EMPTY_NAMES

    def _compute_free_kind_vars(self) -> FrozenSet[str]:
        return _EMPTY_NAMES

    def substitute_reps(self, mapping: Dict[str, Rep]) -> Kind:
        return self

    def substitute_kinds(self, mapping: Dict[str, Kind]) -> Kind:
        return self

    def _compute_hash(self) -> int:
        return hash(type(self).__qualname__)

    def __eq__(self, other: object) -> bool:
        return self is other or type(self) is type(other)

    __hash__ = Kind.__hash__

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return self._PRETTY


class ConstraintKind(_NullaryKind):
    """The kind ``Constraint`` of class constraints such as ``Num a``."""

    __slots__ = ()
    _PRETTY = "Constraint"


class RepKind(_NullaryKind):
    """The kind ``Rep`` itself, so that ``r :: Rep`` can appear in contexts.

    ``Rep`` is an ordinary promoted data type in GHC (Section 4.1); here we
    give it its own kind constant so the surface language can quantify
    ``forall (r :: Rep).`` explicitly.
    """

    __slots__ = ()
    _PRETTY = "Rep"


class KindVar(Kind):
    """A kind variable, used by kind polymorphism in the surface language."""

    __slots__ = ("_name", "unification", "_fresh_id", "_fresh_prefix")

    _intern: Dict[Tuple[str, bool], "KindVar"] = {}

    def __new__(cls, name: str, unification: bool = False) -> "KindVar":
        key = (name, unification)
        instance = cls._intern.get(key)
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            instance._name = name
            instance.unification = unification
            instance._fresh_id = None
            instance._fresh_prefix = None
            cls._intern[key] = instance
        return instance

    def __init__(self, name: str = "", unification: bool = False) -> None:
        pass

    @classmethod
    def _fresh(cls, uid: int, prefix: str,
               unification: bool = True) -> "KindVar":
        """A fresh variable whose name ``f"{prefix}{uid}"`` is formatted lazily."""
        instance = object.__new__(cls)
        instance._init_caches()
        instance._name = None
        instance.unification = unification
        instance._fresh_id = uid
        instance._fresh_prefix = prefix
        return instance

    @property
    def name(self) -> str:
        name = self._name
        if name is None:
            name = f"{self._fresh_prefix}{self._fresh_id}"
            self._name = name
        return name

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        return _EMPTY_NAMES

    def _compute_free_kind_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def substitute_reps(self, mapping: Dict[str, Rep]) -> Kind:
        return self

    def substitute_kinds(self, mapping: Dict[str, Kind]) -> Kind:
        if not mapping:
            return self
        return mapping.get(self.name, self)

    def __reduce__(self):
        return (KindVar, (self.name, self.unification))

    def _compute_hash(self) -> int:
        return hash((self.name, self.unification))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (type(other) is KindVar
                and self.unification == other.unification
                and self.name == other.name)

    __hash__ = Kind.__hash__

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return self.name


# -- canonical kinds ---------------------------------------------------------

#: ``Type``, the kind of ordinary lifted, boxed types (``TYPE LiftedRep``).
TYPE_LIFTED = TypeKind(LIFTED)
#: Alias emphasising the synonym ``type Type = TYPE LiftedRep``.
Type = TYPE_LIFTED
#: ``TYPE UnliftedRep`` — boxed but unlifted types such as ``ByteArray#``.
TYPE_UNLIFTED = TypeKind(UNLIFTED)
#: ``TYPE IntRep`` — the kind of ``Int#``.
TYPE_INT = TypeKind(INT_REP)
#: ``TYPE FloatRep`` — the kind of ``Float#``.
TYPE_FLOAT = TypeKind(FLOAT_REP)
#: ``TYPE DoubleRep`` — the kind of ``Double#``.
TYPE_DOUBLE = TypeKind(DOUBLE_REP)
#: ``Constraint``.
CONSTRAINT = ConstraintKind()
#: The kind ``Rep`` of runtime representations.
REP_KIND = RepKind()


def type_kind(rep: Rep) -> TypeKind:
    """Build ``TYPE rep``."""
    return TypeKind(rep)


def unboxed_tuple_kind(*component_reps: Rep) -> TypeKind:
    """The kind ``TYPE (TupleRep [...])`` of an unboxed tuple type."""
    return TypeKind(TupleRep(component_reps))


def arrow_kind(*kinds: Kind) -> Kind:
    """Right-nested arrow kind: ``arrow_kind(a, b, c) == a -> (b -> c)``."""
    if not kinds:
        raise ValueError("arrow_kind needs at least one kind")
    result = kinds[-1]
    for argument in reversed(kinds[:-1]):
        result = ArrowKind(argument, result)
    return result


_kind_var_counter = itertools.count()


def fresh_kind_var(prefix: str = "k") -> KindVar:
    """A fresh kind unification variable."""
    return KindVar._fresh(next(_kind_var_counter), prefix)


def kind_of_type_constructor(arity: int, result: Kind = TYPE_LIFTED) -> Kind:
    """The kind of an ordinary ``arity``-ary lifted type constructor.

    For example ``kind_of_type_constructor(1)`` is ``Type -> Type`` (the kind
    of ``Maybe``), and ``kind_of_type_constructor(0)`` is just ``Type``.
    """
    kind: Kind = result
    for _ in range(arity):
        kind = ArrowKind(TYPE_LIFTED, kind)
    return kind
