"""Kinds as calling conventions: ``TYPE r`` and friends (Section 4).

The central idea of the paper is that the kind of a type determines the
runtime representation — and hence the calling convention — of its values.
This module provides:

* :class:`TypeKind` — the kind ``TYPE r`` of value types, parameterised by a
  :class:`~repro.core.rep.Rep`;
* :data:`TYPE_LIFTED` (a.k.a. ``Type``) — the synonym ``Type = TYPE LiftedRep``;
* :class:`ArrowKind` — the kind of type constructors such as
  ``Maybe :: Type -> Type``;
* :class:`ConstraintKind` — the kind of class constraints (needed for the
  levity-polymorphic classes of Section 7.3);
* :class:`KindVar` — kind variables, for the kind-polymorphic fragments of
  the surface language.

Kinds are immutable and hashable, so they can be used as dictionary keys by
the inference engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from .rep import (
    DOUBLE_REP,
    FLOAT_REP,
    INT_REP,
    LIFTED,
    Rep,
    RepVar,
    UNLIFTED,
    TupleRep,
)


class Kind:
    """Abstract base class of kinds."""

    def is_type_kind(self) -> bool:
        """Is this ``TYPE r`` for some ``r``? (i.e. does it classify values?)"""
        return isinstance(self, TypeKind)

    def free_rep_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def free_kind_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def substitute_reps(self, mapping: Dict[str, Rep]) -> "Kind":
        raise NotImplementedError

    def substitute_kinds(self, mapping: Dict[str, "Kind"]) -> "Kind":
        raise NotImplementedError

    def is_concrete(self) -> bool:
        """No representation or kind variables anywhere inside."""
        return not self.free_rep_vars() and not self.free_kind_vars()

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class TypeKind(Kind):
    """The kind ``TYPE r`` of types whose values have representation ``r``."""

    rep: Rep

    def free_rep_vars(self) -> FrozenSet[str]:
        return self.rep.free_rep_vars()

    def free_kind_vars(self) -> FrozenSet[str]:
        return frozenset()

    def substitute_reps(self, mapping: Dict[str, Rep]) -> Kind:
        return TypeKind(self.rep.substitute(mapping))

    def substitute_kinds(self, mapping: Dict[str, Kind]) -> Kind:
        return self

    def is_lifted_type_kind(self) -> bool:
        """Is this exactly ``Type`` (that is, ``TYPE LiftedRep``)?"""
        return self.rep == LIFTED

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        if self.rep == LIFTED:
            return "Type"
        if not explicit_runtime_reps and isinstance(self.rep, RepVar):
            # Mirrors GHC's default display (Section 8.1): representation
            # variables are defaulted to LiftedRep when printing unless the
            # user passes -fprint-explicit-runtime-reps.
            return "Type"
        return f"TYPE {self.rep.pretty()}"


@dataclass(frozen=True)
class ArrowKind(Kind):
    """The kind of type constructors: ``k1 -> k2``."""

    argument: Kind
    result: Kind

    def free_rep_vars(self) -> FrozenSet[str]:
        return self.argument.free_rep_vars() | self.result.free_rep_vars()

    def free_kind_vars(self) -> FrozenSet[str]:
        return self.argument.free_kind_vars() | self.result.free_kind_vars()

    def substitute_reps(self, mapping: Dict[str, Rep]) -> Kind:
        return ArrowKind(self.argument.substitute_reps(mapping),
                         self.result.substitute_reps(mapping))

    def substitute_kinds(self, mapping: Dict[str, Kind]) -> Kind:
        return ArrowKind(self.argument.substitute_kinds(mapping),
                         self.result.substitute_kinds(mapping))

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        arg = self.argument.pretty(explicit_runtime_reps)
        if isinstance(self.argument, ArrowKind):
            arg = f"({arg})"
        return f"{arg} -> {self.result.pretty(explicit_runtime_reps)}"


@dataclass(frozen=True)
class ConstraintKind(Kind):
    """The kind ``Constraint`` of class constraints such as ``Num a``."""

    def free_rep_vars(self) -> FrozenSet[str]:
        return frozenset()

    def free_kind_vars(self) -> FrozenSet[str]:
        return frozenset()

    def substitute_reps(self, mapping: Dict[str, Rep]) -> Kind:
        return self

    def substitute_kinds(self, mapping: Dict[str, Kind]) -> Kind:
        return self

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return "Constraint"


@dataclass(frozen=True)
class RepKind(Kind):
    """The kind ``Rep`` itself, so that ``r :: Rep`` can appear in contexts.

    ``Rep`` is an ordinary promoted data type in GHC (Section 4.1); here we
    give it its own kind constant so the surface language can quantify
    ``forall (r :: Rep).`` explicitly.
    """

    def free_rep_vars(self) -> FrozenSet[str]:
        return frozenset()

    def free_kind_vars(self) -> FrozenSet[str]:
        return frozenset()

    def substitute_reps(self, mapping: Dict[str, Rep]) -> Kind:
        return self

    def substitute_kinds(self, mapping: Dict[str, Kind]) -> Kind:
        return self

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return "Rep"


@dataclass(frozen=True)
class KindVar(Kind):
    """A kind variable, used by kind polymorphism in the surface language."""

    name: str
    unification: bool = False

    def free_rep_vars(self) -> FrozenSet[str]:
        return frozenset()

    def free_kind_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def substitute_reps(self, mapping: Dict[str, Rep]) -> Kind:
        return self

    def substitute_kinds(self, mapping: Dict[str, Kind]) -> Kind:
        return mapping.get(self.name, self)

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return self.name


# -- canonical kinds ---------------------------------------------------------

#: ``Type``, the kind of ordinary lifted, boxed types (``TYPE LiftedRep``).
TYPE_LIFTED = TypeKind(LIFTED)
#: Alias emphasising the synonym ``type Type = TYPE LiftedRep``.
Type = TYPE_LIFTED
#: ``TYPE UnliftedRep`` — boxed but unlifted types such as ``ByteArray#``.
TYPE_UNLIFTED = TypeKind(UNLIFTED)
#: ``TYPE IntRep`` — the kind of ``Int#``.
TYPE_INT = TypeKind(INT_REP)
#: ``TYPE FloatRep`` — the kind of ``Float#``.
TYPE_FLOAT = TypeKind(FLOAT_REP)
#: ``TYPE DoubleRep`` — the kind of ``Double#``.
TYPE_DOUBLE = TypeKind(DOUBLE_REP)
#: ``Constraint``.
CONSTRAINT = ConstraintKind()
#: The kind ``Rep`` of runtime representations.
REP_KIND = RepKind()


def type_kind(rep: Rep) -> TypeKind:
    """Build ``TYPE rep``."""
    return TypeKind(rep)


def unboxed_tuple_kind(*component_reps: Rep) -> TypeKind:
    """The kind ``TYPE (TupleRep [...])`` of an unboxed tuple type."""
    return TypeKind(TupleRep(component_reps))


def arrow_kind(*kinds: Kind) -> Kind:
    """Right-nested arrow kind: ``arrow_kind(a, b, c) == a -> (b -> c)``."""
    if not kinds:
        raise ValueError("arrow_kind needs at least one kind")
    result = kinds[-1]
    for argument in reversed(kinds[:-1]):
        result = ArrowKind(argument, result)
    return result


_kind_var_counter = itertools.count()


def fresh_kind_var(prefix: str = "k") -> KindVar:
    """A fresh kind unification variable."""
    return KindVar(f"{prefix}{next(_kind_var_counter)}", unification=True)


def kind_of_type_constructor(arity: int, result: Kind = TYPE_LIFTED) -> Kind:
    """The kind of an ordinary ``arity``-ary lifted type constructor.

    For example ``kind_of_type_constructor(1)`` is ``Type -> Type`` (the kind
    of ``Maybe``), and ``kind_of_type_constructor(0)`` is just ``Type``.
    """
    kind: Kind = result
    for _ in range(arity):
        kind = ArrowKind(TYPE_LIFTED, kind)
    return kind
