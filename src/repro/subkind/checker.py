"""The legacy (OpenKind) behaviour of ``error`` and friends (Section 3.3).

Under the old design, ``error`` was given the *magical* type
``forall (a :: OpenKind). String -> a`` so that calls like
``error "boom" :: Int#`` were accepted despite the Instantiation Principle.
The magic was fragile: a user-written wrapper::

    myError :: String -> a
    myError s = error ("Program error " ++ s)

got the inferred type ``forall (a :: Type). String -> a`` — the OpenKind was
lost, and ``myError`` could no longer be used at an unlifted type.

This module models exactly that behaviour so the E6 benchmark can put the
two designs side by side:

* :class:`LegacySignature` — a type with a legacy kind for its quantified
  variable (``OpenKind`` for the blessed built-ins, ``Type`` for everything
  the user writes);
* :func:`legacy_instantiation_ok` — may a legacy signature be instantiated
  at a given type?
* :func:`legacy_infer_wrapper_kind` — what kind does the quantified variable
  of a *user-written* wrapper get?  (Always ``Type``: inference never
  produces ``OpenKind``.)
* :func:`describe_error_message` — the embarrassing ``OpenKind`` leaking
  into an error message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.errors import KindError, TypeCheckError
from ..surface.types import SType
from .kinds import HASH, LegacyKind, OPEN_KIND, STAR, is_subkind_of, legacy_kind_of


@dataclass(frozen=True)
class LegacySignature:
    """A (schematic) legacy type ``forall (a :: k). ... a ...``."""

    name: str
    quantified_kind: LegacyKind
    magical: bool = False  # True only for compiler-blessed built-ins

    def pretty(self) -> str:
        return (f"{self.name} :: forall (a :: "
                f"{self.quantified_kind.pretty()}). ... a ...")


#: The compiler-blessed legacy signature of ``error``.
LEGACY_ERROR = LegacySignature("error", OPEN_KIND, magical=True)
#: ``undefined`` enjoyed the same special case.
LEGACY_UNDEFINED = LegacySignature("undefined", OPEN_KIND, magical=True)
#: ``($)`` was special-cased in the type checker rather than the kind.
LEGACY_DOLLAR = LegacySignature("$", OPEN_KIND, magical=True)


def legacy_instantiation_ok(signature: LegacySignature,
                            at_type: SType) -> bool:
    """May the legacy signature be instantiated at ``at_type``?

    The quantified variable's kind must be a super-kind of the instantiation
    type's kind.  With ``OpenKind`` everything is allowed; with ``Type`` only
    lifted types are.
    """
    return is_subkind_of(legacy_kind_of(at_type), signature.quantified_kind)


def legacy_infer_wrapper_kind(wraps: LegacySignature) -> LegacySignature:
    """Infer the legacy signature of a user-written wrapper around ``wraps``.

    The old inference engine never generalised to ``OpenKind`` (doing so
    would have required principled sub-kind inference, which GHC did not
    have), so the wrapper's quantified variable gets kind ``Type`` and the
    magic is lost — the paper's ``myError`` example.
    """
    return LegacySignature(f"user wrapper around {wraps.name}", STAR,
                           magical=False)


def legacy_check_instantiation(signature: LegacySignature,
                               at_type: SType) -> None:
    """Raise the legacy-style error message when instantiation is rejected."""
    if legacy_instantiation_ok(signature, at_type):
        return
    raise KindError(describe_error_message(signature, at_type))


def describe_error_message(signature: LegacySignature,
                           at_type: SType) -> str:
    """The kind-mismatch message, with OpenKind embarrassingly on display."""
    return (f"Couldn't match kind '{signature.quantified_kind.pretty()}' "
            f"with '{legacy_kind_of(at_type).pretty()}' arising from a use "
            f"of '{signature.name}' at type '{at_type.pretty()}'")


def saturated_arrow_kind(saturated: bool) -> Tuple[LegacyKind, LegacyKind,
                                                   LegacyKind]:
    """The legacy kind of ``(->)``: different when partially applied!

    Fully saturated uses were given ``OpenKind -> OpenKind -> Type`` while
    partial applications got ``Type -> Type -> Type`` — the "sleight-of-hand"
    that confused keen students of type theory (Section 3.2).  Returns the
    (argument, argument, result) kinds.
    """
    if saturated:
        return (OPEN_KIND, OPEN_KIND, STAR)
    return (STAR, STAR, STAR)


def legacy_restrictions() -> Dict[str, str]:
    """The three brutal restrictions of the pre-levity world (Section 7.1)."""
    return {
        "type_families": "No type family could return an unlifted type: all "
                         "unlifted types shared the kind #, so the calling "
                         "convention of `f :: F a -> a` would be unknown.",
        "indices": "Unlifted types could not be used as indices to type "
                   "families or GADTs.",
        "saturation": "Unlifted type constructors (Array#, (# , #)) had to "
                      "be fully saturated; abstraction over partially "
                      "applied unlifted constructors was forbidden.",
    }
