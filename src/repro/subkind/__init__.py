"""The legacy OpenKind sub-kinding baseline (Sections 3.2-3.3)."""

from .checker import (
    LEGACY_DOLLAR,
    LEGACY_ERROR,
    LEGACY_UNDEFINED,
    LegacySignature,
    describe_error_message,
    legacy_check_instantiation,
    legacy_infer_wrapper_kind,
    legacy_instantiation_ok,
    legacy_restrictions,
    saturated_arrow_kind,
)
from .kinds import (
    HASH,
    LegacyKind,
    OPEN_KIND,
    STAR,
    hash_kind_loses_calling_convention,
    is_subkind_of,
    legacy_kind_of,
    unify_legacy_kinds,
)

__all__ = [name for name in dir() if not name.startswith("_")]
