"""The old GHC sub-kinding story (Section 3.2) — the baseline comparator.

Before levity polymorphism, GHC classified types with a small lattice of
kinds::

                OpenKind
               /        \\
            Type          #

``OpenKind`` was a super-kind of both the kind of lifted types (``Type``,
then written ``*``) and the kind of unlifted types (``#``).  The function
arrow was given the "bizarre" kind ``OpenKind -> OpenKind -> Type`` — but
only when fully saturated — and ``error`` got the magical type
``forall (a :: OpenKind). String -> a``.

This module reproduces that design so the benchmarks can compare it against
levity polymorphism:

* :class:`LegacyKind` and the :data:`OPEN_KIND` / :data:`STAR` / :data:`HASH`
  constants, with the sub-kinding relation ``is_subkind_of``;
* the known pain points, each exposed as a function so tests and the E6
  bench can demonstrate them:

  - ``#`` lumps every unlifted type together, so a type family returning
    ``#`` cannot be compiled (:func:`hash_kind_loses_calling_convention`);
  - the magic on ``error`` is fragile: a user-written wrapper loses it
    (:mod:`repro.subkind.checker`);
  - ``OpenKind`` leaks into error messages and interacts badly with
    inference (modelled by :func:`unify_legacy_kinds` which must special-case
    the sub-kind checks rather than using plain unification).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple

from ..core.errors import KindError
from ..core.kinds import Kind, TypeKind
from ..core.rep import Rep
from ..surface.types import SType, kind_of_type


class LegacyKind(Enum):
    """The three kinds of the pre-levity-polymorphism design."""

    STAR = "Type"          # lifted, boxed types (written * at the time)
    HASH = "#"             # every unlifted type, whatever its representation
    OPEN_KIND = "OpenKind"  # the super-kind of both

    def pretty(self) -> str:
        return self.value


STAR = LegacyKind.STAR
HASH = LegacyKind.HASH
OPEN_KIND = LegacyKind.OPEN_KIND


def is_subkind_of(sub: LegacyKind, sup: LegacyKind) -> bool:
    """The sub-kinding relation: ``Type <: OpenKind`` and ``# <: OpenKind``."""
    if sub == sup:
        return True
    return sup is OPEN_KIND


def legacy_kind_of(type_: SType) -> LegacyKind:
    """Project a surface type's modern kind onto the legacy lattice.

    Everything boxed-and-lifted is ``Type``; everything else that classifies
    values is ``#``.  This projection is exactly the information loss the
    paper criticises: ``Int#`` (one integer register) and ``(# Int, Bool #)``
    (two pointer registers) both map to ``#``.
    """
    kind = kind_of_type(type_)
    if not isinstance(kind, TypeKind):
        raise KindError(
            f"{type_.pretty()} is a type constructor, not a value type")
    rep = kind.rep
    if not rep.is_concrete():
        # The legacy system had no representation variables at all; the
        # closest analogue of "unknown representation" was OpenKind itself.
        return OPEN_KIND
    if rep.is_boxed() and rep.is_lifted():
        return STAR
    return HASH


def unify_legacy_kinds(expected: LegacyKind, actual: LegacyKind) -> LegacyKind:
    """Kind "unification" in the legacy system.

    Because of sub-kinding this is not symmetric unification at all but a
    subsumption check — one of the "awkward and unprincipled special cases"
    the paper mentions.  An expected ``OpenKind`` accepts anything; otherwise
    the kinds must match exactly.
    """
    if is_subkind_of(actual, expected):
        return actual
    raise KindError(
        f"kind mismatch: expected {expected.pretty()}, got {actual.pretty()} "
        "(and no sub-kind relation applies)")


def hash_kind_loses_calling_convention(types: Tuple[SType, ...]
                                       ) -> Dict[str, object]:
    """Show that ``#`` erases calling conventions while ``TYPE r`` keeps them.

    Given several unlifted types, returns for each its legacy kind (always
    ``#``), its modern kind, and its register shape.  The legacy kinds are
    all identical even when the register shapes differ — which is precisely
    why old GHC could not compile ``f :: F a -> a`` for a type family ``F``
    returning unlifted types (Section 7.1).
    """
    report: Dict[str, object] = {}
    shapes = set()
    for type_ in types:
        kind = kind_of_type(type_)
        assert isinstance(kind, TypeKind)
        shape = kind.rep.register_shape()
        shapes.add(shape)
        report[type_.pretty()] = {
            "legacy_kind": legacy_kind_of(type_).pretty(),
            "modern_kind": kind.pretty(),
            "register_shape": tuple(r.value for r in shape),
        }
    report["legacy_kinds_all_equal"] = all(
        entry["legacy_kind"] == "#" for key, entry in report.items()
        if isinstance(entry, dict))
    report["calling_conventions_distinct"] = len(shapes) > 1
    return report
