"""``python -m repro`` — the command-line driver for ``.lev`` programs.

Subcommands:

* ``check file.lev [...]`` — run parse → infer → levity-check → defaulting
  over one or more files; print each binding's scheme (GHCi-style rep
  defaulting unless ``--explicit-reps``) and any diagnostics with source
  spans plus GHC-style caret snippets.  Exit status 1 when any file
  fails.  ``--jobs N`` shards the pending *bindings* across N worker
  processes; ``--cache PATH`` re-uses results per binding (keyed by the
  binding's source slice and the schemes of the bindings it uses, so one
  edit re-checks only its dependents); ``--stats`` prints per-binding
  timings and cache hit/miss counts.
* ``build DIR|file.lev [...]`` — check a multi-module project: files name
  themselves with ``module M where`` headers and see each other's exports
  through ``import N`` declarations.  The module DAG is walked level by
  level (import cycles are rejected with source spans); with ``--cache``
  the build is incremental across module boundaries — editing a function
  body without changing its exported scheme re-checks exactly one
  binding, and no importing module is even re-parsed.  ``--run`` then
  evaluates ``--entry`` over the merged project.  See docs/PROJECTS.md.
* ``run file.lev [...]`` — check, then evaluate ``--entry`` (default
  ``main``) on the cost-model machine; when the entry fits the L fragment
  it is also compiled via Figure 7 and cross-checked on the M machine.
  ``--compiled`` evaluates through the closure-compilation backend
  instead of the tree-walker; with ``--cache PATH`` the generated code is
  reused per binding (a warm run reports zero functions compiled).
  ``--stats`` reports the unified telemetry counters (solver, codegen,
  compiled runtime, evaluator cost model); with ``--json`` the result and
  counters are one machine-readable document.
* ``compile file.lev`` — check, lower the entry to the calculus L, compile
  to the machine language M, show the code, and run it.
* ``validate file.lev|DIR [...]`` — translation validation: record the L
  evaluator's step trace for each entry, compile every consecutive pair
  and discharge the Simulation theorem's joinability obligations, then
  compare the machine's final answer with the evaluator's (agreement on
  ⊥ included).  Reports the *first diverging step* on failure; exits
  nonzero only on genuine divergence (out-of-fragment entries are
  reported as skipped).  See docs/VALIDATION.md.

``check``/``run``/``compile`` also accept ``--trace out.json`` (or the
``REPRO_TRACE`` environment variable), which records the pipeline's spans
— parse, depgraph, unit.infer/unit.unify, cache.lookup, pool.shard,
codegen.lower, eval.run, including worker-process spans on their own pid
rows — as Chrome trace-event JSON loadable in Perfetto
(see docs/OBSERVABILITY.md).
* ``cache ACTION PATH`` — maintain a sharded result-cache directory
  (schema v4, ``docs/INCREMENTAL.md``): ``stats`` summarises per-table
  shard/entry/byte counts, ``verify`` structurally checks every shard
  (schema, key→shard assignment, payload shapes; exit 1 on problems),
  ``gc --max-age AGE`` drops entries not stored or consumed within AGE
  (``30d``, ``12h``, ``90m`` or plain seconds), and ``compact``
  rewrites shards canonically, dropping empties.
* ``repl`` — a small read-eval-print loop (declarations accumulate;
  ``:t expr`` shows a type; ``:q`` quits).
* ``fuzz`` — generate a corpus of random well-typed programs
  (``--seed``/``--count``/``--depth``), optionally dump it as ``.lev``
  files (``--emit DIR``) and/or run the differential harness over it
  (``--check``, sharded with ``--jobs``/``--cache``).  On a failure,
  ``--save-shrunk DIR`` writes a hypothesis-minimised reproducer.

Examples::

    python -m repro check examples/*.lev
    python -m repro run examples/sumto.lev
    python -m repro compile examples/unbox_apply.lev
    echo 'sumTo# 0# 10#' | python -m repro repl
    python -m repro fuzz --seed 0 --count 200 --check
    python -m repro fuzz --count 50 --emit /tmp/corpus
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .driver import DriverOptions, Session
from .telemetry import REGISTRY, TRACER, env_trace_path, stats_document


class _CliError(Exception):
    """A usage-level failure reported as one line, not a traceback."""


def _read_source(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as exc:
        raise _CliError(f"cannot read {path}: {exc.strerror or exc}") \
            from exc
    except UnicodeDecodeError as exc:
        raise _CliError(f"cannot decode {path}: {exc}") from exc


def _options(args: argparse.Namespace) -> DriverOptions:
    return DriverOptions(
        explicit_runtime_reps=getattr(args, "explicit_reps", False),
        run_levity_check=not getattr(args, "no_levity_check", False),
        compiled=getattr(args, "compiled", False))


def _check_json(results) -> str:
    payload = []
    for result in results:
        payload.append({
            "file": result.filename,
            "ok": result.ok,
            "bindings": [
                {"name": b.name, "type": b.rendered, "ok": b.ok,
                 "defaulted_rep_vars": list(b.defaulted_rep_vars)}
                for b in result.bindings],
            "diagnostics": [
                {"severity": d.severity, "stage": d.stage,
                 "message": d.message, "binding": d.binding,
                 "line": d.span.line if d.span else None,
                 "column": d.span.column if d.span else None}
                for d in result.diagnostics],
        })
    return json.dumps(payload, indent=2)


def _print_stats_text(stream, check_stats=None) -> None:
    print("-- stats --", file=stream)
    if check_stats is not None:
        print(check_stats.pretty(), file=stream)
    metrics = REGISTRY.pretty()
    if metrics:
        print("-- metrics --", file=stream)
        print(metrics, file=stream)


def _cmd_check(args: argparse.Namespace) -> int:
    from .driver.batch import CheckStats

    session = Session(_options(args))
    sources = [(path, _read_source(path)) for path in args.files]
    stats = CheckStats() if args.stats else None
    results = session.check_many(sources, jobs=args.jobs, cache=args.cache,
                                 stats=stats)
    source_of = dict(sources)
    if args.json:
        if stats is not None:
            # One machine-readable document: results plus the unified
            # telemetry snapshot (docs/OBSERVABILITY.md).
            document = {"results": json.loads(_check_json(results)),
                        "stats": stats_document(check=stats)}
            print(json.dumps(document, indent=2))
        else:
            print(_check_json(results))
    else:
        for result in results:
            # The source in hand enables GHC-style caret snippets under
            # span-carrying diagnostics.
            print(result.pretty(source=source_of.get(result.filename)))
        if stats is not None:
            _print_stats_text(sys.stdout, stats)
    return 0 if all(result.ok for result in results) else 1


def _cmd_build(args: argparse.Namespace) -> int:
    from .driver.batch import CheckStats
    from .driver.project import check_project, discover_sources, run_project

    session = Session(_options(args))
    try:
        sources = discover_sources(args.paths)
    except OSError as exc:
        raise _CliError(f"cannot read {exc.filename or '?'}: "
                        f"{exc.strerror or exc}") from exc
    except UnicodeDecodeError as exc:
        raise _CliError(f"cannot decode project source: {exc}") from exc
    if not sources:
        raise _CliError("no .lev files found under "
                        + ", ".join(args.paths))
    stats = CheckStats() if args.stats else None
    check = check_project(sources, jobs=args.jobs, cache=args.cache,
                          session=session, stats=stats)
    run_result = None
    if args.run and check.ok:
        run_result = run_project(session, check, entry=args.entry,
                                 cache=args.cache)

    source_of = dict(sources)
    if args.json:
        document = {
            "ok": check.ok,
            "modules": [
                {"file": node.filename, "module": node.name,
                 "level": node.level,
                 "imports": list(node.import_names)}
                for node in check.plan.nodes],
            "results": json.loads(_check_json(check.results)),
        }
        if run_result is not None:
            document["run"] = _run_json(run_result)
        if stats is not None:
            document["stats"] = stats_document(check=stats)
        print(json.dumps(document, indent=2))
    else:
        for result in check.results:
            text = result.pretty(source=source_of.get(result.filename))
            if text.strip():
                print(text)
        checkable = sum(len(level) for level in check.plan.levels)
        print(f"build: {len(sources)} module(s), "
              f"{len(check.plan.levels)} level(s), "
              f"{checkable} checked, "
              f"{len(check.plan.graph_diagnostics)} skipped")
        if run_result is not None:
            print(run_result.pretty())
        if stats is not None:
            _print_stats_text(sys.stdout, stats)
    ok = check.ok and (run_result is None or run_result.ok)
    return 0 if ok else 1


def _run_json(result) -> dict:
    payload = {
        "file": result.check.filename,
        "entry": result.entry,
        "ok": result.ok,
        "value": result.value,
        "codegen": {"compiled": result.codegen_compiled,
                    "cached": result.codegen_cached},
        "costs": result.costs,
        "diagnostics": [
            {"severity": d.severity, "stage": d.stage, "message": d.message,
             "binding": d.binding}
            for d in result.diagnostics],
    }
    if result.machine_value is not None:
        payload["machine"] = {"value": result.machine_value,
                              "steps": result.machine_steps,
                              "agrees": result.machine_agrees}
    return payload


def _cmd_run(args: argparse.Namespace) -> int:
    session = Session(_options(args))
    ok = True
    payloads = []
    for path in args.files:
        result = session.run(_read_source(path), path, entry=args.entry,
                             cache=args.cache)
        if args.json:
            payloads.append(_run_json(result))
        else:
            print(result.pretty())
        ok = ok and result.ok
    if args.json:
        if args.stats:
            print(json.dumps({"results": payloads,
                              "stats": stats_document()}, indent=2))
        else:
            print(json.dumps(payloads, indent=2))
    elif args.stats:
        _print_stats_text(sys.stdout)
    return 0 if ok else 1


def _cmd_compile(args: argparse.Namespace) -> int:
    session = Session(_options(args))
    result = session.compile(_read_source(args.file), args.file,
                             entry=args.entry)
    print(result.pretty())
    if args.stats:
        _print_stats_text(sys.stdout)
    return 0 if result.ok else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from .validate import validate_paths

    if args.align_steps < 0:
        raise _CliError("--align-steps must be non-negative")
    try:
        reports = validate_paths(args.paths, _options(args),
                                 entry=args.entry,
                                 align_steps=args.align_steps)
    except OSError as exc:
        raise _CliError(f"cannot read {exc.filename or '?'}: "
                        f"{exc.strerror or exc}") from exc
    if args.json:
        print(json.dumps([report.as_dict() for report in reports],
                         indent=2))
    else:
        for report in reports:
            print(report.pretty())
        engaged = sum(1 for report in reports if report.engaged)
        diverged = sum(1 for report in reports
                       if report.engaged and not report.ok)
        print(f"validate: {len(reports)} input(s), {engaged} engaged, "
              f"{diverged} divergence(s)")
    # Skips (out-of-fragment entries) are informational; only a genuine
    # divergence is a failure.
    return 1 if any(report.engaged and not report.ok
                    for report in reports) else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import (
        DifferentialHarness,
        GenOptions,
        generate_corpus,
        save_counterexample,
        shrink_counterexample,
    )

    if args.count <= 0:
        raise _CliError("--count must be positive")
    if args.max_bindings <= 0:
        raise _CliError("--max-bindings must be positive")
    if args.depth < 0:
        raise _CliError("--depth must be non-negative")
    if not 0.0 <= args.fragment_bias <= 1.0:
        raise _CliError("--fragment-bias must be between 0 and 1")
    gen_options = GenOptions(depth=args.depth,
                             max_bindings=args.max_bindings,
                             fragment_bias=args.fragment_bias)
    programs = generate_corpus(args.seed, args.count, gen_options)
    if args.emit:
        os.makedirs(args.emit, exist_ok=True)
        for program in programs:
            path = os.path.join(args.emit, program.filename)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(program.source)
        print(f"emitted {len(programs)} program(s) to {args.emit}")
    if not args.check:
        fragment = sum(1 for p in programs if p.fragment)
        total = sum(len(p.source) for p in programs)
        print(f"generated {len(programs)} program(s) "
              f"({fragment} in the L fragment, {total} bytes); "
              "pass --check to run the differential harness")
        return 0

    harness = DifferentialHarness(_options(args))
    report = harness.run_corpus(programs, jobs=args.jobs, cache=args.cache)
    print(report.pretty())
    if report.failures and args.save_shrunk:
        first = report.failures[0]
        probe = DifferentialHarness(_options(args))

        def still_fails(candidate) -> bool:
            return any(failure.oracle == first.oracle
                       for failure in probe.check_program(candidate))

        shrunk = shrink_counterexample(still_fails, gen_options)
        if shrunk is not None:
            path = save_counterexample(shrunk, args.save_shrunk, first.oracle)
            print(f"shrunk {first.oracle!r} reproducer saved to {path}")
        else:
            print("no shrunk reproducer found within the search budget")
    return 0 if report.ok else 1


def _parse_age(text: str) -> float:
    """An age in seconds from ``"30d"``/``"12h"``/``"90m"``/``"3600"``."""
    text = text.strip().lower()
    scale = 1.0
    if text.endswith("d"):
        scale, text = 24 * 3600.0, text[:-1]
    elif text.endswith("h"):
        scale, text = 3600.0, text[:-1]
    elif text.endswith("m"):
        scale, text = 60.0, text[:-1]
    elif text.endswith("s"):
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise _CliError(
            f"invalid --max-age {text!r} (expected e.g. 30d, 12h, 90m, "
            "or seconds)") from None
    if value < 0:
        raise _CliError("--max-age must be non-negative")
    return value * scale


def _cache_payload_validator():
    """One ``validator(key, payload)`` covering every key namespace."""
    from .driver.batch import (
        _codegen_payload_valid,
        _exports_payload_valid,
        _file_payload_valid,
        _outline_payload_valid,
        _unit_payload_valid,
    )
    from .driver.store import table_of

    validators = {
        # The unit table holds both per-unit and whole-file entries.
        "unit": lambda payload: (_unit_payload_valid(payload)
                                 or _file_payload_valid(payload)),
        "pfile": _file_payload_valid,
        "outline": _outline_payload_valid,
        "exports": _exports_payload_valid,
        "codegen": _codegen_payload_valid,
    }

    def validate(key: str, payload) -> bool:
        if not isinstance(payload, dict):
            return False
        checker = validators.get(table_of(key))
        return True if checker is None else checker(payload)

    return validate


def _cmd_cache(args: argparse.Namespace) -> int:
    from .driver.store import ShardStore

    if os.path.isfile(args.path):
        raise _CliError(
            f"{args.path} is a legacy monolithic cache document; it "
            "migrates (cold) the next time a check opens it — nothing "
            "to maintain yet")
    if not os.path.isdir(args.path):
        raise _CliError(f"no cache directory at {args.path}")
    store = ShardStore(args.path)
    if args.action == "stats":
        document = store.stats()
        if args.json:
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            print(f"cache {document['root']} (schema {document['schema']}): "
                  f"{document['entries']} entries in {document['shards']} "
                  f"shard file(s), {document['bytes']} bytes")
            for table, row in sorted(document["tables"].items()):
                print(f"  {table}: {row['entries']} entries, "
                      f"{row['shards']} shard(s), {row['bytes']} bytes")
        return 0
    if args.action == "verify":
        problems = store.verify(_cache_payload_validator())
        if args.json:
            print(json.dumps({"ok": not problems, "problems": problems},
                             indent=2))
        else:
            for problem in problems:
                print(problem)
            print(f"verify: {'ok' if not problems else 'FAILED'} "
                  f"({len(problems)} problem(s))")
        return 0 if not problems else 1
    if args.action == "gc":
        if args.max_age is None:
            raise _CliError("gc requires --max-age (e.g. --max-age 30d)")
        kept, dropped = store.gc(_parse_age(args.max_age))
        if args.json:
            print(json.dumps({"kept": kept, "dropped": dropped}))
        else:
            print(f"gc: kept {kept} entr(ies), dropped {dropped}")
        return 0
    assert args.action == "compact"
    document = store.compact()
    if args.json:
        print(json.dumps(document))
    else:
        print(f"compact: {document['bytes_before']} -> "
              f"{document['bytes_after']} bytes")
    return 0


def _cmd_repl(args: argparse.Namespace) -> int:
    session = Session(_options(args))
    interactive = sys.stdin.isatty()
    if interactive:
        print("repro repl — :t expr for types, :q to quit")
    while True:
        if interactive:
            sys.stdout.write("lev> ")
            sys.stdout.flush()
        line = sys.stdin.readline()
        if not line:
            break
        stripped = line.strip()
        if stripped in (":q", ":quit"):
            break
        output = session.repl_input(line)
        if output:
            print(output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Drive .lev surface programs through the levity-"
                    "polymorphism pipeline (parse, infer, levity-check, "
                    "compile, run).")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="type-check files")
    check.add_argument("files", nargs="+", help=".lev source files")
    check.add_argument("--explicit-reps", action="store_true",
                       help="print schemes with -fprint-explicit-runtime-reps")
    check.add_argument("--no-levity-check", action="store_true",
                       help="skip the Section 5.1 levity post-pass (ablation)")
    check.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")
    check.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="shard the files across N worker processes "
                            "(default: 1, in-process)")
    check.add_argument("--cache", default=None, metavar="PATH",
                       help="incremental result cache keyed per binding "
                            "(source slice + dependency schemes; see "
                            "docs/INCREMENTAL.md)")
    check.add_argument("--stats", action="store_true",
                       help="print per-binding check timings, cache "
                            "hit/miss counts, and the unified telemetry "
                            "counters")
    check.add_argument("--trace", default=None, metavar="PATH",
                       help="write pipeline spans (including worker "
                            "processes) as Chrome trace-event JSON, "
                            "loadable in Perfetto")
    check.set_defaults(func=_cmd_check)

    build = sub.add_parser(
        "build", help="check a multi-module project (module/import files; "
                      "see docs/PROJECTS.md)")
    build.add_argument("paths", nargs="+",
                       help="project directories (walked recursively for "
                            ".lev files) and/or individual .lev files")
    build.add_argument("--run", action="store_true",
                       help="after a clean build, evaluate --entry over the "
                            "merged project")
    build.add_argument("--entry", default="main",
                       help="entry binding for --run (default: main)")
    build.add_argument("--compiled", action="store_true",
                       help="with --run: evaluate through the closure-"
                            "compilation backend")
    build.add_argument("--explicit-reps", action="store_true",
                       help="print schemes with -fprint-explicit-runtime-reps")
    build.add_argument("--no-levity-check", action="store_true",
                       help="skip the Section 5.1 levity post-pass (ablation)")
    build.add_argument("--json", action="store_true",
                       help="emit one machine-readable JSON document "
                            "(module graph, per-file results, stats)")
    build.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="shard each DAG level's modules across N worker "
                            "processes (default: 1, in-process)")
    build.add_argument("--cache", default=None, metavar="PATH",
                       help="cross-module incremental cache: unit keys fold "
                            "in imported schemes, so a body-only edit "
                            "re-checks one unit and no dependent module "
                            "re-parses (docs/PROJECTS.md)")
    build.add_argument("--stats", action="store_true",
                       help="print unit/cache counters and the unified "
                            "telemetry metrics")
    build.add_argument("--trace", default=None, metavar="PATH",
                       help="write pipeline spans (project.graph, "
                            "module.resolve, workers) as Chrome trace-event "
                            "JSON")
    build.set_defaults(func=_cmd_build)

    run = sub.add_parser("run", help="check then evaluate an entry point")
    run.add_argument("files", nargs="+", help=".lev source files")
    run.add_argument("--entry", default="main",
                     help="entry binding to evaluate (default: main)")
    run.add_argument("--compiled", action="store_true",
                     help="evaluate through the closure-compilation "
                          "backend (docs/PERF.md) instead of the "
                          "tree-walker")
    run.add_argument("--cache", default=None, metavar="PATH",
                     help="with --compiled: per-binding codegen cache "
                          "(shares the check cache document); a warm run "
                          "reports zero functions compiled")
    run.add_argument("--explicit-reps", action="store_true")
    run.add_argument("--no-levity-check", action="store_true")
    run.add_argument("--stats", action="store_true",
                     help="report the unified telemetry counters (solver, "
                          "codegen, compiled runtime, cost model)")
    run.add_argument("--json", action="store_true",
                     help="emit machine-readable JSON (with --stats, one "
                          "document carrying results and counters)")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="write pipeline spans as Chrome trace-event JSON")
    run.set_defaults(func=_cmd_run)

    compile_ = sub.add_parser(
        "compile", help="lower the entry to L, compile to M, run the machine")
    compile_.add_argument("file", help=".lev source file")
    compile_.add_argument("--entry", default="main")
    compile_.add_argument("--explicit-reps", action="store_true")
    compile_.add_argument("--stats", action="store_true",
                          help="report the unified telemetry counters")
    compile_.add_argument("--trace", default=None, metavar="PATH",
                          help="write pipeline spans as Chrome trace-event "
                               "JSON")
    compile_.set_defaults(func=_cmd_compile)

    validate = sub.add_parser(
        "validate",
        help="translation-validate entries: per-step joinability discharge "
             "of the Simulation obligations (docs/VALIDATION.md)")
    validate.add_argument("paths", nargs="+",
                          help=".lev files and/or project directories")
    validate.add_argument("--entry", default="main",
                          help="entry binding to validate (default: main)")
    validate.add_argument("--align-steps", type=int, default=64,
                          metavar="N",
                          help="per-program cap on discharged per-step "
                               "obligations; the end-to-end answer "
                               "comparison is never capped (default: 64)")
    validate.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON reports")
    validate.add_argument("--explicit-reps", action="store_true")
    validate.add_argument("--no-levity-check", action="store_true")
    validate.set_defaults(func=_cmd_validate)

    cache = sub.add_parser(
        "cache", help="maintain a sharded result-cache directory "
                      "(stats / verify / gc / compact)")
    cache.add_argument("action", choices=["stats", "verify", "gc",
                                          "compact"],
                       help="stats: per-table shard/entry/byte counts; "
                            "verify: structural + payload-shape check "
                            "(exit 1 on problems); gc: drop entries older "
                            "than --max-age; compact: rewrite shards "
                            "canonically, dropping empties")
    cache.add_argument("path", help="the cache directory (a --cache PATH)")
    cache.add_argument("--max-age", default=None, metavar="AGE",
                       help="for gc: maximum entry age — 30d, 12h, 90m, "
                            "or plain seconds")
    cache.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")
    cache.set_defaults(func=_cmd_cache)

    repl = sub.add_parser("repl", help="interactive read-eval-print loop")
    repl.add_argument("--explicit-reps", action="store_true")
    repl.add_argument("--compiled", action="store_true",
                      help="evaluate expressions through the closure-"
                           "compilation backend")
    repl.set_defaults(func=_cmd_repl)

    fuzz = sub.add_parser(
        "fuzz", help="generate random well-typed programs and "
                     "differentially check them (see docs/FUZZ.md)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="corpus seed (program i depends only on "
                           "(seed, i); default: 0)")
    fuzz.add_argument("--count", type=int, default=100, metavar="N",
                      help="number of programs to generate (default: 100)")
    fuzz.add_argument("--depth", type=int, default=4,
                      help="maximum expression depth (default: 4)")
    fuzz.add_argument("--max-bindings", type=int, default=4, metavar="N",
                      help="maximum helper bindings per program (default: 4)")
    fuzz.add_argument("--fragment-bias", type=float, default=0.3,
                      metavar="P",
                      help="share of programs generated inside the "
                           "compilable L fragment (default: 0.3)")
    fuzz.add_argument("--check", action="store_true",
                      help="run the differential harness (type-check, "
                           "round-trip, evaluator vs reference vs M machine)")
    fuzz.add_argument("--emit", default=None, metavar="DIR",
                      help="write the corpus as .lev files usable by "
                           "'repro check'")
    fuzz.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="shard the type-check pass across N workers")
    fuzz.add_argument("--cache", default=None, metavar="PATH",
                      help="incremental result cache for the type-check "
                           "pass (docs/BATCH.md)")
    fuzz.add_argument("--save-shrunk", default=None, metavar="DIR",
                      help="on failure, save a hypothesis-shrunk minimal "
                           ".lev reproducer under DIR")
    fuzz.add_argument("--explicit-reps", action="store_true")
    fuzz.add_argument("--no-levity-check", action="store_true")
    fuzz.add_argument("--compiled", action="store_true",
                      help="run the evaluator oracle through the closure-"
                           "compilation backend")
    fuzz.set_defaults(func=_cmd_fuzz)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace_out = getattr(args, "trace", None) or env_trace_path()
    if trace_out:
        TRACER.enable()
    if getattr(args, "stats", False):
        # Switch on the hot-path runtime counters too (fold-point
        # counters publish regardless).
        REGISTRY.enable()
    try:
        code = args.func(args)
        if trace_out:
            TRACER.write(trace_out)
        return code
    except _CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `| head`); exit quietly without
        # tripping the interpreter's flush-at-exit traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
