"""A single process-wide metrics registry for the whole pipeline.

Before this module existed the pipeline's counters were scattered:
union-find ops lived on each ``UnifierState``, per-unit hit/miss on
``CheckStats``, pool reuse on ``Session.pool_stats``, codegen counts on
``CompiledProgram``, and benchmarks reached into module internals to read
them.  The :class:`MetricsRegistry` absorbs all of them under namespaced
metric names (``solver.*``, ``cache.*``, ``cache.store.*`` for the
sharded on-disk store, ``batch.*``, ``pool.*``, ``codegen.*``,
``runtime.*``, ``eval.*`` — see docs/OBSERVABILITY.md) and emits one
machine-readable document via :meth:`MetricsRegistry.snapshot`.

Cost model:

* *Fold points* (once per binding / per program / per run) publish
  unconditionally — a handful of dict lookups per unit of work.
* *Hot-path counters* (compiled-call entry, trampoline bounces, per-force
  paths) are guarded by the single ``REGISTRY.enabled`` flag so the
  disabled pipeline pays one attribute load + branch, nothing more.

``reset()`` zeroes every metric **in place**: callers that cached a
``Counter`` reference (hot loops do) keep counting into the same object
after a reset, which is what lets benchmark sections share one process
without leaking counts into each other.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional


class Counter:
    """A monotonically increasing count (between resets)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """Summary statistics over observed values (no buckets)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.reset()

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def summary(self) -> Dict[str, Any]:
        mean = self.total / self.count if self.count else 0
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max, "mean": mean}


class MetricsRegistry:
    """Name → metric map with get-or-create accessors.

    Metric identity is stable across :meth:`reset` — the registry never
    discards a metric object once created, it only zeroes it — so hot
    loops may hoist ``REGISTRY.counter("runtime.trampoline_bounces")``
    out of the loop and keep the reference forever.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self):
        #: Gates *hot-path* counters only (compiled-call entry, trampoline
        #: bounces).  Fold-point publishing ignores this flag.
        self.enabled = False
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def enable(self) -> None:
        self.enabled = True

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value) -> None:
        self.histogram(name).observe(value)

    def merge_counts(self, counts: Mapping[str, Any],
                     prefix: str = "") -> None:
        """Fold a plain ``name -> count`` mapping into the counters.

        The fold point for legacy per-object stat dicts
        (``UnifierStats.as_dict()``, ``CostModel`` counters, …).
        """
        for name, value in counts.items():
            self.counter(prefix + name).inc(value)

    # -- reporting -----------------------------------------------------------

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """Current counter values under one namespace (``"cache.store."``,
        ``"solver."``, …) — the benchmark-recording affordance, so benches
        capture a layer's counters without snapshotting everything."""
        return {name: metric.value
                for name, metric in sorted(self._counters.items())
                if name.startswith(prefix)}

    def snapshot(self) -> Dict[str, Any]:
        """One nested, JSON-ready document of every live metric."""
        doc: Dict[str, Any] = {
            "counters": {name: metric.value
                         for name, metric in sorted(self._counters.items())},
            "gauges": {name: metric.value
                       for name, metric in sorted(self._gauges.items())},
        }
        if self._histograms:
            doc["histograms"] = {
                name: metric.summary()
                for name, metric in sorted(self._histograms.items())}
        return doc

    def reset(self) -> None:
        """Zero every metric in place (identities survive — see class doc)."""
        for metric in self._counters.values():
            metric.reset()
        for metric in self._gauges.values():
            metric.reset()
        for metric in self._histograms.values():
            metric.reset()

    def pretty(self, indent: str = "  ") -> str:
        """Human-readable dump for the ``--stats`` text path."""
        lines = []
        snapshot = self.snapshot()
        for name, value in snapshot["counters"].items():
            lines.append(f"{indent}{name}: {value}")
        for name, value in snapshot["gauges"].items():
            lines.append(f"{indent}{name}: {value}")
        for name, summary in snapshot.get("histograms", {}).items():
            lines.append(
                f"{indent}{name}: count={summary['count']} "
                f"mean={summary['mean']:.6g} min={summary['min']} "
                f"max={summary['max']}")
        return "\n".join(lines)


#: The process-global registry every layer publishes into.
REGISTRY = MetricsRegistry()


def stats_document(check: Optional[Any] = None) -> Dict[str, Any]:
    """The unified ``--stats --json`` payload.

    ``check`` is an optional ``CheckStats``-like object exposing
    ``as_dict()`` (kept duck-typed so this module stays dependency-free).
    """
    doc: Dict[str, Any] = {"schema": 1, "metrics": REGISTRY.snapshot()}
    if check is not None:
        doc["check"] = check.as_dict()
    return doc
