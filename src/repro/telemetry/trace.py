"""Process-local tracing with Chrome trace-event export.

The :class:`Tracer` records nested duration spans (``ph: "B"`` / ``"E"``
events in the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_)
and exports them as a single JSON document loadable in Perfetto or
``chrome://tracing``.

Design constraints (see docs/OBSERVABILITY.md):

* **Zero dependency** — stdlib only, importable from every layer
  (``infer``, ``runtime``, ``driver``) without cycles.
* **Near-zero cost when off** — hot call sites guard on the single
  ``tracer.enabled`` attribute; :meth:`Tracer.span` returns a
  preallocated no-op singleton when disabled so a stray unguarded call
  allocates nothing.
* **Multi-process** — worker processes run their own tracer and ship
  ``worker_payload()`` back through the existing shard IPC result;
  the parent rebases those events onto its own timeline using the
  wall-clock epoch delta, so worker rows appear under distinct pids at
  the correct position inside their ``pool.shard`` window.

Timestamps are microseconds (floats) relative to the tracer's
``perf_counter`` epoch; ``epoch_wall`` (``time.time()`` captured at the
same instant) is what makes cross-process rebasing possible.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

#: Environment variable that opts the process into tracing.  Any non-empty
#: value enables the tracer; if the value looks like a file path (it is not
#: just ``1``/``true``/``yes``/``on``) the CLI writes the export there on
#: exit unless ``--trace`` named an explicit destination.
TRACE_ENV = "REPRO_TRACE"

#: Synthetic tid base for ``pool.shard`` dispatch rows: shard *i* is drawn
#: on tid ``SHARD_TID_BASE + i`` of the parent process so the dispatch
#: windows (which overlap each other by design) never violate the B/E
#: stack discipline of the main thread's tid 0 row.
SHARD_TID_BASE = 1000


class _NoopSpan:
    """Singleton context manager returned by a disabled tracer.

    ``__enter__``/``__exit__`` on a preallocated instance allocate
    nothing, which the telemetry tests pin with a gc-count assertion.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """Context manager emitting a matched B/E event pair."""

    __slots__ = ("_tracer", "_name", "_tid")

    def __init__(self, tracer: "Tracer", name: str, tid: int,
                 args: Optional[Dict[str, Any]]):
        self._tracer = tracer
        self._name = name
        self._tid = tid
        tracer._emit("B", name, tid, args)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self._tracer._emit("E", self._name, self._tid, None)
        return False


class Tracer:
    """Collects Chrome trace events for one process.

    All spans are attributed to this process's pid; ``tid`` defaults to 0
    (the logical main thread) but callers may draw on synthetic tids (see
    :data:`SHARD_TID_BASE`) for rows that intentionally overlap.
    """

    __slots__ = ("enabled", "pid", "epoch_wall", "_epoch_pc", "_events",
                 "process_name")

    def __init__(self, process_name: str = "repro"):
        self.enabled = False
        self.process_name = process_name
        self._events: List[Dict[str, Any]] = []
        self._rebase_clocks()

    # -- lifecycle -----------------------------------------------------------

    def _rebase_clocks(self) -> None:
        self.pid = os.getpid()
        self._epoch_pc = time.perf_counter()
        self.epoch_wall = time.time()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self, process_name: Optional[str] = None) -> None:
        """Drop all events and re-anchor the clocks to *now*.

        Worker processes **must** call this from their initializer: under
        the ``fork`` start method the child inherits the parent tracer's
        event buffer and epoch, and without a reset the parent's events
        would be shipped back (duplicated) in the worker payload.
        """
        if process_name is not None:
            self.process_name = process_name
        self._events = []
        self._rebase_clocks()

    # -- recording -----------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch_pc) * 1e6

    def _emit(self, ph: str, name: str, tid: int,
              args: Optional[Dict[str, Any]]) -> None:
        event: Dict[str, Any] = {
            "name": name,
            "ph": ph,
            "ts": self._now_us(),
            "pid": self.pid,
            "tid": tid,
            "cat": "repro",
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def begin(self, name: str, tid: int = 0, **args: Any) -> None:
        """Open a span (must be closed with a matching :meth:`end`)."""
        if self.enabled:
            self._emit("B", name, tid, args or None)

    def end(self, name: str, tid: int = 0) -> None:
        if self.enabled:
            self._emit("E", name, tid, None)

    def span(self, name: str, tid: int = 0, **args: Any):
        """Context manager span; a no-op singleton when disabled."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, tid, args or None)

    def instant(self, name: str, tid: int = 0, **args: Any) -> None:
        """A zero-duration marker (``ph: "i"``)."""
        if self.enabled:
            event = {"name": name, "ph": "i", "ts": self._now_us(),
                     "pid": self.pid, "tid": tid, "cat": "repro", "s": "t"}
            if args:
                event["args"] = args
            self._events.append(event)

    # -- export / merging ----------------------------------------------------

    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear the buffered events."""
        events, self._events = self._events, []
        return events

    def worker_payload(self) -> Dict[str, Any]:
        """The per-shard IPC payload a worker ships back to the parent."""
        return {
            "pid": self.pid,
            "epoch_wall": self.epoch_wall,
            "process_name": self.process_name,
            "events": self.drain(),
        }

    def merge_worker(self, payload: Optional[Dict[str, Any]]) -> None:
        """Fold a worker's events onto this tracer's timeline.

        Worker timestamps are relative to the *worker's* perf_counter
        epoch; the wall-clock delta between the two epochs rebases them
        onto the parent timeline.  Events keep the worker's pid, which is
        what gives each worker its own process row in Perfetto.
        """
        if not payload or not payload.get("events"):
            return
        delta_us = (payload["epoch_wall"] - self.epoch_wall) * 1e6
        name = payload.get("process_name") or "repro worker"
        pids = set()
        for event in payload["events"]:
            event = dict(event)
            event["ts"] = event["ts"] + delta_us
            pids.add(event["pid"])
            self._events.append(event)
        for pid in pids:
            self._events.append({
                "name": "process_name", "ph": "M", "ts": 0.0,
                "pid": pid, "tid": 0, "args": {"name": name},
            })

    def export(self) -> Dict[str, Any]:
        """The full Chrome trace-event document (object form)."""
        metadata = [{
            "name": "process_name", "ph": "M", "ts": 0.0,
            "pid": self.pid, "tid": 0,
            "args": {"name": self.process_name},
        }]
        return {
            "traceEvents": metadata + list(self._events),
            "displayTimeUnit": "ms",
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.export(), handle)
            handle.write("\n")


def validate_events(events: List[Dict[str, Any]]) -> None:
    """Check a list of trace events for Chrome trace-event well-formedness.

    Raises :class:`ValueError` describing the first problem found:

    * every event carries ``name``/``ph``/``ts``/``pid``/``tid``;
    * per ``(pid, tid)`` row, B/E events obey stack discipline — every
      ``E`` closes the most recent open ``B`` of the same name (which is
      exactly "no overlapping siblings"), and no ``B`` is left open.
    """
    stacks: Dict[Any, List[Any]] = {}
    for event in events:
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event missing {key!r}: {event!r}")
        ph = event["ph"]
        if ph in ("M", "i"):
            continue
        if ph not in ("B", "E"):
            raise ValueError(f"unexpected phase {ph!r}: {event!r}")
        row = (event["pid"], event["tid"])
        stack = stacks.setdefault(row, [])
        if ph == "B":
            stack.append((event["name"], event["ts"]))
        else:
            if not stack:
                raise ValueError(
                    f"E event with no open span on row {row}: {event!r}")
            open_name, open_ts = stack.pop()
            if open_name != event["name"]:
                raise ValueError(
                    f"E {event['name']!r} closes open span {open_name!r} "
                    f"on row {row} (overlapping siblings)")
            if event["ts"] < open_ts:
                raise ValueError(
                    f"E {event['name']!r} ends before it begins on row "
                    f"{row}")
    for row, stack in stacks.items():
        if stack:
            raise ValueError(
                f"unclosed span(s) {[name for name, _ in stack]!r} "
                f"on row {row}")


def validate_trace_document(doc: Any) -> List[Dict[str, Any]]:
    """Validate a full export document; returns its event list."""
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace document must be an object with traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    validate_events(events)
    return events


def env_trace_path() -> Optional[str]:
    """The output path implied by ``REPRO_TRACE``, if it names one."""
    value = os.environ.get(TRACE_ENV, "")
    if value and value.lower() not in ("1", "true", "yes", "on"):
        return value
    return None


#: The process-global tracer.  Disabled by default; the CLI (``--trace``)
#: or the ``REPRO_TRACE`` environment variable switches it on.
TRACER = Tracer()

if os.environ.get(TRACE_ENV):
    TRACER.enable()
