"""repro.telemetry — zero-dependency tracing + metrics for the pipeline.

Two process-global singletons:

* :data:`TRACER` — nested spans exported as Chrome trace-event JSON
  (``--trace out.json``, loadable in Perfetto); worker-process spans are
  shipped back through the shard IPC payload and rebased onto the parent
  timeline with their own pid rows.
* :data:`REGISTRY` — the unified Counter/Gauge/Histogram registry that
  absorbs the pipeline's formerly scattered counters (solver ops, cache
  hit/miss, pool reuse, codegen, compiled-runtime calls).

Both are off by default and near-free when off; see docs/OBSERVABILITY.md
for the span taxonomy and metric names.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    stats_document,
)
from .trace import (
    SHARD_TID_BASE,
    TRACE_ENV,
    TRACER,
    Tracer,
    env_trace_path,
    validate_events,
    validate_trace_document,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "stats_document",
    "SHARD_TID_BASE",
    "TRACE_ENV",
    "TRACER",
    "Tracer",
    "env_trace_path",
    "validate_events",
    "validate_trace_document",
]
