"""The pre-union-find unifier, kept as the measured perf baseline.

This is the original dictionary-chasing solver that shipped with the seed of
this reproduction: solutions live in plain ``{name: term}`` dictionaries,
``zonk_*`` re-walks entire type trees on every call, and solution chains
(``α0 := α1, α1 := α2, …``) are followed link by link — which makes zonking
a chain of *n* variables O(n) per query and the deep-chain workload
quadratic overall.

The production solver (:mod:`repro.infer.unify`) replaces this with
union-find + interned terms.  This module exists so that
``benchmarks/bench_e11_unifier_stress.py`` can measure an honest wall-clock
speedup against the very code it replaced, on the same workloads, in the
same process.  Do not use it outside the benchmark harness.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.errors import OccursCheckError, UnificationError
from ..core.kinds import ArrowKind, Kind, KindVar, TypeKind
from ..core.rep import Rep, RepVar, SumRep, TupleRep
from ..surface.types import (
    ForAllTy,
    FunTy,
    QualTy,
    SType,
    TyApp,
    TyCon,
    TyUVar,
    TyVar,
    UnboxedTupleTy,
)


@dataclass
class LegacyUnifierState:
    """Mutable solver state: solutions for all three sorts of variables."""

    type_solutions: Dict[str, SType] = field(default_factory=dict)
    rep_solutions: Dict[str, Rep] = field(default_factory=dict)
    kind_solutions: Dict[str, Kind] = field(default_factory=dict)
    rep_uvar_names: set = field(default_factory=set)
    _counter: "itertools.count" = field(default_factory=itertools.count)

    # -- fresh variables -----------------------------------------------------

    def fresh_rep_uvar(self, prefix: str = "rho") -> RepVar:
        var = RepVar(f"{prefix}{next(self._counter)}", unification=True)
        self.rep_uvar_names.add(var.name)
        return var

    def is_rep_uvar(self, name: str) -> bool:
        return name in self.rep_uvar_names

    def fresh_type_uvar(self, kind: Optional[Kind] = None,
                        prefix: str = "alpha") -> TyUVar:
        if kind is None:
            kind = TypeKind(self.fresh_rep_uvar())
        return TyUVar(f"{prefix}{next(self._counter)}", kind)

    def fresh_kind_uvar(self, prefix: str = "kappa") -> KindVar:
        return KindVar(f"{prefix}{next(self._counter)}", unification=True)

    # -- zonking ---------------------------------------------------------------

    def zonk_rep(self, rep: Rep) -> Rep:
        return rep.zonk(self.rep_solutions.get)

    def zonk_kind(self, kind: Kind) -> Kind:
        if isinstance(kind, TypeKind):
            return TypeKind(self.zonk_rep(kind.rep))
        if isinstance(kind, ArrowKind):
            return ArrowKind(self.zonk_kind(kind.argument),
                             self.zonk_kind(kind.result))
        if isinstance(kind, KindVar):
            solution = self.kind_solutions.get(kind.name)
            if solution is None:
                return kind
            return self.zonk_kind(solution)
        return kind

    def zonk_type(self, type_: SType) -> SType:
        if isinstance(type_, TyUVar):
            solution = self.type_solutions.get(type_.name)
            if solution is not None:
                return self.zonk_type(solution)
            return TyUVar(type_.name, self.zonk_kind(type_.kind))
        if isinstance(type_, TyVar):
            return TyVar(type_.name, self.zonk_kind(type_.kind))
        if isinstance(type_, TyCon):
            return TyCon(type_.name, self.zonk_kind(type_.kind))
        if isinstance(type_, FunTy):
            return FunTy(self.zonk_type(type_.argument),
                         self.zonk_type(type_.result))
        if isinstance(type_, TyApp):
            return TyApp(self.zonk_type(type_.function),
                         self.zonk_type(type_.argument))
        if isinstance(type_, UnboxedTupleTy):
            return UnboxedTupleTy(self.zonk_type(c)
                                  for c in type_.components)
        if isinstance(type_, ForAllTy):
            return ForAllTy(type_.binders, self.zonk_type(type_.body))
        if isinstance(type_, QualTy):
            from ..surface.types import ClassConstraint
            constraints = tuple(
                ClassConstraint(c.class_name, self.zonk_type(c.argument))
                for c in type_.constraints)
            return QualTy(constraints, self.zonk_type(type_.body))
        return type_

    # -- representation unification --------------------------------------------

    def unify_reps(self, rep1: Rep, rep2: Rep) -> None:
        rep1 = self.zonk_rep(rep1)
        rep2 = self.zonk_rep(rep2)
        if rep1 == rep2:
            return
        if isinstance(rep1, RepVar) and rep1.unification:
            self._bind_rep(rep1, rep2)
            return
        if isinstance(rep2, RepVar) and rep2.unification:
            self._bind_rep(rep2, rep1)
            return
        if isinstance(rep1, TupleRep) and isinstance(rep2, TupleRep):
            if len(rep1.reps) != len(rep2.reps):
                raise UnificationError(
                    f"unboxed tuple representations have different arities: "
                    f"{rep1.pretty()} vs {rep2.pretty()}")
            for left, right in zip(rep1.reps, rep2.reps):
                self.unify_reps(left, right)
            return
        if isinstance(rep1, SumRep) and isinstance(rep2, SumRep):
            if len(rep1.alternatives) != len(rep2.alternatives):
                raise UnificationError(
                    f"unboxed sum representations have different arities: "
                    f"{rep1.pretty()} vs {rep2.pretty()}")
            for left, right in zip(rep1.alternatives, rep2.alternatives):
                self.unify_reps(left, right)
            return
        raise UnificationError(
            f"cannot unify runtime representations {rep1.pretty()} and "
            f"{rep2.pretty()}: the types have different memory layouts / "
            "calling conventions")

    def _bind_rep(self, var: RepVar, rep: Rep) -> None:
        if var.name in rep.free_rep_vars():
            raise OccursCheckError(
                f"representation variable {var.name} occurs in "
                f"{rep.pretty()}")
        self.rep_solutions[var.name] = rep

    # -- kind unification --------------------------------------------------------

    def unify_kinds(self, kind1: Kind, kind2: Kind) -> None:
        kind1 = self.zonk_kind(kind1)
        kind2 = self.zonk_kind(kind2)
        if kind1 == kind2:
            return
        if isinstance(kind1, KindVar) and kind1.unification:
            self.kind_solutions[kind1.name] = kind2
            return
        if isinstance(kind2, KindVar) and kind2.unification:
            self.kind_solutions[kind2.name] = kind1
            return
        if isinstance(kind1, TypeKind) and isinstance(kind2, TypeKind):
            self.unify_reps(kind1.rep, kind2.rep)
            return
        if isinstance(kind1, ArrowKind) and isinstance(kind2, ArrowKind):
            self.unify_kinds(kind1.argument, kind2.argument)
            self.unify_kinds(kind1.result, kind2.result)
            return
        raise UnificationError(
            f"cannot unify kinds {kind1.pretty()} and {kind2.pretty()}")

    # -- type unification ----------------------------------------------------------

    def unify_types(self, type1: SType, type2: SType) -> None:
        type1 = self.zonk_type(type1)
        type2 = self.zonk_type(type2)

        if isinstance(type1, TyUVar):
            self._bind_type(type1, type2)
            return
        if isinstance(type2, TyUVar):
            self._bind_type(type2, type1)
            return

        if isinstance(type1, TyCon) and isinstance(type2, TyCon):
            if type1.name != type2.name:
                raise UnificationError(
                    f"cannot match {type1.name} with {type2.name}")
            return
        if isinstance(type1, TyVar) and isinstance(type2, TyVar):
            if type1.name != type2.name:
                raise UnificationError(
                    f"cannot match rigid type variables {type1.name} and "
                    f"{type2.name}")
            return
        if isinstance(type1, FunTy) and isinstance(type2, FunTy):
            self.unify_types(type1.argument, type2.argument)
            self.unify_types(type1.result, type2.result)
            return
        if isinstance(type1, TyApp) and isinstance(type2, TyApp):
            self.unify_types(type1.function, type2.function)
            self.unify_types(type1.argument, type2.argument)
            return
        if (isinstance(type1, UnboxedTupleTy)
                and isinstance(type2, UnboxedTupleTy)):
            if len(type1.components) != len(type2.components):
                raise UnificationError(
                    "unboxed tuples have different arities: "
                    f"{type1.pretty()} vs {type2.pretty()}")
            for left, right in zip(type1.components, type2.components):
                self.unify_types(left, right)
            return

        raise UnificationError(
            f"cannot unify {type1.pretty()} with {type2.pretty()}")

    def _bind_type(self, var: TyUVar, type_: SType) -> None:
        if isinstance(type_, TyUVar) and type_.name == var.name:
            return
        if var.name in type_.free_uvars():
            raise OccursCheckError(
                f"type variable {var.name} occurs in {type_.pretty()} "
                "(infinite type)")
        from ..surface.types import kind_of_type
        self.unify_kinds(var.kind, kind_of_type(type_))
        self.type_solutions[var.name] = type_

    # -- queries --------------------------------------------------------------------

    def unsolved_rep_uvars_in(self, type_: SType) -> frozenset:
        zonked = self.zonk_type(type_)
        return frozenset(
            name for name in zonked.free_rep_vars()
            if name not in self.rep_solutions)
