"""Unification of types, kinds and runtime representations (Section 5.2).

The paper observes that phrasing "which concrete instantiation of ``TYPE``?"
as the choice of a ``Rep`` is a boon for type inference: when GHC checks
``λx → e`` it invents a type unification variable ``α`` *and* a
representation unification variable ``ρ`` with ``α :: TYPE ρ``, and ordinary
unification does the rest.  This module provides exactly that machinery:

* :class:`UnifierState` — the store of solutions for type unification
  variables (``TyUVar``), representation unification variables
  (``RepVar(unification=True)``) and kind unification variables;
* ``unify_types`` / ``unify_kinds`` / ``unify_reps`` — first-order
  unification with occurs checks;
* ``zonk_*`` — replace solved variables by their solutions, the analogue of
  GHC's *zonking* (Section 8.2 notes that levity checks must happen on
  zonked types).

In GHC the solutions live in mutable cells inside the variables themselves;
here they live in explicit dictionaries, which keeps the type ASTs immutable
and makes the tests easier to write, but the observable behaviour is the
same.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.errors import OccursCheckError, UnificationError
from ..core.kinds import (
    ArrowKind,
    ConstraintKind,
    Kind,
    KindVar,
    RepKind,
    TypeKind,
)
from ..core.rep import LIFTED, Rep, RepVar, SumRep, TupleRep
from ..surface.types import (
    ForAllTy,
    FunTy,
    QualTy,
    SType,
    TyApp,
    TyCon,
    TyUVar,
    TyVar,
    UnboxedTupleTy,
)


@dataclass
class UnifierState:
    """Mutable solver state: solutions for all three sorts of variables."""

    type_solutions: Dict[str, SType] = field(default_factory=dict)
    rep_solutions: Dict[str, Rep] = field(default_factory=dict)
    kind_solutions: Dict[str, Kind] = field(default_factory=dict)
    rep_uvar_names: set = field(default_factory=set)
    _counter: "itertools.count" = field(default_factory=itertools.count)

    # -- fresh variables -----------------------------------------------------

    def fresh_rep_uvar(self, prefix: str = "rho") -> RepVar:
        """A fresh representation unification variable ``ρ``."""
        var = RepVar(f"{prefix}{next(self._counter)}", unification=True)
        self.rep_uvar_names.add(var.name)
        return var

    def is_rep_uvar(self, name: str) -> bool:
        """Was ``name`` created by :meth:`fresh_rep_uvar` (vs. a rigid var)?"""
        return name in self.rep_uvar_names

    def fresh_type_uvar(self, kind: Optional[Kind] = None,
                        prefix: str = "alpha") -> TyUVar:
        """A fresh type unification variable ``α :: kind``.

        When no kind is supplied, a fresh ``TYPE ρ`` kind is invented — the
        Section 5.2 recipe.
        """
        if kind is None:
            kind = TypeKind(self.fresh_rep_uvar())
        return TyUVar(f"{prefix}{next(self._counter)}", kind)

    def fresh_kind_uvar(self, prefix: str = "kappa") -> KindVar:
        return KindVar(f"{prefix}{next(self._counter)}", unification=True)

    # -- zonking ---------------------------------------------------------------

    def zonk_rep(self, rep: Rep) -> Rep:
        """Replace solved representation variables by their solutions."""
        return rep.zonk(self.rep_solutions.get)

    def zonk_kind(self, kind: Kind) -> Kind:
        if isinstance(kind, TypeKind):
            return TypeKind(self.zonk_rep(kind.rep))
        if isinstance(kind, ArrowKind):
            return ArrowKind(self.zonk_kind(kind.argument),
                             self.zonk_kind(kind.result))
        if isinstance(kind, KindVar):
            solution = self.kind_solutions.get(kind.name)
            if solution is None:
                return kind
            return self.zonk_kind(solution)
        return kind

    def zonk_type(self, type_: SType) -> SType:
        if isinstance(type_, TyUVar):
            solution = self.type_solutions.get(type_.name)
            if solution is not None:
                return self.zonk_type(solution)
            return TyUVar(type_.name, self.zonk_kind(type_.kind))
        if isinstance(type_, TyVar):
            return TyVar(type_.name, self.zonk_kind(type_.kind))
        if isinstance(type_, TyCon):
            return TyCon(type_.name, self.zonk_kind(type_.kind))
        if isinstance(type_, FunTy):
            return FunTy(self.zonk_type(type_.argument),
                         self.zonk_type(type_.result))
        if isinstance(type_, TyApp):
            return TyApp(self.zonk_type(type_.function),
                         self.zonk_type(type_.argument))
        if isinstance(type_, UnboxedTupleTy):
            return UnboxedTupleTy(self.zonk_type(c)
                                  for c in type_.components)
        if isinstance(type_, ForAllTy):
            return ForAllTy(type_.binders, self.zonk_type(type_.body))
        if isinstance(type_, QualTy):
            from ..surface.types import ClassConstraint
            constraints = tuple(
                ClassConstraint(c.class_name, self.zonk_type(c.argument))
                for c in type_.constraints)
            return QualTy(constraints, self.zonk_type(type_.body))
        return type_

    # -- representation unification --------------------------------------------

    def unify_reps(self, rep1: Rep, rep2: Rep) -> None:
        """Unify two runtime representations."""
        rep1 = self.zonk_rep(rep1)
        rep2 = self.zonk_rep(rep2)
        if rep1 == rep2:
            return
        if isinstance(rep1, RepVar) and rep1.unification:
            self._bind_rep(rep1, rep2)
            return
        if isinstance(rep2, RepVar) and rep2.unification:
            self._bind_rep(rep2, rep1)
            return
        if isinstance(rep1, TupleRep) and isinstance(rep2, TupleRep):
            if len(rep1.reps) != len(rep2.reps):
                raise UnificationError(
                    f"unboxed tuple representations have different arities: "
                    f"{rep1.pretty()} vs {rep2.pretty()}")
            for left, right in zip(rep1.reps, rep2.reps):
                self.unify_reps(left, right)
            return
        if isinstance(rep1, SumRep) and isinstance(rep2, SumRep):
            if len(rep1.alternatives) != len(rep2.alternatives):
                raise UnificationError(
                    f"unboxed sum representations have different arities: "
                    f"{rep1.pretty()} vs {rep2.pretty()}")
            for left, right in zip(rep1.alternatives, rep2.alternatives):
                self.unify_reps(left, right)
            return
        raise UnificationError(
            f"cannot unify runtime representations {rep1.pretty()} and "
            f"{rep2.pretty()}: the types have different memory layouts / "
            "calling conventions")

    def _bind_rep(self, var: RepVar, rep: Rep) -> None:
        if var.name in rep.free_rep_vars():
            raise OccursCheckError(
                f"representation variable {var.name} occurs in "
                f"{rep.pretty()}")
        self.rep_solutions[var.name] = rep

    # -- kind unification --------------------------------------------------------

    def unify_kinds(self, kind1: Kind, kind2: Kind) -> None:
        """Unify two kinds.

        Under the old sub-kinding story this is where ``OpenKind`` magic
        lived; with levity polymorphism it is plain structural unification
        that bottoms out in :meth:`unify_reps`.
        """
        kind1 = self.zonk_kind(kind1)
        kind2 = self.zonk_kind(kind2)
        if kind1 == kind2:
            return
        if isinstance(kind1, KindVar) and kind1.unification:
            self.kind_solutions[kind1.name] = kind2
            return
        if isinstance(kind2, KindVar) and kind2.unification:
            self.kind_solutions[kind2.name] = kind1
            return
        if isinstance(kind1, TypeKind) and isinstance(kind2, TypeKind):
            self.unify_reps(kind1.rep, kind2.rep)
            return
        if isinstance(kind1, ArrowKind) and isinstance(kind2, ArrowKind):
            self.unify_kinds(kind1.argument, kind2.argument)
            self.unify_kinds(kind1.result, kind2.result)
            return
        raise UnificationError(
            f"cannot unify kinds {kind1.pretty()} and {kind2.pretty()}")

    # -- type unification ----------------------------------------------------------

    def unify_types(self, type1: SType, type2: SType) -> None:
        """First-order unification of (rank-1, forall-free) surface types."""
        type1 = self.zonk_type(type1)
        type2 = self.zonk_type(type2)

        if isinstance(type1, TyUVar):
            self._bind_type(type1, type2)
            return
        if isinstance(type2, TyUVar):
            self._bind_type(type2, type1)
            return

        if isinstance(type1, TyCon) and isinstance(type2, TyCon):
            if type1.name != type2.name:
                raise UnificationError(
                    f"cannot match {type1.name} with {type2.name}")
            return
        if isinstance(type1, TyVar) and isinstance(type2, TyVar):
            if type1.name != type2.name:
                raise UnificationError(
                    f"cannot match rigid type variables {type1.name} and "
                    f"{type2.name}")
            return
        if isinstance(type1, FunTy) and isinstance(type2, FunTy):
            self.unify_types(type1.argument, type2.argument)
            self.unify_types(type1.result, type2.result)
            return
        if isinstance(type1, TyApp) and isinstance(type2, TyApp):
            self.unify_types(type1.function, type2.function)
            self.unify_types(type1.argument, type2.argument)
            return
        if (isinstance(type1, UnboxedTupleTy)
                and isinstance(type2, UnboxedTupleTy)):
            if len(type1.components) != len(type2.components):
                raise UnificationError(
                    "unboxed tuples have different arities: "
                    f"{type1.pretty()} vs {type2.pretty()}")
            for left, right in zip(type1.components, type2.components):
                self.unify_types(left, right)
            return

        raise UnificationError(
            f"cannot unify {type1.pretty()} with {type2.pretty()}")

    def _bind_type(self, var: TyUVar, type_: SType) -> None:
        if isinstance(type_, TyUVar) and type_.name == var.name:
            return
        if var.name in type_.free_uvars():
            raise OccursCheckError(
                f"type variable {var.name} occurs in {type_.pretty()} "
                "(infinite type)")
        # Kind preservation: the kinds of the two sides must unify, which is
        # how representation information flows (e.g. unifying α :: TYPE ρ
        # with Int# solves ρ := IntRep).
        from ..surface.types import kind_of_type
        self.unify_kinds(var.kind, kind_of_type(type_))
        self.type_solutions[var.name] = type_

    # -- queries --------------------------------------------------------------------

    def unsolved_rep_uvars_in(self, type_: SType) -> frozenset:
        """Names of representation unification variables still free in ``type_``."""
        zonked = self.zonk_type(type_)
        return frozenset(
            name for name in zonked.free_rep_vars()
            if name not in self.rep_solutions)
