"""Unification of types, kinds and runtime representations (Section 5.2).

The paper observes that phrasing "which concrete instantiation of ``TYPE``?"
as the choice of a ``Rep`` is a boon for type inference: when GHC checks
``λx → e`` it invents a type unification variable ``α`` *and* a
representation unification variable ``ρ`` with ``α :: TYPE ρ``, and ordinary
unification does the rest.  This module provides exactly that machinery:

* :class:`UnifierState` — the store of solutions for type unification
  variables (``TyUVar``), representation unification variables
  (``RepVar(unification=True)``) and kind unification variables;
* ``unify_types`` / ``unify_kinds`` / ``unify_reps`` — first-order
  unification with occurs checks;
* ``zonk_*`` — replace solved variables by their solutions, the analogue of
  GHC's *zonking* (Section 8.2 notes that levity checks must happen on
  zonked types).

In GHC the solutions live in mutable cells inside the variables themselves;
here they live in an explicit store, which keeps the type ASTs immutable and
makes the tests easier to write, but the observable behaviour is the same.

**Solver architecture** (see ``docs/PERF.md`` for the full story).  The
original seed implementation kept one ``{name: term}`` dictionary per
variable sort and re-zonked both sides of every ``unify_*`` call, which is
quadratic on variable→variable solution chains.  The production solver
instead uses, per sort:

* a **union-find** forest with iterative path compression and union by rank,
  so a chain ``α0 ~ α1 ~ … ~ αn`` collapses to a single equivalence class
  with near-O(α) ``find``;
* a **solution table keyed on class roots** mapping each solved class to its
  (non-variable) solution term;
* **head resolution** instead of up-front zonking: ``unify_*`` walk the two
  terms with an explicit worklist, resolving only the *head* of each subterm,
  so no recursion depth is consumed by either solution chains or deep
  structural spines;
* **memoised zonking** over the hash-consed term graph, invalidated by a
  store version counter, with an inertness fast path: a term containing no
  unification variables touched by this state zonks to itself.

Fresh variables are numbered from a per-state integer counter shared by all
three sorts (matching the seed's name sequence) and format their user-facing
name lazily, so ``fresh_*`` allocates no strings.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.errors import OccursCheckError, UnificationError
from ..core.kinds import (
    ArrowKind,
    Kind,
    KindVar,
    TypeKind,
)
from ..core.rep import Rep, RepVar, SumRep, TupleRep
from ..surface.types import (
    ClassConstraint,
    ForAllTy,
    FunTy,
    QualTy,
    SType,
    TyApp,
    TyCon,
    TyUVar,
    TyVar,
    UnboxedTupleTy,
    kind_of_type,
)


class UnifierStats:
    """Operation counters for the solver — exported into ``BENCH_perf.json``."""

    __slots__ = ("unify_types_calls", "unify_reps_calls", "unify_kinds_calls",
                 "type_bindings", "rep_bindings", "kind_bindings",
                 "finds", "unions", "occurs_checks",
                 "zonk_memo_hits", "zonk_memo_misses")

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"UnifierStats({inner})"


class _UnionFind:
    """Union-find over variable names: iterative path compression, rank union."""

    __slots__ = ("parent", "rank", "stats")

    def __init__(self, stats: UnifierStats) -> None:
        self.parent: Dict[str, str] = {}
        self.rank: Dict[str, int] = {}
        self.stats = stats

    def find(self, name: str) -> str:
        parent = self.parent
        root = name
        while True:
            up = parent.get(root)
            if up is None:
                break
            root = up
        # Second pass: point every node on the path straight at the root.
        while name != root:
            up = parent[name]
            parent[name] = root
            name = up
        self.stats.finds += 1
        return root

    def union(self, root1: str, root2: str) -> str:
        """Merge two distinct class roots; returns the surviving root."""
        rank = self.rank
        r1 = rank.get(root1, 0)
        r2 = rank.get(root2, 0)
        if r1 < r2:
            root1, root2 = root2, root1
        self.parent[root2] = root1
        if r1 == r2:
            rank[root1] = r1 + 1
        self.stats.unions += 1
        return root1


class _SolutionView:
    """Dict-like, union-find-aware view of one sort's solutions.

    Kept for API compatibility with the seed solver, whose per-sort solution
    dictionaries were plain ``{name: term}`` attributes (``defaulting.py``
    and external callers read and write them).  Lookups resolve the name to
    its class root first, so a variable that was unified into a solved class
    correctly reports that solution.
    """

    __slots__ = ("_uf", "_sols", "_state")

    def __init__(self, uf: _UnionFind, sols: Dict[str, object],
                 state: "UnifierState") -> None:
        self._uf = uf
        self._sols = sols
        self._state = state

    def get(self, name: str, default=None):
        return self._sols.get(self._uf.find(name), default)

    def __contains__(self, name: str) -> bool:
        return self._uf.find(name) in self._sols

    def __getitem__(self, name: str):
        value = self.get(name)
        if value is None:
            raise KeyError(name)
        return value

    def __setitem__(self, name: str, term) -> None:
        self._sols[self._uf.find(name)] = term
        self._state._version += 1

    def __len__(self) -> int:
        return len(self._sols)

    def __iter__(self):
        return iter(self._sols)

    def __bool__(self) -> bool:
        return bool(self._sols)


class UnifierState:
    """Mutable solver state: solutions for all three sorts of variables."""

    __slots__ = ("stats", "_next_id", "_version", "_memo_version",
                 "_tuf", "_ruf", "_kuf",
                 "_type_sol", "_rep_sol", "_kind_sol",
                 "_type_vars", "_rep_vars", "_kind_vars",
                 "_pending_rep_uvars", "_rep_uvar_names",
                 "_zonk_type_memo", "_zonk_kind_memo", "_zonk_rep_memo",
                 "type_solutions", "rep_solutions", "kind_solutions")

    def __init__(self) -> None:
        self.stats = UnifierStats()
        self._next_id = 0
        self._version = 0
        self._memo_version = 0
        self._tuf = _UnionFind(self.stats)
        self._ruf = _UnionFind(self.stats)
        self._kuf = _UnionFind(self.stats)
        #: Class root -> non-variable solution term, per sort.
        self._type_sol: Dict[str, SType] = {}
        self._rep_sol: Dict[str, Rep] = {}
        self._kind_sol: Dict[str, Kind] = {}
        #: Name -> variable object, for picking class representatives.
        self._type_vars: Dict[str, TyUVar] = {}
        self._rep_vars: Dict[str, RepVar] = {}
        self._kind_vars: Dict[str, KindVar] = {}
        #: Fresh rep uvars whose (lazily formatted) names are not yet in the
        #: name set; flushed on the first is_rep_uvar query.
        self._pending_rep_uvars: List[RepVar] = []
        self._rep_uvar_names: Set[str] = set()
        self._zonk_type_memo: Dict[SType, SType] = {}
        self._zonk_kind_memo: Dict[Kind, Kind] = {}
        self._zonk_rep_memo: Dict[Rep, Rep] = {}
        # Seed-compatible dict-like views of the solution stores.
        self.type_solutions = _SolutionView(self._tuf, self._type_sol, self)
        self.rep_solutions = _SolutionView(self._ruf, self._rep_sol, self)
        self.kind_solutions = _SolutionView(self._kuf, self._kind_sol, self)

    # -- fresh variables -----------------------------------------------------

    def _fresh_id(self) -> int:
        uid = self._next_id
        self._next_id = uid + 1
        return uid

    def fresh_rep_uvar(self, prefix: str = "rho") -> RepVar:
        """A fresh representation unification variable ``ρ``."""
        var = RepVar._fresh(self._fresh_id(), prefix)
        self._pending_rep_uvars.append(var)
        return var

    def is_rep_uvar(self, name: str) -> bool:
        """Was ``name`` created by :meth:`fresh_rep_uvar` (vs. a rigid var)?"""
        return name in self._rep_uvar_name_set()

    def _rep_uvar_name_set(self) -> Set[str]:
        pending = self._pending_rep_uvars
        if pending:
            self._rep_uvar_names.update(var.name for var in pending)
            pending.clear()
        return self._rep_uvar_names

    @property
    def rep_uvar_names(self) -> Set[str]:
        """Names of every rep unification variable this state invented."""
        return self._rep_uvar_name_set()

    def fresh_type_uvar(self, kind: Optional[Kind] = None,
                        prefix: str = "alpha") -> TyUVar:
        """A fresh type unification variable ``α :: kind``.

        When no kind is supplied, a fresh ``TYPE ρ`` kind is invented — the
        Section 5.2 recipe.
        """
        if kind is None:
            kind = TypeKind(self.fresh_rep_uvar())
        return TyUVar._fresh(self._fresh_id(), prefix, kind)

    def fresh_kind_uvar(self, prefix: str = "kappa") -> KindVar:
        return KindVar._fresh(self._fresh_id(), prefix)

    # -- memo management -------------------------------------------------------

    def _sync_memo(self) -> None:
        if self._memo_version != self._version:
            self._zonk_type_memo.clear()
            self._zonk_kind_memo.clear()
            self._zonk_rep_memo.clear()
            self._memo_version = self._version

    def _names_inert_rep(self, names: FrozenSet[str]) -> bool:
        """No name in ``names`` was unioned or solved at the rep sort."""
        parent = self._ruf.parent
        sols = self._rep_sol
        for name in names:
            if name in parent or name in sols:
                return False
        return True

    def _kinds_inert(self) -> bool:
        """No kind variable was ever unioned or solved by this state."""
        return not self._kind_sol and not self._kuf.parent

    # -- zonking ---------------------------------------------------------------

    def zonk_rep(self, rep: Rep) -> Rep:
        """Replace solved representation variables by their solutions."""
        self._sync_memo()
        return self._zonk_rep(rep)

    def _zonk_rep(self, rep: Rep) -> Rep:
        if isinstance(rep, RepVar):
            if not rep.unification:
                return rep
            name = rep.name
            root = (name if name not in self._ruf.parent
                    else self._ruf.find(name))
            solution = self._rep_sol.get(root)
            if solution is not None:
                return self._zonk_rep(solution)
            if root == rep.name:
                return rep
            return self._rep_vars[root]
        free = rep.free_rep_vars()
        if not free or self._names_inert_rep(free):
            return rep
        memo = self._zonk_rep_memo
        out = memo.get(rep)
        if out is not None:
            self.stats.zonk_memo_hits += 1
            return out
        self.stats.zonk_memo_misses += 1
        if isinstance(rep, TupleRep):
            out = TupleRep(self._zonk_rep(r) for r in rep.reps)
        elif isinstance(rep, SumRep):
            out = SumRep(self._zonk_rep(r) for r in rep.alternatives)
        else:  # pragma: no cover - no other compound reps exist
            out = rep
        memo[rep] = out
        return out

    def zonk_kind(self, kind: Kind) -> Kind:
        self._sync_memo()
        return self._zonk_kind(kind)

    def _zonk_kind(self, kind: Kind) -> Kind:
        if isinstance(kind, TypeKind):
            rep = kind.rep
            zonked = self._zonk_rep(rep)
            if zonked is rep:
                return kind
            return TypeKind(zonked)
        if isinstance(kind, ArrowKind):
            memo = self._zonk_kind_memo
            out = memo.get(kind)
            if out is not None:
                self.stats.zonk_memo_hits += 1
                return out
            self.stats.zonk_memo_misses += 1
            argument = self._zonk_kind(kind.argument)
            result = self._zonk_kind(kind.result)
            out = kind if (argument is kind.argument
                           and result is kind.result) \
                else ArrowKind(argument, result)
            memo[kind] = out
            return out
        if isinstance(kind, KindVar):
            if not kind.unification:
                return kind
            root = self._kuf.find(kind.name)
            solution = self._kind_sol.get(root)
            if solution is not None:
                return self._zonk_kind(solution)
            if root == kind.name:
                return kind
            return self._kind_vars[root]
        return kind

    def zonk_type(self, type_: SType) -> SType:
        self._sync_memo()
        return self._zonk_type(type_)

    def _zonk_type(self, type_: SType) -> SType:
        tt = type(type_)
        if tt is TyUVar:
            name = type_.name
            root = (name if name not in self._tuf.parent
                    else self._tuf.find(name))
            solution = self._type_sol.get(root)
            if solution is not None:
                return self._zonk_type(solution)
            var = self._type_vars.get(root, type_)
            kind = self._zonk_kind(var.kind)
            if var is type_ and kind is type_.kind:
                return type_
            return TyUVar(var.name, kind)
        if tt is TyVar:
            kind = self._zonk_kind(type_.kind)
            return type_ if kind is type_.kind else TyVar(type_.name, kind)
        if tt is TyCon:
            kind = self._zonk_kind(type_.kind)
            return type_ if kind is type_.kind else TyCon(type_.name, kind)

        # Composite nodes: inert fast path, then memoised rebuild.
        if not type_.free_uvars():
            free_reps = type_.free_rep_vars()
            if ((not free_reps or self._names_inert_rep(free_reps))
                    and self._kinds_inert()):
                return type_
        memo = self._zonk_type_memo
        out = memo.get(type_)
        if out is not None:
            self.stats.zonk_memo_hits += 1
            return out
        self.stats.zonk_memo_misses += 1

        if tt is FunTy:
            argument = self._zonk_type(type_.argument)
            result = self._zonk_type(type_.result)
            out = type_ if (argument is type_.argument
                            and result is type_.result) \
                else FunTy(argument, result)
        elif tt is TyApp:
            function = self._zonk_type(type_.function)
            argument = self._zonk_type(type_.argument)
            out = type_ if (function is type_.function
                            and argument is type_.argument) \
                else TyApp(function, argument)
        elif tt is UnboxedTupleTy:
            out = UnboxedTupleTy(self._zonk_type(c)
                                 for c in type_.components)
        elif tt is ForAllTy:
            # NB: binder kinds are zonked too — a solved ``ρ`` inside a
            # binder kind (e.g. ``forall (a :: TYPE ρ). …``) must be
            # substituted, which the seed solver forgot to do.
            from ..surface.types import Binder
            binders = tuple(Binder(b.name, self._zonk_kind(b.kind))
                            for b in type_.binders)
            out = ForAllTy(binders, self._zonk_type(type_.body))
        elif tt is QualTy:
            constraints = tuple(
                ClassConstraint(c.class_name, self._zonk_type(c.argument))
                for c in type_.constraints)
            out = QualTy(constraints, self._zonk_type(type_.body))
        else:
            out = type_
        memo[type_] = out
        return out

    # -- head resolution -------------------------------------------------------

    def _head_rep(self, rep: Rep) -> Rep:
        parent = self._ruf.parent
        sols = self._rep_sol
        while isinstance(rep, RepVar) and rep.unification:
            name = rep.name
            # Fast path: a variable that was never unioned is its own root.
            root = name if name not in parent else self._ruf.find(name)
            solution = sols.get(root)
            if solution is None:
                if root == name:
                    return rep
                return self._rep_vars[root]
            rep = solution
        return rep

    def _head_kind(self, kind: Kind) -> Kind:
        parent = self._kuf.parent
        sols = self._kind_sol
        while isinstance(kind, KindVar) and kind.unification:
            name = kind.name
            root = name if name not in parent else self._kuf.find(name)
            solution = sols.get(root)
            if solution is None:
                if root == name:
                    return kind
                return self._kind_vars[root]
            kind = solution
        return kind

    def _head_type(self, type_: SType) -> SType:
        parent = self._tuf.parent
        sols = self._type_sol
        while type(type_) is TyUVar:
            name = type_.name
            root = name if name not in parent else self._tuf.find(name)
            solution = sols.get(root)
            if solution is None:
                if root == name:
                    return type_
                return self._type_vars[root]
            type_ = solution
        return type_

    # -- representation unification --------------------------------------------

    def unify_reps(self, rep1: Rep, rep2: Rep) -> None:
        """Unify two runtime representations."""
        self.stats.unify_reps_calls += 1
        stack: List[Tuple[Rep, Rep]] = [(rep1, rep2)]
        while stack:
            left, right = stack.pop()
            left = self._head_rep(left)
            right = self._head_rep(right)
            if left is right:
                continue
            if isinstance(left, RepVar) and left.unification:
                self._bind_rep(left, right)
                continue
            if isinstance(right, RepVar) and right.unification:
                self._bind_rep(right, left)
                continue
            if left == right:
                continue
            if isinstance(left, TupleRep) and isinstance(right, TupleRep):
                if len(left.reps) != len(right.reps):
                    raise UnificationError(
                        f"unboxed tuple representations have different "
                        f"arities: {self._zonked_pretty_rep(left)} vs "
                        f"{self._zonked_pretty_rep(right)}")
                stack.extend(zip(reversed(left.reps), reversed(right.reps)))
                continue
            if isinstance(left, SumRep) and isinstance(right, SumRep):
                if len(left.alternatives) != len(right.alternatives):
                    raise UnificationError(
                        f"unboxed sum representations have different "
                        f"arities: {self._zonked_pretty_rep(left)} vs "
                        f"{self._zonked_pretty_rep(right)}")
                stack.extend(zip(reversed(left.alternatives),
                                 reversed(right.alternatives)))
                continue
            raise UnificationError(
                f"cannot unify runtime representations "
                f"{self._zonked_pretty_rep(left)} and "
                f"{self._zonked_pretty_rep(right)}: the types have different "
                "memory layouts / calling conventions")

    def _zonked_pretty_rep(self, rep: Rep) -> str:
        return self.zonk_rep(rep).pretty()

    def _bind_rep(self, var: RepVar, rep: Rep) -> None:
        """Bind head-resolved ``var`` to head-resolved ``rep``."""
        name = var.name
        root = (name if name not in self._ruf.parent
                else self._ruf.find(name))
        if isinstance(rep, RepVar) and rep.unification:
            # Only union participants need a name->object registration:
            # a solution-bound variable is always its own class root.
            self._rep_vars.setdefault(var.name, var)
            self._rep_vars.setdefault(rep.name, rep)
            other = self._ruf.find(rep.name)
            if other == root:
                return
            self._ruf.union(root, other)
        else:
            if self._occurs_rep(root, rep):
                raise OccursCheckError(
                    f"representation variable {var.name} occurs in "
                    f"{self.zonk_rep(rep).pretty()}")
            self._rep_sol[root] = rep
        self.stats.rep_bindings += 1
        self._version += 1

    def _occurs_rep(self, root: str, rep: Rep) -> bool:
        """Does the class ``root`` occur in ``rep`` (solutions resolved)?"""
        self.stats.occurs_checks += 1
        find = self._ruf.find
        sols = self._rep_sol
        stack: List[Rep] = [rep]
        seen: Set[int] = set()
        while stack:
            current = stack.pop()
            if isinstance(current, RepVar):
                if not current.unification:
                    continue
                r = find(current.name)
                solution = sols.get(r)
                if solution is not None:
                    stack.append(solution)
                elif r == root:
                    return True
                continue
            if not current.free_rep_vars():
                continue
            if id(current) in seen:
                continue
            seen.add(id(current))
            if isinstance(current, TupleRep):
                stack.extend(current.reps)
            elif isinstance(current, SumRep):
                stack.extend(current.alternatives)
        return False

    # -- kind unification --------------------------------------------------------

    def unify_kinds(self, kind1: Kind, kind2: Kind) -> None:
        """Unify two kinds.

        Under the old sub-kinding story this is where ``OpenKind`` magic
        lived; with levity polymorphism it is plain structural unification
        that bottoms out in :meth:`unify_reps`.
        """
        self.stats.unify_kinds_calls += 1
        stack: List[Tuple[Kind, Kind]] = [(kind1, kind2)]
        while stack:
            left, right = stack.pop()
            left = self._head_kind(left)
            right = self._head_kind(right)
            if left is right:
                continue
            if isinstance(left, KindVar) and left.unification:
                self._bind_kind(left, right)
                continue
            if isinstance(right, KindVar) and right.unification:
                self._bind_kind(right, left)
                continue
            if left == right:
                continue
            if isinstance(left, TypeKind) and isinstance(right, TypeKind):
                self.unify_reps(left.rep, right.rep)
                continue
            if isinstance(left, ArrowKind) and isinstance(right, ArrowKind):
                stack.append((left.result, right.result))
                stack.append((left.argument, right.argument))
                continue
            raise UnificationError(
                f"cannot unify kinds {self.zonk_kind(left).pretty()} and "
                f"{self.zonk_kind(right).pretty()}")

    def _bind_kind(self, var: KindVar, kind: Kind) -> None:
        root = self._kuf.find(var.name)
        if isinstance(kind, KindVar) and kind.unification:
            self._kind_vars.setdefault(var.name, var)
            self._kind_vars.setdefault(kind.name, kind)
            other = self._kuf.find(kind.name)
            if other == root:
                return
            self._kuf.union(root, other)
        else:
            if self._occurs_kind(root, kind):
                raise OccursCheckError(
                    f"kind variable {var.name} occurs in "
                    f"{self.zonk_kind(kind).pretty()} (infinite kind)")
            self._kind_sol[root] = kind
        self.stats.kind_bindings += 1
        self._version += 1

    def _occurs_kind(self, root: str, kind: Kind) -> bool:
        """Does the class ``root`` occur in ``kind`` (solutions resolved)?"""
        self.stats.occurs_checks += 1
        find = self._kuf.find
        sols = self._kind_sol
        stack: List[Kind] = [kind]
        while stack:
            current = stack.pop()
            if isinstance(current, KindVar):
                if not current.unification:
                    continue
                r = find(current.name)
                solution = sols.get(r)
                if solution is not None:
                    stack.append(solution)
                elif r == root:
                    return True
                continue
            if isinstance(current, ArrowKind):
                stack.append(current.argument)
                stack.append(current.result)
        return False

    # -- type unification ----------------------------------------------------------

    def unify_types(self, type1: SType, type2: SType) -> None:
        """First-order unification of (rank-1, forall-free) surface types."""
        self.stats.unify_types_calls += 1
        stack: List[Tuple[SType, SType]] = [(type1, type2)]
        while stack:
            left, right = stack.pop()
            left = self._head_type(left)
            right = self._head_type(right)
            if left is right:
                continue
            tl = type(left)
            tr = type(right)
            if tl is TyUVar:
                self._bind_type(left, right)
                continue
            if tr is TyUVar:
                self._bind_type(right, left)
                continue
            if tl is TyCon and tr is TyCon:
                if left.name != right.name:
                    raise UnificationError(
                        f"cannot match {left.name} with {right.name}")
                continue
            if tl is TyVar and tr is TyVar:
                if left.name != right.name:
                    raise UnificationError(
                        f"cannot match rigid type variables {left.name} and "
                        f"{right.name}")
                continue
            if tl is FunTy and tr is FunTy:
                stack.append((left.result, right.result))
                stack.append((left.argument, right.argument))
                continue
            if tl is TyApp and tr is TyApp:
                stack.append((left.argument, right.argument))
                stack.append((left.function, right.function))
                continue
            if tl is UnboxedTupleTy and tr is UnboxedTupleTy:
                if len(left.components) != len(right.components):
                    raise UnificationError(
                        "unboxed tuples have different arities: "
                        f"{self.zonk_type(left).pretty()} vs "
                        f"{self.zonk_type(right).pretty()}")
                stack.extend(zip(reversed(left.components),
                                 reversed(right.components)))
                continue
            raise UnificationError(
                f"cannot unify {self.zonk_type(left).pretty()} with "
                f"{self.zonk_type(right).pretty()}")

    def _bind_type(self, var: TyUVar, type_: SType) -> None:
        """Bind head-resolved ``var`` to head-resolved ``type_``."""
        name = var.name
        root = (name if name not in self._tuf.parent
                else self._tuf.find(name))
        if type(type_) is TyUVar:
            self._type_vars.setdefault(var.name, var)
            self._type_vars.setdefault(type_.name, type_)
            other = self._tuf.find(type_.name)
            if other == root:
                return
            # Kind preservation across the merged class: representation
            # information flows through the kinds (Section 5.2).
            self.unify_kinds(var.kind, type_.kind)
            self._tuf.union(root, other)
        else:
            if self._occurs_type(root, type_):
                raise OccursCheckError(
                    f"type variable {var.name} occurs in "
                    f"{self.zonk_type(type_).pretty()} (infinite type)")
            # Kind preservation: the kinds of the two sides must unify, which
            # is how representation information flows (e.g. unifying
            # α :: TYPE ρ with Int# solves ρ := IntRep).
            self.unify_kinds(var.kind, self._kind_of(type_))
            self._type_sol[root] = type_
        self.stats.type_bindings += 1
        self._version += 1

    def _occurs_type(self, root: str, type_: SType) -> bool:
        """Does the class ``root`` occur in ``type_`` (solutions resolved)?"""
        self.stats.occurs_checks += 1
        find = self._tuf.find
        sols = self._type_sol
        stack: List[SType] = [type_]
        seen: Set[int] = set()
        while stack:
            current = stack.pop()
            tc = type(current)
            if tc is TyUVar:
                r = find(current.name)
                solution = sols.get(r)
                if solution is not None:
                    stack.append(solution)
                elif r == root:
                    return True
                continue
            if not current.free_uvars():
                continue
            if id(current) in seen:
                continue
            seen.add(id(current))
            if tc is FunTy:
                stack.append(current.argument)
                stack.append(current.result)
            elif tc is TyApp:
                stack.append(current.function)
                stack.append(current.argument)
            elif tc is UnboxedTupleTy:
                stack.extend(current.components)
            elif tc is ForAllTy:
                stack.append(current.body)
            elif tc is QualTy:
                stack.append(current.body)
                stack.extend(c.argument for c in current.constraints)
        return False

    def _kind_of(self, type_: SType) -> Kind:
        """The kind of a possibly-unzonked type, resolving variable heads.

        Mirrors :func:`repro.surface.types.kind_of_type` but never needs the
        term to be zonked first: unification-variable heads are resolved on
        the fly and kind comparisons happen on zonked kinds.  This is what
        lets :meth:`_bind_type` kind-check a binding without re-zonking the
        whole right-hand side (the seed solver's quadratic hot spot).
        """
        from ..core.errors import KindError, TypeCheckError

        type_ = self._head_type(type_)
        if isinstance(type_, (TyCon, TyVar, TyUVar)):
            return type_.kind
        # Inert terms (no unification variables this state could have
        # touched) kind-check via the globally memoised kinding function:
        # repeated binds against the same wide term become O(1).
        if not type_.free_uvars():
            free_reps = type_.free_rep_vars()
            if ((not free_reps or self._names_inert_rep(free_reps))
                    and self._kinds_inert()):
                return kind_of_type(type_)
        if isinstance(type_, FunTy):
            from ..core.kinds import TYPE_LIFTED
            for side, label in ((type_.argument, "argument"),
                                (type_.result, "result")):
                side_kind = self.zonk_kind(self._kind_of(side))
                if not isinstance(side_kind, TypeKind):
                    raise KindError(
                        f"the {label} of a function arrow must have a value "
                        f"kind, but {self.zonk_type(side).pretty()} has kind "
                        f"{side_kind.pretty()}")
            return TYPE_LIFTED
        if isinstance(type_, TyApp):
            function_kind = self.zonk_kind(self._kind_of(type_.function))
            argument_kind = self.zonk_kind(self._kind_of(type_.argument))
            if not isinstance(function_kind, ArrowKind):
                raise KindError(
                    f"{self.zonk_type(type_.function).pretty()} of kind "
                    f"{function_kind.pretty()} cannot be applied to a type "
                    "argument")
            if function_kind.argument != argument_kind:
                raise KindError(
                    f"kind mismatch in {self.zonk_type(type_).pretty()}: "
                    f"expected {function_kind.argument.pretty()}, got "
                    f"{argument_kind.pretty()}")
            return function_kind.result
        if isinstance(type_, UnboxedTupleTy):
            reps: List[Rep] = []
            for component in type_.components:
                component_kind = self.zonk_kind(self._kind_of(component))
                if not isinstance(component_kind, TypeKind):
                    raise KindError(
                        f"unboxed tuple component "
                        f"{self.zonk_type(component).pretty()} has "
                        f"non-value kind {component_kind.pretty()}")
                reps.append(component_kind.rep)
            return TypeKind(TupleRep(reps))
        if isinstance(type_, (ForAllTy, QualTy)):
            # Zonked foralls/qualified types delegate to the pure kinding
            # function, which also handles rep binders correctly.
            return kind_of_type(self.zonk_type(type_))
        raise TypeCheckError(f"unknown surface type form: {type_!r}")

    # -- queries --------------------------------------------------------------------

    def unsolved_rep_uvars_in(self, type_: SType) -> frozenset:
        """Names of representation unification variables still free in ``type_``."""
        zonked = self.zonk_type(type_)
        return frozenset(
            name for name in zonked.free_rep_vars()
            if name not in self.rep_solutions)
