"""Generalisation and representation defaulting (Section 5.2).

The paper's key inference decision is that GHC **never infers levity
polymorphism**: any representation unification variable that could in
principle be generalised is instead *defaulted* to ``LiftedRep``.  This is
deliberately analogous to Haskell's monomorphism restriction and, like it,
sacrifices principal types for the levity-polymorphic fragment (footnote 11).

:func:`generalise` implements the full pipeline used when a binding has no
type signature:

1. zonk the inferred type;
2. default every free representation unification variable to ``LiftedRep``
   (unless the ablation flag ``generalise_reps`` is set, in which case the
   variables are quantified instead — producing exactly the un-compilable
   scheme the paper warns about, which the downstream levity check rejects);
3. quantify the remaining free type unification variables, giving them
   user-facing names ``a``, ``b``, … and their zonked kinds;
4. split the wanted class constraints into those that mention quantified
   variables (which move into the scheme's context) and residual ones
   (returned to the caller for instance resolution).
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..core.kinds import Kind, TypeKind
from ..core.rep import LIFTED, Rep, RepVar
from ..surface.types import ClassConstraint, SType, TyUVar, TyVar
from .schemes import Scheme, TypeEnv
from .unify import UnifierState


@dataclass(frozen=True)
class GeneralisationResult:
    """The scheme plus the constraints that could not be generalised."""

    scheme: Scheme
    residual_constraints: Tuple[ClassConstraint, ...]
    defaulted_rep_vars: Tuple[str, ...]
    generalised_rep_vars: Tuple[str, ...]


def default_rep_uvars(state: UnifierState, type_: SType,
                      avoid: FrozenSet[str] = frozenset()) -> Tuple[str, ...]:
    """Default free representation unification variables to ``LiftedRep``.

    Only variables created by the unifier are defaulted; rigid
    representation variables written by the user (in a checked signature)
    are never touched.  Returns the names that were defaulted.
    """
    zonked = state.zonk_type(type_)
    defaulted: List[str] = []
    for name in sorted(zonked.free_rep_vars()):
        if name in avoid or not state.is_rep_uvar(name):
            continue
        if name in state.rep_solutions:
            continue
        state.rep_solutions[name] = LIFTED
        defaulted.append(name)
    return tuple(defaulted)


def _fresh_names(count: int, taken: FrozenSet[str]) -> List[str]:
    names: List[str] = []
    alphabet = string.ascii_lowercase
    index = 0
    while len(names) < count:
        base = alphabet[index % 26]
        suffix = index // 26
        candidate = base if suffix == 0 else f"{base}{suffix}"
        if candidate not in taken:
            names.append(candidate)
        index += 1
    return names


def generalise(state: UnifierState, env: TypeEnv, type_: SType,
               constraints: Sequence[ClassConstraint] = (),
               generalise_reps: bool = False) -> GeneralisationResult:
    """Generalise an inferred type into a :class:`Scheme`.

    ``generalise_reps=True`` is the ablation mode (E7): instead of
    defaulting, free representation unification variables become quantified
    representation binders, reproducing the
    ``forall (r :: Rep) (a :: TYPE r). a -> a`` scheme that the paper shows
    is un-compilable.
    """
    env_uvars = frozenset(
        name for scheme in env.all_bindings().values()
        for name in state.zonk_type(scheme.body).free_uvars())
    env_rep_vars = frozenset(
        name for scheme in env.all_bindings().values()
        for name in state.zonk_type(scheme.body).free_rep_vars())

    defaulted: Tuple[str, ...] = ()
    generalised_reps: List[str] = []
    rep_renaming: Dict[str, Rep] = {}

    if generalise_reps:
        zonked = state.zonk_type(type_)
        candidates = [name for name in sorted(zonked.free_rep_vars())
                      if state.is_rep_uvar(name)
                      and name not in env_rep_vars
                      and name not in state.rep_solutions]
        for index, name in enumerate(candidates):
            new_name = f"r{index + 1}" if len(candidates) > 1 else "r"
            generalised_reps.append(new_name)
            rep_renaming[name] = RepVar(new_name)
    else:
        defaulted = default_rep_uvars(state, type_, avoid=env_rep_vars)

    zonked = state.zonk_type(type_)
    if rep_renaming:
        zonked = zonked.subst_reps(rep_renaming)

    zonked_constraints = [
        ClassConstraint(c.class_name,
                        state.zonk_type(c.argument).subst_reps(rep_renaming)
                        if rep_renaming
                        else state.zonk_type(c.argument))
        for c in constraints]

    free = [name for name in sorted(zonked.free_uvars())
            if name not in env_uvars]
    taken = frozenset(zonked.free_type_vars())
    for constraint in zonked_constraints:
        taken = taken | constraint.argument.free_type_vars()
    names = _fresh_names(len(free), taken)

    substitution: Dict[str, SType] = {}
    type_binders: List[Tuple[str, Kind]] = []
    uvar_kinds: Dict[str, Kind] = {}
    _collect_uvar_kinds(zonked, uvar_kinds)
    for constraint in zonked_constraints:
        _collect_uvar_kinds(constraint.argument, uvar_kinds)
    for uvar_name, fresh_name in zip(free, names):
        kind = uvar_kinds.get(uvar_name, TypeKind(LIFTED))
        if rep_renaming:
            kind = kind.substitute_reps(rep_renaming)
        substitution[uvar_name] = TyVar(fresh_name, kind)
        type_binders.append((fresh_name, kind))

    body = zonked.subst_types(substitution)

    quantified_names = frozenset(free)
    scheme_constraints: List[ClassConstraint] = []
    residual: List[ClassConstraint] = []
    for constraint in zonked_constraints:
        if constraint.argument.free_uvars() & quantified_names:
            scheme_constraints.append(
                ClassConstraint(constraint.class_name,
                                constraint.argument.subst_types(substitution)))
        else:
            residual.append(constraint)

    scheme = Scheme(tuple(generalised_reps), tuple(type_binders),
                    tuple(scheme_constraints), body)
    return GeneralisationResult(scheme, tuple(residual), defaulted,
                                tuple(generalised_reps))


def _collect_uvar_kinds(type_: SType, out: Dict[str, Kind]) -> None:
    """Record the kind of every unification variable occurring in ``type_``."""
    from ..surface.types import (
        ForAllTy,
        FunTy,
        QualTy,
        TyApp,
        UnboxedTupleTy,
    )

    if isinstance(type_, TyUVar):
        out.setdefault(type_.name, type_.kind)
    elif isinstance(type_, FunTy):
        _collect_uvar_kinds(type_.argument, out)
        _collect_uvar_kinds(type_.result, out)
    elif isinstance(type_, TyApp):
        _collect_uvar_kinds(type_.function, out)
        _collect_uvar_kinds(type_.argument, out)
    elif isinstance(type_, UnboxedTupleTy):
        for component in type_.components:
            _collect_uvar_kinds(component, out)
    elif isinstance(type_, ForAllTy):
        _collect_uvar_kinds(type_.body, out)
    elif isinstance(type_, QualTy):
        for constraint in type_.constraints:
            _collect_uvar_kinds(constraint.argument, out)
        _collect_uvar_kinds(type_.body, out)
