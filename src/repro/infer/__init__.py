"""Type, kind and representation inference for the surface language (Section 5.2)."""

from .defaulting import GeneralisationResult, default_rep_uvars, generalise
from .infer import (
    BindingResult,
    InferOptions,
    Inferencer,
    ModuleResult,
    infer_binding,
    infer_expr,
    infer_module,
)
from .levity_check import (
    LevityCheckReport,
    LevityRecord,
    check_records,
    kind_of_zonked,
)
from .schemes import Scheme, TypeEnv
from .unify import UnifierState

__all__ = [name for name in dir() if not name.startswith("_")]
