"""Type inference for the surface language (Section 5.2).

The engine is a fairly conventional Hindley–Milner-style inferencer with two
paper-specific twists:

1. **Representation unification variables.**  Every invented type variable
   ``α`` gets kind ``TYPE ρ`` for a fresh representation variable ``ρ``; if
   ``α`` is later unified with a lifted type, ``ρ`` is solved to
   ``LiftedRep``, and if with ``Int#``, to ``IntRep`` — all through the
   ordinary unifier (:mod:`repro.infer.unify`).  The paper notes this is a
   *simplification* over the old sub-kinding implementation.

2. **Never infer levity polymorphism.**  When a binding without a signature
   is generalised, any representation variable that could be generalised is
   instead defaulted to ``LiftedRep`` (:mod:`repro.infer.defaulting`).
   Declared signatures, on the other hand, may be levity-polymorphic; they
   are *checked*, and a desugarer-style post-pass
   (:mod:`repro.infer.levity_check`) enforces the Section 5.1 restrictions
   on every binder and argument site.

The engine records binder/argument sites as it goes and exposes them through
:class:`BindingResult`, so callers (and tests) can inspect exactly why a
program such as ``abs2`` is rejected while its η-contraction ``abs1`` is
accepted (Section 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import (
    InstanceResolutionError,
    LevityError,
    LevityPolymorphicArgument,
    LevityPolymorphicBinder,
    ScopeError,
    TypeCheckError,
)
from ..core.kinds import TYPE_LIFTED, TypeKind
from ..telemetry import REGISTRY as _REGISTRY, TRACER as _TRACER
from ..core.rep import Rep, RepVar
from ..surface.ast import (
    Alternative,
    ClassDecl,
    DataDecl,
    EAnn,
    EApp,
    EBool,
    ECase,
    EIf,
    ELam,
    ELet,
    ELitChar,
    ELitDoubleHash,
    ELitInt,
    ELitIntHash,
    ELitString,
    EUnboxedTuple,
    EVar,
    Expr,
    FunBind,
    InstanceDecl,
    Module,
    TypeSig,
)
from ..surface.types import (
    BOOL_TY,
    CHAR_TY,
    ClassConstraint,
    DOUBLE_HASH_TY,
    FunTy,
    INT_HASH_TY,
    INT_TY,
    SType,
    STRING_TY,
    TyVar,
    UnboxedTupleTy,
    fun,
)
from .defaulting import GeneralisationResult, generalise
from .levity_check import LevityCheckReport, LevityRecord, check_records
from .schemes import Scheme, TypeEnv
from .unify import UnifierState


@dataclass
class InferOptions:
    """Behavioural switches for the inference engine."""

    #: Ablation flag (E7): generalise representation variables instead of
    #: defaulting them.  The resulting schemes are un-compilable and the
    #: levity check rejects any binding that binds a value at such a type.
    generalise_reps: bool = False
    #: Collect levity violations into the report instead of raising on the
    #: first one (GHC collects them all and reports together).
    collect_levity_violations: bool = False
    #: Skip the post-inference levity check entirely (used by the
    #: sub-kinding baseline comparison, which has its own rules).
    run_levity_check: bool = True


@dataclass
class BindingResult:
    """Everything the engine learned about one top-level binding."""

    name: str
    scheme: Scheme
    levity_report: LevityCheckReport
    defaulted_rep_vars: Tuple[str, ...] = ()
    residual_constraints: Tuple[ClassConstraint, ...] = ()

    @property
    def ok(self) -> bool:
        return self.levity_report.ok


@dataclass
class ModuleResult:
    """Result of inferring a whole module."""

    schemes: Dict[str, Scheme] = field(default_factory=dict)
    bindings: Dict[str, BindingResult] = field(default_factory=dict)
    env: Optional[TypeEnv] = None

    def scheme_of(self, name: str) -> Scheme:
        return self.schemes[name]


def _not_in_scope(name: str, env: TypeEnv) -> str:
    """A scope-error message with near-miss suggestions from ``env``.

    ``1 + 2`` at a prelude without boxed ``+`` should say
    "did you mean '+#'?" rather than leave the user guessing; the hash
    check catches boxed/unboxed spelling confusions that plain edit
    distance misses (``+`` vs ``+##``).
    """
    import difflib

    message = f"variable {name!r} is not in scope"
    candidates = sorted(env.all_bindings())
    close = difflib.get_close_matches(name, candidates, n=3, cutoff=0.6)
    stem = name.rstrip("#")
    for candidate in candidates:
        if candidate != name and candidate.rstrip("#") == stem \
                and candidate not in close:
            close.append(candidate)
    if close:
        suggestions = " or ".join(repr(c) for c in close[:3])
        message += f" (did you mean {suggestions}?)"
    return message


class Inferencer:
    """The type-inference engine."""

    def __init__(self, options: Optional[InferOptions] = None,
                 class_env=None, spans=None) -> None:
        self.options = options or InferOptions()
        self.state = UnifierState()
        self.records: List[LevityRecord] = []
        #: Constraints assumed from the signature currently being checked.
        self.givens: List[ClassConstraint] = []
        #: Duck-typed class environment (see :mod:`repro.classes.declarations`);
        #: must provide ``resolve(constraint, state)`` and
        #: ``method_schemes(class_decl)`` when class/instance declarations or
        #: class constraints are used.
        self.class_env = class_env
        #: Optional mapping ``id(expr) -> Span`` (the frontend's
        #: ``ParsedModule.expr_spans``).  When present, scope errors,
        #: unification failures and levity violations are stamped with the
        #: span of the offending *sub-expression* instead of leaving the
        #: caller to fall back to the whole binding.
        self.spans = spans
        #: Solver-op counts already folded into the telemetry registry;
        #: ``_publish_solver_stats`` publishes only the delta since the
        #: last fold so re-using one inferencer never double-counts.
        self._solver_published: Dict[str, int] = {}

    # ------------------------------------------------------------------ utils

    def _span(self, expr: Expr):
        if self.spans is None:
            return None
        return self.spans.get(id(expr))

    def _unify_at(self, expr: Optional[Expr], actual: SType,
                  expected: SType) -> None:
        """Unify, attaching ``expr``'s span to any failure that has none."""
        try:
            self.state.unify_types(actual, expected)
        except TypeCheckError as exc:
            if exc.span is None and expr is not None:
                exc.span = self._span(expr)
            raise

    def instantiate(self, scheme: Scheme) -> Tuple[List[ClassConstraint], SType]:
        """Replace quantified variables by fresh unification variables."""
        rep_mapping: Dict[str, Rep] = {
            name: self.state.fresh_rep_uvar() for name in scheme.rep_binders}
        type_mapping: Dict[str, SType] = {}
        for name, kind in scheme.type_binders:
            kind = kind.substitute_reps(rep_mapping)
            type_mapping[name] = self.state.fresh_type_uvar(kind)
        body = scheme.body.subst_reps(rep_mapping).subst_types(type_mapping)
        constraints = [
            ClassConstraint(c.class_name,
                            c.argument.subst_reps(rep_mapping)
                            .subst_types(type_mapping))
            for c in scheme.constraints]
        return constraints, body

    def record_binder(self, type_: SType, description: str,
                      span=None) -> None:
        self.records.append(LevityRecord("binder", description, type_, span))

    def record_argument(self, type_: SType, description: str,
                        span=None) -> None:
        self.records.append(LevityRecord("argument", description, type_,
                                         span))

    # ------------------------------------------------------------- expressions

    def infer(self, env: TypeEnv, expr: Expr
              ) -> Tuple[SType, List[ClassConstraint]]:
        """Infer a type and collect wanted class constraints."""
        if isinstance(expr, EVar):
            scheme = env.lookup(expr.name)
            if scheme is None:
                error = ScopeError(_not_in_scope(expr.name, env))
                error.span = self._span(expr)
                raise error
            constraints, type_ = self.instantiate(scheme)
            return type_, constraints

        if isinstance(expr, ELitInt):
            return INT_TY, []
        if isinstance(expr, ELitIntHash):
            return INT_HASH_TY, []
        if isinstance(expr, ELitDoubleHash):
            return DOUBLE_HASH_TY, []
        if isinstance(expr, ELitString):
            return STRING_TY, []
        if isinstance(expr, ELitChar):
            return CHAR_TY, []
        if isinstance(expr, EBool):
            return BOOL_TY, []

        if isinstance(expr, EApp):
            function_type, constraints = self.infer(env, expr.function)
            argument_type, argument_constraints = self.infer(env,
                                                             expr.argument)
            constraints = constraints + argument_constraints
            result_type = self.state.fresh_type_uvar()
            self._unify_at(expr, function_type,
                           FunTy(argument_type, result_type))
            self.record_argument(
                argument_type,
                f"argument {expr.argument.pretty()!r} of an application",
                self._span(expr.argument) or self._span(expr))
            return result_type, constraints

        if isinstance(expr, ELam):
            if expr.annotation is not None:
                binder_type: SType = expr.annotation
            else:
                binder_type = self.state.fresh_type_uvar()
            self.record_binder(binder_type,
                               f"lambda binder {expr.var!r}",
                               self._span(expr))
            body_env = env.bind(expr.var, Scheme.monomorphic(binder_type))
            body_type, constraints = self.infer(body_env, expr.body)
            return FunTy(binder_type, body_type), constraints

        if isinstance(expr, ELet):
            result = self._infer_local_binding(env, expr)
            body_env = env.bind(expr.var, result.scheme)
            body_type, constraints = self.infer(body_env, expr.body)
            return body_type, constraints + list(result.residual_constraints)

        if isinstance(expr, EIf):
            condition_type, constraints = self.infer(env, expr.condition)
            self._unify_at(expr.condition, condition_type, BOOL_TY)
            then_type, then_constraints = self.infer(env, expr.consequent)
            else_type, else_constraints = self.infer(env, expr.alternative)
            self._unify_at(expr.alternative, then_type, else_type)
            return then_type, constraints + then_constraints + else_constraints

        if isinstance(expr, EAnn):
            constraints = self.check(env, expr.expr, expr.type)
            scheme = Scheme.from_type(expr.type)
            instantiation_constraints, type_ = self.instantiate(scheme)
            return type_, constraints + instantiation_constraints

        if isinstance(expr, EUnboxedTuple):
            component_types: List[SType] = []
            constraints = []
            for component in expr.components:
                component_type, component_constraints = self.infer(env,
                                                                   component)
                component_types.append(component_type)
                constraints.extend(component_constraints)
            return UnboxedTupleTy(component_types), constraints

        if isinstance(expr, ECase):
            return self._infer_case(env, expr)

        raise TypeCheckError(f"cannot infer a type for {expr!r}")

    def check(self, env: TypeEnv, expr: Expr,
              expected: SType) -> List[ClassConstraint]:
        """Check ``expr`` against ``expected`` (a monotype or prenex sigma)."""
        scheme = Scheme.from_type(expected)
        if scheme.rep_binders or scheme.type_binders or scheme.constraints:
            # Checking against a sigma-type: skolemise and check the body.
            _, skolem_body, givens = self._skolemise(scheme)
            previous_givens = list(self.givens)
            self.givens.extend(givens)
            try:
                wanted = self.check(env, expr, skolem_body)
                return self._discharge(wanted)
            finally:
                self.givens = previous_givens
        actual, constraints = self.infer(env, expr)
        self._unify_at(expr, actual, expected)
        return constraints

    # ------------------------------------------------------------------ case

    def _infer_case(self, env: TypeEnv, expr: ECase
                    ) -> Tuple[SType, List[ClassConstraint]]:
        scrutinee_type, constraints = self.infer(env, expr.scrutinee)
        result_type = self.state.fresh_type_uvar()
        for alternative in expr.alternatives:
            try:
                alt_env, alt_constraints = self._bind_pattern(
                    env, alternative, scrutinee_type)
            except TypeCheckError as exc:
                if exc.span is None:
                    exc.span = self._span(expr.scrutinee) or self._span(expr)
                raise
            constraints.extend(alt_constraints)
            rhs_type, rhs_constraints = self.infer(alt_env, alternative.rhs)
            constraints.extend(rhs_constraints)
            self._unify_at(alternative.rhs, rhs_type, result_type)
        return result_type, constraints

    def _bind_pattern(self, env: TypeEnv, alternative: Alternative,
                      scrutinee_type: SType
                      ) -> Tuple[TypeEnv, List[ClassConstraint]]:
        constructor = alternative.constructor
        if constructor == "_":
            return env, []
        if constructor.lstrip("-").isdigit():
            # A literal pattern: Int# when written with a trailing '#'
            # convention is not needed; bare integer literals in patterns
            # match boxed Ints, hash-suffixed ones match Int#.
            self.state.unify_types(scrutinee_type, INT_TY)
            return env, []
        if constructor.endswith("#") and constructor[:-1].lstrip("-").isdigit():
            self.state.unify_types(scrutinee_type, INT_HASH_TY)
            return env, []
        if constructor == "(#,#)":
            # An unboxed-tuple pattern (# x1, ..., xn #): the pseudo
            # constructor has no scheme (it is representation-polymorphic in
            # every field); unify the scrutinee with a tuple of fresh
            # unification variables instead.  Found by corpus fuzzing: the
            # pattern parsed and evaluated, but never inferred.
            field_types = [self.state.fresh_type_uvar()
                           for _ in alternative.binders]
            self.state.unify_types(scrutinee_type,
                                   UnboxedTupleTy(field_types))
            alt_env = env
            for binder, field_type in zip(alternative.binders, field_types):
                self.record_binder(
                    field_type,
                    f"pattern binder {binder!r} of an unboxed tuple")
                alt_env = alt_env.bind(binder,
                                       Scheme.monomorphic(field_type))
            return alt_env, []
        scheme = env.lookup(constructor)
        if scheme is None:
            raise ScopeError(
                f"unknown data constructor {constructor!r} in pattern")
        constraints, constructor_type = self.instantiate(scheme)
        field_types: List[SType] = []
        current = constructor_type
        for _ in alternative.binders:
            current = self.state.zonk_type(current)
            if not isinstance(current, FunTy):
                raise TypeCheckError(
                    f"constructor {constructor!r} applied to too many "
                    "pattern variables")
            field_types.append(current.argument)
            current = current.result
        self.state.unify_types(scrutinee_type, current)
        alt_env = env
        for binder, field_type in zip(alternative.binders, field_types):
            self.record_binder(field_type,
                               f"pattern binder {binder!r} of {constructor!r}")
            alt_env = alt_env.bind(binder, Scheme.monomorphic(field_type))
        return alt_env, constraints

    # ------------------------------------------------------------- bindings

    def _skolemise(self, scheme: Scheme
                   ) -> Tuple[Dict[str, Rep], SType, List[ClassConstraint]]:
        """Turn quantified variables into rigid skolems."""
        rep_mapping: Dict[str, Rep] = {
            name: RepVar(name, unification=False)
            for name in scheme.rep_binders}
        type_mapping: Dict[str, SType] = {}
        for name, kind in scheme.type_binders:
            type_mapping[name] = TyVar(name, kind.substitute_reps(rep_mapping))
        body = scheme.body.subst_reps(rep_mapping).subst_types(type_mapping)
        givens = [
            ClassConstraint(c.class_name,
                            c.argument.subst_reps(rep_mapping)
                            .subst_types(type_mapping))
            for c in scheme.constraints]
        return rep_mapping, body, givens

    def _discharge(self, wanted: Sequence[ClassConstraint]
                   ) -> List[ClassConstraint]:
        """Discharge wanted constraints against givens and instances."""
        residual: List[ClassConstraint] = []
        for constraint in wanted:
            zonked = ClassConstraint(constraint.class_name,
                                     self.state.zonk_type(constraint.argument))
            if self._matches_given(zonked):
                continue
            if (self.class_env is not None
                    and self.class_env.resolve(zonked, self.state)):
                continue
            residual.append(zonked)
        return residual

    def _matches_given(self, constraint: ClassConstraint) -> bool:
        for given in self.givens:
            if given.class_name != constraint.class_name:
                continue
            if self.state.zonk_type(given.argument) == constraint.argument:
                return True
        return False

    def _require_no_residual(self, name: str,
                             residual: Sequence[ClassConstraint]) -> None:
        unresolved = [c for c in residual
                      if c.argument.free_uvars() == frozenset()
                      and not c.argument.free_type_vars()]
        if unresolved:
            rendered = ", ".join(c.pretty() for c in unresolved)
            raise InstanceResolutionError(
                f"no instance for {rendered} arising from {name!r}")

    def infer_binding(self, env: TypeEnv, name: str, params: Sequence[str],
                      rhs: Expr,
                      signature: Optional[SType] = None) -> BindingResult:
        """Infer or check one top-level (or let) binding."""
        records_start = len(self.records)
        if signature is not None:
            scheme, residual = self._check_against_signature(
                env, name, params, rhs, signature)
            defaulted: Tuple[str, ...] = ()
        else:
            scheme, residual, defaulted = self._infer_unsigned(
                env, name, params, rhs)

        report = LevityCheckReport()
        if self.options.run_levity_check:
            report = check_records(
                self.state, self.records[records_start:],
                collect=True)
            if not self.options.collect_levity_violations and report.violations:
                first = report.violations[0]
                exc_type = (LevityPolymorphicBinder
                            if first.kind_of_violation == "binder"
                            else LevityPolymorphicArgument)
                raise exc_type(f"in the binding for {name!r}: {first.pretty()}")

        self._require_no_residual(name, residual)
        self._publish_solver_stats()
        return BindingResult(name, scheme, report, defaulted, tuple(residual))

    def _publish_solver_stats(self) -> None:
        """Fold this state's solver counters into the global registry.

        Runs once per successfully checked binding (``solver.*`` metric
        names mirror :class:`repro.infer.unify.UnifierStats` fields).
        """
        stats = getattr(self.state, "stats", None)
        if stats is None:
            # Stand-in solver states (the benchmarks' legacy baseline)
            # carry no counters; nothing to publish.
            return
        counts = stats.as_dict()
        published = self._solver_published
        for key, value in counts.items():
            delta = value - published.get(key, 0)
            if delta:
                _REGISTRY.counter("solver." + key).inc(delta)
        self._solver_published = counts

    def _infer_unsigned(self, env: TypeEnv, name: str,
                        params: Sequence[str], rhs: Expr
                        ) -> Tuple[Scheme, List[ClassConstraint],
                                   Tuple[str, ...]]:
        param_types: List[SType] = []
        local_env = env
        for param in params:
            binder_type = self.state.fresh_type_uvar()
            self.record_binder(binder_type,
                               f"parameter {param!r} of {name!r}")
            param_types.append(binder_type)
            local_env = local_env.bind(param, Scheme.monomorphic(binder_type))
        # Monomorphic recursion: the binding may refer to itself.
        self_type = self.state.fresh_type_uvar()
        local_env = local_env.bind(name, Scheme.monomorphic(self_type))
        rhs_type, wanted = self.infer(local_env, rhs)
        full_type: SType = rhs_type
        if param_types:
            full_type = fun(*param_types, rhs_type)
        traced = _TRACER.enabled
        if traced:
            _TRACER.begin("unit.unify", binding=name)
        try:
            self.state.unify_types(self_type, full_type)
            wanted = self._discharge(wanted)
            result: GeneralisationResult = generalise(
                self.state, env, full_type, wanted,
                generalise_reps=self.options.generalise_reps)
        finally:
            if traced:
                _TRACER.end("unit.unify")
        return result.scheme, list(result.residual_constraints), \
            result.defaulted_rep_vars

    def _check_against_signature(self, env: TypeEnv, name: str,
                                 params: Sequence[str], rhs: Expr,
                                 signature: SType
                                 ) -> Tuple[Scheme, List[ClassConstraint]]:
        declared = Scheme.from_type(signature)
        _, body, givens = self._skolemise(declared)
        previous_givens = list(self.givens)
        self.givens.extend(givens)
        try:
            local_env = env.bind(name, declared)  # polymorphic recursion OK
            current: SType = body
            for param in params:
                current = self.state.zonk_type(current)
                if not isinstance(current, FunTy):
                    raise TypeCheckError(
                        f"the equation for {name!r} has more parameters than "
                        f"its signature {signature.pretty()} allows")
                self.record_binder(current.argument,
                                   f"parameter {param!r} of {name!r}")
                local_env = local_env.bind(
                    param, Scheme.monomorphic(current.argument))
                current = current.result
            traced = _TRACER.enabled
            if traced:
                _TRACER.begin("unit.unify", binding=name, mode="check")
            try:
                wanted = self.check(local_env, rhs, current)
                residual = self._discharge(wanted)
            finally:
                if traced:
                    _TRACER.end("unit.unify")
            return declared, residual
        finally:
            self.givens = previous_givens

    def _infer_local_binding(self, env: TypeEnv, let: ELet) -> BindingResult:
        return self.infer_binding(env, let.var, (), let.rhs,
                                  signature=let.signature)

    # --------------------------------------------------------------- modules

    def infer_module(self, module: Module, env: TypeEnv) -> ModuleResult:
        """Infer every binding of a module, in declaration order."""
        result = ModuleResult()
        signatures = module.signatures()
        current_env = env

        for decl in module.decls:
            if isinstance(decl, DataDecl):
                current_env = current_env.bind_many(
                    _constructor_schemes(decl))
            elif isinstance(decl, ClassDecl):
                if self.class_env is None:
                    raise TypeCheckError(
                        "class declarations require a class environment "
                        "(see repro.classes)")
                self.class_env.register_class(decl)
                current_env = current_env.bind_many(
                    self.class_env.method_schemes(decl))
            elif isinstance(decl, InstanceDecl):
                if self.class_env is None:
                    raise TypeCheckError(
                        "instance declarations require a class environment "
                        "(see repro.classes)")
                self.class_env.register_instance(decl, self, current_env)
            elif isinstance(decl, FunBind):
                binding = self.infer_binding(
                    current_env, decl.name, decl.params, decl.rhs,
                    signature=signatures.get(decl.name))
                result.bindings[decl.name] = binding
                result.schemes[decl.name] = binding.scheme
                current_env = current_env.bind(decl.name, binding.scheme)
            # Standalone TypeSig declarations are picked up via signatures.

        result.env = current_env
        return result


def _constructor_schemes(decl: DataDecl) -> Dict[str, Scheme]:
    """Schemes for the constructors of an (ordinary, lifted) data type."""
    from ..surface.types import TyApp, TyCon, kind_of_type

    binder_kinds = [(binder.name, binder.kind) for binder in decl.binders]
    result_kind = TYPE_LIFTED
    tycon_kind = result_kind
    for _, kind in reversed(binder_kinds):
        from ..core.kinds import ArrowKind
        tycon_kind = ArrowKind(kind, tycon_kind)
    tycon = TyCon(decl.name, tycon_kind)
    result_type: SType = tycon
    for binder_name, binder_kind in binder_kinds:
        result_type = TyApp(result_type, TyVar(binder_name, binder_kind))

    schemes: Dict[str, Scheme] = {}
    for constructor in decl.constructors:
        constructor_type: SType = result_type
        for field_type in reversed(constructor.fields):
            constructor_type = FunTy(field_type, constructor_type)
        schemes[constructor.name] = Scheme(
            (), tuple(binder_kinds), (), constructor_type)
    return schemes


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def infer_expr(expr: Expr, env: Optional[TypeEnv] = None,
               options: Optional[InferOptions] = None,
               class_env=None) -> SType:
    """Infer (and zonk) the type of a single expression."""
    from ..surface.prelude import prelude_env

    inferencer = Inferencer(options, class_env)
    environment = env or prelude_env()
    type_, constraints = inferencer.infer(environment, expr)
    residual = inferencer._discharge(constraints)
    inferencer._require_no_residual("<expression>", residual)
    if inferencer.options.run_levity_check:
        report = check_records(inferencer.state, inferencer.records)
        if report.violations:
            raise LevityPolymorphicBinder(report.pretty()) \
                if report.violations[0].kind_of_violation == "binder" \
                else LevityPolymorphicArgument(report.pretty())
    return inferencer.state.zonk_type(type_)


def infer_binding(name: str, params: Sequence[str], rhs: Expr,
                  signature: Optional[SType] = None,
                  env: Optional[TypeEnv] = None,
                  options: Optional[InferOptions] = None,
                  class_env=None) -> BindingResult:
    """Infer or check a single top-level binding against the prelude."""
    from ..surface.prelude import prelude_env

    inferencer = Inferencer(options, class_env)
    return inferencer.infer_binding(env or prelude_env(), name, params, rhs,
                                    signature)


def infer_module(module: Module, env: Optional[TypeEnv] = None,
                 options: Optional[InferOptions] = None,
                 class_env=None) -> ModuleResult:
    """Infer a whole module against the prelude."""
    from ..surface.prelude import prelude_env

    inferencer = Inferencer(options, class_env)
    return inferencer.infer_module(module, env or prelude_env())
