"""Type schemes and typing environments for the surface language.

A :class:`Scheme` is the inference engine's internal view of a polymorphic
type: an ordered list of quantified binders (representation binders first,
then type binders — the same telescope order GHC uses for
``forall (r :: RuntimeRep) (a :: TYPE r). ...``), a list of class
constraints, and a monomorphic body.

Schemes can be converted to and from the surface ``ForAllTy``/``QualTy``
syntax so that the same machinery handles both user-written signatures and
inferred, generalised types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..core.kinds import Kind, REP_KIND, TYPE_LIFTED, TypeKind
from ..core.rep import Rep, RepVar
from ..surface.types import (
    Binder,
    ClassConstraint,
    ForAllTy,
    QualTy,
    SType,
    TyVar,
)


@dataclass(frozen=True)
class Scheme:
    """``forall reps. forall tyvars. constraints => body``."""

    rep_binders: Tuple[str, ...]
    type_binders: Tuple[Tuple[str, Kind], ...]
    constraints: Tuple[ClassConstraint, ...]
    body: SType

    def __init__(self, rep_binders: Iterable[str] = (),
                 type_binders: Iterable[Tuple[str, Kind]] = (),
                 constraints: Iterable[ClassConstraint] = (),
                 body: Optional[SType] = None) -> None:
        if body is None:
            raise ValueError("a Scheme needs a body type")
        object.__setattr__(self, "rep_binders", tuple(rep_binders))
        object.__setattr__(self, "type_binders", tuple(type_binders))
        object.__setattr__(self, "constraints", tuple(constraints))
        object.__setattr__(self, "body", body)

    # -- queries -----------------------------------------------------------

    def is_monomorphic(self) -> bool:
        return not (self.rep_binders or self.type_binders or self.constraints)

    def is_levity_polymorphic(self) -> bool:
        """Does the scheme quantify over any runtime representation?"""
        return bool(self.rep_binders)

    def quantified_names(self) -> FrozenSet[str]:
        return frozenset(self.rep_binders) | frozenset(
            name for name, _ in self.type_binders)

    # -- conversions ---------------------------------------------------------

    def to_type(self) -> SType:
        """Render the scheme as a surface ``forall``/``=>`` type."""
        body: SType = self.body
        if self.constraints:
            body = QualTy(self.constraints, body)
        binders: List[Binder] = [Binder(name, REP_KIND)
                                 for name in self.rep_binders]
        binders.extend(Binder(name, kind)
                       for name, kind in self.type_binders)
        if binders:
            body = ForAllTy(binders, body)
        return body

    @staticmethod
    def from_type(type_: SType) -> "Scheme":
        """Parse a surface type into a scheme (rank-1 prenex form only)."""
        rep_binders: List[str] = []
        type_binders: List[Tuple[str, Kind]] = []
        constraints: List[ClassConstraint] = []
        current = type_
        while isinstance(current, ForAllTy):
            for binder in current.binders:
                if binder.is_rep_binder():
                    rep_binders.append(binder.name)
                else:
                    type_binders.append((binder.name, binder.kind))
            current = current.body
        if isinstance(current, QualTy):
            constraints.extend(current.constraints)
            current = current.body
        return Scheme(rep_binders, type_binders, constraints, current)

    @staticmethod
    def monomorphic(type_: SType) -> "Scheme":
        """A scheme with no quantification at all."""
        return Scheme((), (), (), type_)

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return self.to_type().pretty(explicit_runtime_reps)

    def __repr__(self) -> str:
        return f"Scheme({self.pretty()})"


@dataclass
class TypeEnv:
    """A typing environment mapping term names to schemes.

    Environments are persistent-ish: :meth:`bind` returns a new environment
    sharing the parent, so the inference engine can extend scopes without
    mutating the caller's environment.
    """

    bindings: Dict[str, Scheme] = field(default_factory=dict)
    parent: Optional["TypeEnv"] = None

    def lookup(self, name: str) -> Optional[Scheme]:
        env: Optional[TypeEnv] = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        return None

    def bind(self, name: str, scheme: Scheme) -> "TypeEnv":
        return TypeEnv({name: scheme}, parent=self)

    def bind_many(self, items: Mapping[str, Scheme]) -> "TypeEnv":
        return TypeEnv(dict(items), parent=self)

    def all_bindings(self) -> Dict[str, Scheme]:
        result: Dict[str, Scheme] = {}
        chain: List[TypeEnv] = []
        env: Optional[TypeEnv] = self
        while env is not None:
            chain.append(env)
            env = env.parent
        for env in reversed(chain):
            result.update(env.bindings)
        return result

    def free_uvars(self) -> FrozenSet[str]:
        """Type unification variables free in any binding (for generalisation)."""
        out: FrozenSet[str] = frozenset()
        for scheme in self.all_bindings().values():
            out = out | scheme.body.free_uvars()
        return out

    def free_rep_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for scheme in self.all_bindings().values():
            out = (out | scheme.body.free_rep_vars()) - frozenset(
                scheme.rep_binders)
        return out
