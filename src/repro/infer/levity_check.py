"""The post-inference levity-polymorphism check (Sections 5.1 and 8.2).

GHC performs the two Section 5.1 checks **after** type inference is
complete, in the desugarer, once all unification variables have been solved
(and the types zonked).  This module mirrors that architecture:

* during inference, the engine records every λ/let binder and every function
  argument it elaborates, together with the (possibly not-yet-zonked) type
  it assigned;
* after inference and defaulting, :func:`check_records` zonks each recorded
  type, computes its kind, and applies the two restrictions using the shared
  :class:`repro.core.levity.LevityChecker`.

Keeping the records around (rather than raising eagerly) matches the paper's
observation that the check "can be easily performed after type inference is
complete" and gives far better error messages than failing mid-unification.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.errors import KindError, TypeCheckError
from ..core.kinds import Kind, TypeKind
from ..core.levity import LevityChecker, LevityViolation
from ..surface.types import SType, kind_of_type
from .unify import UnifierState


@dataclass(frozen=True)
class LevityRecord:
    """One place where the Section 5.1 restrictions must be verified."""

    kind_of_site: str      # "binder" or "argument"
    description: str       # e.g. "lambda binder 'x' in 'abs2'"
    type: SType
    #: Source span of the recorded site (the sub-expression, when the
    #: inference engine had one on record), threaded onto any violation.
    span: Optional[object] = None


@dataclass
class LevityCheckReport:
    """The outcome of the desugarer-style post-pass."""

    violations: List[LevityViolation] = field(default_factory=list)
    checked_sites: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def pretty(self) -> str:
        if self.ok:
            return (f"levity check passed on {self.checked_sites} "
                    "binder/argument sites")
        lines = [f"levity check failed ({len(self.violations)} violation(s)):"]
        lines.extend("  " + v.pretty() for v in self.violations)
        return "\n".join(lines)


def kind_of_zonked(state: UnifierState, type_: SType) -> Kind:
    """Zonk ``type_`` and compute its kind (also zonked)."""
    zonked = state.zonk_type(type_)
    kind = kind_of_type(zonked)
    return state.zonk_kind(kind)


def check_records(state: UnifierState,
                  records: List[LevityRecord],
                  collect: bool = True) -> LevityCheckReport:
    """Run the two Section 5.1 checks over all recorded sites.

    With ``collect=True`` (the default) every violation is gathered into the
    report; with ``collect=False`` the first violation raises the matching
    :class:`~repro.core.errors.LevityError` subclass immediately.
    """
    checker = LevityChecker(collect=collect)
    report = LevityCheckReport()
    for record in records:
        report.checked_sites += 1
        try:
            kind = kind_of_zonked(state, record.type)
        except (KindError, TypeCheckError) as exc:
            # A site whose type does not even kind-check is reported as a
            # binder violation so the caller sees a single failure channel.
            report.violations.append(
                LevityViolation(record.kind_of_site,
                                f"{record.description}: {exc}", None,
                                record.span))
            continue
        seen = len(checker.violations)
        if record.kind_of_site == "binder":
            checker.check_binder(kind, record.description)
        else:
            checker.check_argument(kind, record.description)
        if record.span is not None:
            # Stamp this record's span onto the violations it produced.
            checker.violations[seen:] = [
                dataclasses.replace(violation, span=record.span)
                for violation in checker.violations[seen:]]
    report.violations.extend(checker.violations)
    return report
