"""Surface-language expressions and declarations ("MiniHaskell").

The surface language is the GHC-flavoured layer the paper's examples are
written in: ``bTwice``, ``sumTo``/``sumTo#``, ``error``/``myError``, ``($)``,
``(.)``, the generalised ``Num`` class and the ``abs1``/``abs2`` pair.  It is
deliberately a *subset* of Haskell — enough to express every program that
appears in the paper — with:

* unboxed literals (``3#``, ``2.5##``) alongside boxed ones;
* lambdas with optional type annotations on binders;
* ``let`` bindings with optional type signatures (the vehicle for declared
  levity polymorphism, Section 5.2);
* conditionals and saturated constructor applications;
* unboxed tuple expressions;
* top-level declarations: type signatures, function bindings, ``data``,
  ``class`` and ``instance`` declarations.

Type checking and inference for these forms live in :mod:`repro.infer`;
execution with a cost model lives in :mod:`repro.runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .types import Binder, ClassConstraint, SType


class Expr:
    """Abstract base class of surface expressions."""

    def free_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def pretty(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class EVar(Expr):
    """A variable or (by convention) an operator name such as ``+#``."""

    name: str

    def free_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def is_symbolic(self) -> bool:
        """Is this an operator name that must print in section form?"""
        return not (self.name[0].isalpha() or self.name[0] in "_(")

    def pretty(self) -> str:
        # A symbolic operator prints as its section `(+#)` so the output
        # re-parses in *every* position (binding rhs, let rhs, case rhs,
        # tuple component, ...), not just the application positions the
        # parser's operator table can recover.
        if self.is_symbolic():
            return f"({self.name})"
        return self.name


@dataclass(frozen=True)
class ELitInt(Expr):
    """A boxed integer literal such as ``42`` (type ``Int``)."""

    value: int

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def pretty(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ELitIntHash(Expr):
    """An unboxed integer literal such as ``42#`` (type ``Int#``)."""

    value: int

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def pretty(self) -> str:
        return f"{self.value}#"


@dataclass(frozen=True)
class ELitDoubleHash(Expr):
    """An unboxed double literal such as ``2.5##`` (type ``Double#``)."""

    value: float

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def pretty(self) -> str:
        return f"{self.value}##"


_STRING_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t",
                   "\r": "\\r", "\0": "\\0"}


@dataclass(frozen=True)
class ELitString(Expr):
    """A string literal (type ``String``)."""

    value: str

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def pretty(self) -> str:
        # Double-quoted with the lexer's escapes: Python's repr prefers
        # single quotes, which the lexer reads as a character literal.
        body = "".join(_STRING_ESCAPES.get(ch, ch) for ch in self.value)
        return f'"{body}"'


@dataclass(frozen=True)
class ELitChar(Expr):
    """A boxed character literal (type ``Char``)."""

    value: str

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def pretty(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True)
class EBool(Expr):
    """``True`` or ``False``."""

    value: bool

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def pretty(self) -> str:
        return "True" if self.value else "False"


@dataclass(frozen=True)
class EApp(Expr):
    """Application ``function argument``."""

    function: Expr
    argument: Expr

    def free_vars(self) -> FrozenSet[str]:
        return self.function.free_vars() | self.argument.free_vars()

    def pretty(self) -> str:
        # Symbolic operators (`+#`, `-`, `$`) already render in section form
        # via EVar.pretty, so function position needs no extra wrapping for
        # them; `case` joins the other special forms because `f case x of
        # {...}` does not re-parse (case is not an aexp).
        fun = self.function.pretty()
        if isinstance(self.function, (ELam, ELet, EIf, ECase)) \
                or fun.startswith("-"):
            # A leading minus in function position would re-parse as a
            # prefix negation of the whole application.
            fun = f"({fun})"
        arg = self.argument.pretty()
        if isinstance(self.argument, (EApp, ELam, ELet, EIf, ECase)) \
                or arg.startswith("-"):
            # Negative literals must keep their parens: `f -1` would
            # re-parse as the infix subtraction `f - 1`.
            arg = f"({arg})"
        return f"{fun} {arg}"


@dataclass(frozen=True)
class ELam(Expr):
    """``\\x -> body`` with an optional binder annotation ``\\(x :: t) -> body``."""

    var: str
    body: Expr
    annotation: Optional[SType] = None

    def free_vars(self) -> FrozenSet[str]:
        return self.body.free_vars() - {self.var}

    def pretty(self) -> str:
        if self.annotation is not None:
            return (f"\\({self.var} :: {self.annotation.pretty()}) -> "
                    f"{self.body.pretty()}")
        return f"\\{self.var} -> {self.body.pretty()}"


@dataclass(frozen=True)
class ELet(Expr):
    """``let x = rhs in body`` with an optional type signature for ``x``."""

    var: str
    rhs: Expr
    body: Expr
    signature: Optional[SType] = None

    def free_vars(self) -> FrozenSet[str]:
        return self.rhs.free_vars() | (self.body.free_vars() - {self.var})

    def pretty(self) -> str:
        sig = ""
        if self.signature is not None:
            sig = f"{self.var} :: {self.signature.pretty()}; "
        return (f"let {sig}{self.var} = {self.rhs.pretty()} in "
                f"{self.body.pretty()}")


@dataclass(frozen=True)
class EIf(Expr):
    """``if condition then consequent else alternative``."""

    condition: Expr
    consequent: Expr
    alternative: Expr

    def free_vars(self) -> FrozenSet[str]:
        return (self.condition.free_vars() | self.consequent.free_vars()
                | self.alternative.free_vars())

    def pretty(self) -> str:
        return (f"if {self.condition.pretty()} then "
                f"{self.consequent.pretty()} else "
                f"{self.alternative.pretty()}")


@dataclass(frozen=True)
class EAnn(Expr):
    """A type-annotated expression ``expr :: type``."""

    expr: Expr
    type: SType

    def free_vars(self) -> FrozenSet[str]:
        return self.expr.free_vars()

    def pretty(self) -> str:
        inner = self.expr.pretty()
        if isinstance(self.expr, (ELam, ELet, EIf)):
            # These forms extend maximally, so `let ... in b :: t` would
            # re-parse with the annotation attached to the *body*.
            inner = f"({inner})"
        return f"({inner} :: {self.type.pretty()})"


@dataclass(frozen=True)
class EUnboxedTuple(Expr):
    """An unboxed tuple expression ``(# e1, ..., en #)``."""

    components: Tuple[Expr, ...]

    def __init__(self, components: Iterable[Expr] = ()) -> None:
        object.__setattr__(self, "components", tuple(components))

    def free_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for component in self.components:
            out = out | component.free_vars()
        return out

    def pretty(self) -> str:
        inner = ", ".join(c.pretty() for c in self.components)
        return f"(# {inner} #)" if inner else "(# #)"


@dataclass(frozen=True)
class ECase(Expr):
    """``case scrutinee of { pattern -> rhs ; ... }`` with simple patterns."""

    scrutinee: Expr
    alternatives: Tuple["Alternative", ...]

    def __init__(self, scrutinee: Expr,
                 alternatives: Iterable["Alternative"]) -> None:
        object.__setattr__(self, "scrutinee", scrutinee)
        object.__setattr__(self, "alternatives", tuple(alternatives))

    def free_vars(self) -> FrozenSet[str]:
        out = self.scrutinee.free_vars()
        for alternative in self.alternatives:
            out = out | (alternative.rhs.free_vars()
                         - frozenset(alternative.binders))
        return out

    def pretty(self) -> str:
        alts = "; ".join(a.pretty() for a in self.alternatives)
        return f"case {self.scrutinee.pretty()} of {{ {alts} }}"


@dataclass(frozen=True)
class Alternative:
    """One alternative of a case expression: constructor, binders, rhs.

    ``constructor`` may be a data constructor name (``"I#"``, ``"Just"``),
    an integer literal (as a string), or ``"_"`` for the wildcard.
    """

    constructor: str
    binders: Tuple[str, ...]
    rhs: Expr

    def __init__(self, constructor: str, binders: Iterable[str],
                 rhs: Expr) -> None:
        object.__setattr__(self, "constructor", constructor)
        object.__setattr__(self, "binders", tuple(binders))
        object.__setattr__(self, "rhs", rhs)

    def pretty(self) -> str:
        if self.constructor == "(#,#)":
            pattern = f"(# {', '.join(self.binders)} #)"
        else:
            binders = " ".join(self.binders)
            pattern = f"{self.constructor} {binders}".strip()
        return f"{pattern} -> {self.rhs.pretty()}"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


class Decl:
    """Abstract base class of top-level declarations."""

    def pretty(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class ModuleHeader(Decl):
    """The ``module M where`` header naming a module.

    Parsed as a declaration so the incremental block parser can memoise it
    like any other column-1 block; :func:`repro.frontend.parser` enforces
    that it is the *first* declaration and folds its name into
    :attr:`Module.name`.
    """

    name: str

    def pretty(self) -> str:
        return f"module {self.name} where"


@dataclass(frozen=True)
class ImportDecl(Decl):
    """An ``import N`` declaration bringing module ``N``'s exports into scope.

    Imports are unqualified and total: every top-level binding the named
    module defines becomes visible.  The project planner
    (:mod:`repro.driver.project`) resolves them; in single-file checking
    they produce a warning and the imported names simply stay out of
    scope.
    """

    #: The imported module's name (the target of the edge in the project
    #: dependency graph).  ``Decl.name`` conventions elsewhere refer to the
    #: *defined* name, which an import does not have; the planner treats
    #: imports positionally.
    name: str

    def pretty(self) -> str:
        return f"import {self.name}"


@dataclass(frozen=True)
class TypeSig(Decl):
    """A standalone type signature ``name :: type``."""

    name: str
    type: SType

    def pretty(self) -> str:
        return f"{self.name} :: {self.type.pretty()}"


@dataclass(frozen=True)
class FunBind(Decl):
    """A function binding ``name p1 ... pn = rhs`` (parameters are variables)."""

    name: str
    params: Tuple[str, ...]
    rhs: Expr

    def __init__(self, name: str, params: Iterable[str], rhs: Expr) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "params", tuple(params))
        object.__setattr__(self, "rhs", rhs)

    def as_lambda(self) -> Expr:
        """The equivalent nested-lambda right-hand side."""
        expr: Expr = self.rhs
        for param in reversed(self.params):
            expr = ELam(param, expr)
        return expr

    def pretty(self) -> str:
        params = " ".join(self.params)
        head = f"{self.name} {params}".strip()
        return f"{head} = {self.rhs.pretty()}"


@dataclass(frozen=True)
class ConstructorDecl:
    """A data constructor with its field types."""

    name: str
    fields: Tuple[SType, ...]

    def __init__(self, name: str, fields: Iterable[SType] = ()) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "fields", tuple(fields))

    def pretty(self) -> str:
        fields = " ".join(f.pretty() for f in self.fields)
        return f"{self.name} {fields}".strip()


@dataclass(frozen=True)
class DataDecl(Decl):
    """``data Name b1 ... bn = C1 t11 ... | C2 ...``."""

    name: str
    binders: Tuple[Binder, ...]
    constructors: Tuple[ConstructorDecl, ...]

    def __init__(self, name: str, binders: Iterable[Binder],
                 constructors: Iterable[ConstructorDecl]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "binders", tuple(binders))
        object.__setattr__(self, "constructors", tuple(constructors))

    def pretty(self) -> str:
        binders = " ".join(b.name for b in self.binders)
        head = f"data {self.name} {binders}".strip()
        constructors = " | ".join(c.pretty() for c in self.constructors)
        return f"{head} = {constructors}"


@dataclass(frozen=True)
class ClassDecl(Decl):
    """``class Name (a :: k) where`` with method signatures.

    ``class_var_kind`` is where levity polymorphism enters: the classic
    ``Num a`` has ``a :: Type`` whereas the generalised class of Section 7.3
    has ``a :: TYPE r`` for a quantified ``r``.
    """

    name: str
    class_var: str
    class_var_kind_binders: Tuple[Binder, ...]  # e.g. (r :: Rep) when generalised
    class_var_binder: Binder
    methods: Tuple[Tuple[str, SType], ...]
    superclasses: Tuple[ClassConstraint, ...] = ()

    def __init__(self, name: str, class_var: str,
                 class_var_binder: Binder,
                 methods: Iterable[Tuple[str, SType]],
                 class_var_kind_binders: Iterable[Binder] = (),
                 superclasses: Iterable[ClassConstraint] = ()) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "class_var", class_var)
        object.__setattr__(self, "class_var_binder", class_var_binder)
        object.__setattr__(self, "methods", tuple(methods))
        object.__setattr__(self, "class_var_kind_binders",
                           tuple(class_var_kind_binders))
        object.__setattr__(self, "superclasses", tuple(superclasses))

    def method_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.methods)

    def pretty(self) -> str:
        methods = "; ".join(f"{n} :: {t.pretty()}" for n, t in self.methods)
        return (f"class {self.name} "
                f"({self.class_var} :: "
                f"{self.class_var_binder.kind.pretty()}) where {{ {methods} }}")


@dataclass(frozen=True)
class InstanceDecl(Decl):
    """``instance Name T where`` with method implementations."""

    class_name: str
    instance_type: SType
    methods: Tuple[Tuple[str, Expr], ...]

    def __init__(self, class_name: str, instance_type: SType,
                 methods: Iterable[Tuple[str, Expr]]) -> None:
        object.__setattr__(self, "class_name", class_name)
        object.__setattr__(self, "instance_type", instance_type)
        object.__setattr__(self, "methods", tuple(methods))

    def pretty(self) -> str:
        methods = "; ".join(f"{n} = {e.pretty()}" for n, e in self.methods)
        return (f"instance {self.class_name} {self.instance_type.pretty()} "
                f"where {{ {methods} }}")


@dataclass(frozen=True)
class Module:
    """A surface module: an ordered list of declarations."""

    name: str
    decls: Tuple[Decl, ...]

    def __init__(self, name: str, decls: Iterable[Decl]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "decls", tuple(decls))

    def signatures(self) -> Dict[str, SType]:
        return {d.name: d.type for d in self.decls if isinstance(d, TypeSig)}

    def bindings(self) -> Dict[str, FunBind]:
        return {d.name: d for d in self.decls if isinstance(d, FunBind)}

    def header(self) -> Optional[ModuleHeader]:
        for decl in self.decls:
            if isinstance(decl, ModuleHeader):
                return decl
        return None

    def imports(self) -> List[str]:
        """Imported module names, in declaration order, de-duplicated."""
        seen: Dict[str, None] = {}
        for decl in self.decls:
            if isinstance(decl, ImportDecl):
                seen.setdefault(decl.name, None)
        return list(seen)

    def classes(self) -> Dict[str, ClassDecl]:
        return {d.name: d for d in self.decls if isinstance(d, ClassDecl)}

    def instances(self) -> List[InstanceDecl]:
        return [d for d in self.decls if isinstance(d, InstanceDecl)]

    def data_decls(self) -> Dict[str, DataDecl]:
        return {d.name: d for d in self.decls if isinstance(d, DataDecl)}

    def pretty(self) -> str:
        return "\n".join(d.pretty() for d in self.decls)


def apply(function: Expr, *arguments: Expr) -> Expr:
    """Left-nested application."""
    expr = function
    for argument in arguments:
        expr = EApp(expr, argument)
    return expr


def lams(params: Sequence[str], body: Expr) -> Expr:
    """Nested lambdas ``\\p1 -> ... \\pn -> body``."""
    expr = body
    for param in reversed(params):
        expr = ELam(param, expr)
    return expr
