"""The built-in term-level prelude: primops and levity-polymorphic functions.

This module plays the role of GHC's ``ghc-prim`` + the handful of ``base``
functions the paper discusses:

* unboxed arithmetic and comparison primops (``+#``, ``*#``, ``<#``,
  ``+##``, …) with fully monomorphic unboxed types;
* the boxing data constructors ``I#``, ``F#``, ``D#``, ``C#`` and the
  monomorphic boxed arithmetic helpers (``plusInt`` and friends, defined in
  the paper's Section 2.1 style);
* the six levity-generalised functions of Section 8.1 — ``error``,
  ``errorWithoutStackTrace``, ``undefined`` (the paper's ⊥), ``oneShot``,
  ``runRW#`` and ``($)`` — with their levity-polymorphic types;
* the levity-polymorphic ``(.)`` of Section 7.2 (generalised result only);
* a few ordinary lifted helpers used by the examples.

Every entry is a :class:`repro.infer.schemes.Scheme`; the inference engine
seeds its environment from :func:`prelude_env`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.kinds import REP_KIND, TYPE_LIFTED, TypeKind
from ..core.rep import RepVar
from ..infer.schemes import Scheme, TypeEnv
from .types import (
    BOOL_TY,
    CHAR_HASH_TY,
    CHAR_TY,
    DOUBLE_HASH_TY,
    DOUBLE_TY,
    FLOAT_HASH_TY,
    FLOAT_TY,
    INT_HASH_TY,
    INT_TY,
    LIST_TY,
    MAYBE_TY,
    ORDERING_TY,
    SType,
    STRING_TY,
    TyApp,
    TyVar,
    UNIT_TY,
    UnboxedTupleTy,
    WORD_HASH_TY,
    WORD_TY,
    fun,
)


def _rep_kind(name: str) -> TypeKind:
    """The kind ``TYPE name`` for a representation variable ``name``."""
    return TypeKind(RepVar(name))


def _mono(type_: SType) -> Scheme:
    return Scheme.monomorphic(type_)


def _binop(ty: SType, result: SType = None) -> Scheme:  # type: ignore[assignment]
    result = result if result is not None else ty
    return _mono(fun(ty, ty, result))


# ---------------------------------------------------------------------------
# Unboxed primops (ghc-prim)
# ---------------------------------------------------------------------------

PRIMOPS: Dict[str, Scheme] = {
    # Int# arithmetic; comparisons return Int# (0/1) exactly as in GHC.
    "+#": _binop(INT_HASH_TY),
    "-#": _binop(INT_HASH_TY),
    "*#": _binop(INT_HASH_TY),
    "quotInt#": _binop(INT_HASH_TY),
    "remInt#": _binop(INT_HASH_TY),
    "negateInt#": _mono(fun(INT_HASH_TY, INT_HASH_TY)),
    "<#": _binop(INT_HASH_TY, INT_HASH_TY),
    ">#": _binop(INT_HASH_TY, INT_HASH_TY),
    "<=#": _binop(INT_HASH_TY, INT_HASH_TY),
    ">=#": _binop(INT_HASH_TY, INT_HASH_TY),
    "==#": _binop(INT_HASH_TY, INT_HASH_TY),
    "/=#": _binop(INT_HASH_TY, INT_HASH_TY),
    # Double# arithmetic.
    "+##": _binop(DOUBLE_HASH_TY),
    "-##": _binop(DOUBLE_HASH_TY),
    "*##": _binop(DOUBLE_HASH_TY),
    "/##": _binop(DOUBLE_HASH_TY),
    "negateDouble#": _mono(fun(DOUBLE_HASH_TY, DOUBLE_HASH_TY)),
    "<##": _binop(DOUBLE_HASH_TY, INT_HASH_TY),
    "==##": _binop(DOUBLE_HASH_TY, INT_HASH_TY),
    # Float# arithmetic.
    "plusFloat#": _binop(FLOAT_HASH_TY),
    "timesFloat#": _binop(FLOAT_HASH_TY),
    # Char#.
    "eqChar#": _binop(CHAR_HASH_TY, INT_HASH_TY),
    "ord#": _mono(fun(CHAR_HASH_TY, INT_HASH_TY)),
    "chr#": _mono(fun(INT_HASH_TY, CHAR_HASH_TY)),
    # Conversions.
    "int2Double#": _mono(fun(INT_HASH_TY, DOUBLE_HASH_TY)),
    "double2Int#": _mono(fun(DOUBLE_HASH_TY, INT_HASH_TY)),
    "int2Word#": _mono(fun(INT_HASH_TY, WORD_HASH_TY)),
    "word2Int#": _mono(fun(WORD_HASH_TY, INT_HASH_TY)),
}

# ---------------------------------------------------------------------------
# Boxing constructors and monomorphic boxed helpers (Section 2.1 style)
# ---------------------------------------------------------------------------

CONSTRUCTORS: Dict[str, Scheme] = {
    "I#": _mono(fun(INT_HASH_TY, INT_TY)),
    "W#": _mono(fun(WORD_HASH_TY, WORD_TY)),
    "F#": _mono(fun(FLOAT_HASH_TY, FLOAT_TY)),
    "D#": _mono(fun(DOUBLE_HASH_TY, DOUBLE_TY)),
    "C#": _mono(fun(CHAR_HASH_TY, CHAR_TY)),
    "True": _mono(BOOL_TY),
    "False": _mono(BOOL_TY),
    "Nothing": Scheme((), (("a", TYPE_LIFTED),), (),
                      TyApp(MAYBE_TY, TyVar("a"))),
    "Just": Scheme((), (("a", TYPE_LIFTED),), (),
                   fun(TyVar("a"), TyApp(MAYBE_TY, TyVar("a")))),
    "()": _mono(UNIT_TY),
}

BOXED_HELPERS: Dict[str, Scheme] = {
    "plusInt": _binop(INT_TY),
    "minusInt": _binop(INT_TY),
    "timesInt": _binop(INT_TY),
    # The operator spellings of the same Section 2.1 helpers, so ordinary
    # boxed arithmetic (`1 + 2` at type Int) works out of the box.  They are
    # deliberately monomorphic: the generalised Num class of Section 7.3 is
    # opt-in via repro.classes, not wired into the default prelude.
    "+": _binop(INT_TY),
    "-": _binop(INT_TY),
    "*": _binop(INT_TY),
    "negate": _mono(fun(INT_TY, INT_TY)),
    "eqInt": _binop(INT_TY, BOOL_TY),
    "ltInt": _binop(INT_TY, BOOL_TY),
    "not": _mono(fun(BOOL_TY, BOOL_TY)),
    "&&": _binop(BOOL_TY),
    "||": _binop(BOOL_TY),
    "++": Scheme((), (("a", TYPE_LIFTED),), (),
                 fun(TyApp(LIST_TY, TyVar("a")), TyApp(LIST_TY, TyVar("a")),
                     TyApp(LIST_TY, TyVar("a")))),
    "appendString": _binop(STRING_TY),
    "show": Scheme((), (("a", TYPE_LIFTED),), (),
                   fun(TyVar("a"), STRING_TY)),
}

# ---------------------------------------------------------------------------
# The six levity-generalised functions of Section 8.1
# ---------------------------------------------------------------------------


def _levity_poly_result(name: str) -> Scheme:
    """``forall (r :: Rep) (a :: TYPE r). String -> a`` (error-like)."""
    return Scheme(("r",), (("a", _rep_kind("r")),), (),
                  fun(STRING_TY, TyVar("a", _rep_kind("r"))))


#: ``error :: forall (r :: Rep) (a :: TYPE r). String -> a``
ERROR_SCHEME = _levity_poly_result("error")
#: ``errorWithoutStackTrace`` has the same levity-polymorphic type.
ERROR_WITHOUT_STACK_TRACE_SCHEME = _levity_poly_result("errorWithoutStackTrace")
#: ``undefined :: forall (r :: Rep) (a :: TYPE r). a`` — the paper's ⊥.
UNDEFINED_SCHEME = Scheme(("r",), (("a", _rep_kind("r")),), (),
                          TyVar("a", _rep_kind("r")))
#: ``oneShot :: forall (q r :: Rep) (a :: TYPE q) (b :: TYPE r). (a -> b) -> a -> b``
ONE_SHOT_SCHEME = Scheme(
    ("q", "r"),
    (("a", _rep_kind("q")), ("b", _rep_kind("r"))),
    (),
    fun(fun(TyVar("a", _rep_kind("q")), TyVar("b", _rep_kind("r"))),
        TyVar("a", _rep_kind("q")), TyVar("b", _rep_kind("r"))))
#: ``runRW# :: forall (r :: Rep) (o :: TYPE r). (State# RealWorld -> o) -> o``
#: modelled with the state token simplified to the unit unboxed tuple.
RUN_RW_SCHEME = Scheme(
    ("r",), (("o", _rep_kind("r")),), (),
    fun(fun(UnboxedTupleTy(()), TyVar("o", _rep_kind("r"))),
        TyVar("o", _rep_kind("r"))))
#: ``($) :: forall (r :: Rep) (a :: Type) (b :: TYPE r). (a -> b) -> a -> b``
DOLLAR_SCHEME = Scheme(
    ("r",),
    (("a", TYPE_LIFTED), ("b", _rep_kind("r"))),
    (),
    fun(fun(TyVar("a"), TyVar("b", _rep_kind("r"))), TyVar("a"),
        TyVar("b", _rep_kind("r"))))
#: ``(.) :: forall (r :: Rep) a b (c :: TYPE r). (b -> c) -> (a -> b) -> a -> c``
COMPOSE_SCHEME = Scheme(
    ("r",),
    (("a", TYPE_LIFTED), ("b", TYPE_LIFTED), ("c", _rep_kind("r"))),
    (),
    fun(fun(TyVar("b"), TyVar("c", _rep_kind("r"))),
        fun(TyVar("a"), TyVar("b")), TyVar("a"), TyVar("c", _rep_kind("r"))))

LEVITY_GENERALISED: Dict[str, Scheme] = {
    "error": ERROR_SCHEME,
    "errorWithoutStackTrace": ERROR_WITHOUT_STACK_TRACE_SCHEME,
    "undefined": UNDEFINED_SCHEME,
    "oneShot": ONE_SHOT_SCHEME,
    "runRW#": RUN_RW_SCHEME,
    "$": DOLLAR_SCHEME,
    ".": COMPOSE_SCHEME,
}

#: The pre-levity-polymorphism types of the same functions (all type
#: variables at kind ``Type``), used by the sub-kinding baseline comparisons.
LEGACY_LIFTED_ONLY: Dict[str, Scheme] = {
    "error": Scheme((), (("a", TYPE_LIFTED),), (),
                    fun(STRING_TY, TyVar("a"))),
    "undefined": Scheme((), (("a", TYPE_LIFTED),), (), TyVar("a")),
    "$": Scheme((), (("a", TYPE_LIFTED), ("b", TYPE_LIFTED)), (),
                fun(fun(TyVar("a"), TyVar("b")), TyVar("a"), TyVar("b"))),
    ".": Scheme((), (("a", TYPE_LIFTED), ("b", TYPE_LIFTED),
                     ("c", TYPE_LIFTED)), (),
                fun(fun(TyVar("b"), TyVar("c")), fun(TyVar("a"), TyVar("b")),
                    TyVar("a"), TyVar("c"))),
}


def prelude_schemes() -> Dict[str, Scheme]:
    """Every built-in binding, merged into one dictionary."""
    out: Dict[str, Scheme] = {}
    out.update(PRIMOPS)
    out.update(CONSTRUCTORS)
    out.update(BOXED_HELPERS)
    out.update(LEVITY_GENERALISED)
    return out


def prelude_env() -> TypeEnv:
    """A fresh typing environment seeded with the whole prelude."""
    return TypeEnv(prelude_schemes())


def legacy_prelude_env() -> TypeEnv:
    """The pre-levity-polymorphism prelude (for the sub-kinding baseline)."""
    schemes = prelude_schemes()
    schemes.update(LEGACY_LIFTED_ONLY)
    return TypeEnv(schemes)
