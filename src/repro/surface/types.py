"""Surface-language types with ``TYPE r`` kinds (the Section 4 design).

This is the "GHC-flavoured" layer of the reproduction: unlike the small
formal calculus L (which has exactly two base types and two concrete
representations), the surface language has

* a table of built-in type constructors with their kinds — ``Int :: Type``,
  ``Int# :: TYPE IntRep``, ``Maybe :: Type -> Type``,
  ``Array# :: Type -> TYPE UnliftedRep`` and so on;
* the levity-polymorphic function arrow
  ``(->) :: forall r1 r2. TYPE r1 -> TYPE r2 -> Type`` (Section 4.3);
* unboxed tuple types ``(# a, b #)`` whose kinds carry ``TupleRep`` lists
  (Section 4.2);
* quantification over type variables *and* representation variables, with
  class constraints (``Num a => ...``) for Section 7.3.

Kinds are the :class:`repro.core.kinds.Kind` values, so everything the core
package knows about representations (register shapes, concreteness, the
levity restrictions) applies directly to surface types.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import KindError, ScopeError, TypeCheckError
from ..core.kinds import (
    ArrowKind,
    CONSTRAINT,
    Kind,
    REP_KIND,
    TYPE_DOUBLE,
    TYPE_FLOAT,
    TYPE_INT,
    TYPE_LIFTED,
    TYPE_UNLIFTED,
    TypeKind,
    type_kind,
)
from ..core.rep import (
    ADDR_REP,
    CHAR_REP,
    DOUBLE_REP,
    FLOAT_REP,
    INT_REP,
    LIFTED,
    Rep,
    RepVar,
    TupleRep,
    UNLIFTED,
    WORD_REP,
)

# ---------------------------------------------------------------------------
# Type AST
# ---------------------------------------------------------------------------


class SType:
    """Abstract base class of surface types."""

    def free_type_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def free_rep_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def free_uvars(self) -> FrozenSet[str]:
        """Free *unification* variables (those invented by inference)."""
        raise NotImplementedError

    def subst_types(self, mapping: Dict[str, "SType"]) -> "SType":
        raise NotImplementedError

    def subst_reps(self, mapping: Dict[str, Rep]) -> "SType":
        raise NotImplementedError

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class TyCon(SType):
    """A type constructor with its kind, e.g. ``Int# :: TYPE IntRep``."""

    name: str
    kind: Kind

    def free_type_vars(self) -> FrozenSet[str]:
        return frozenset()

    def free_rep_vars(self) -> FrozenSet[str]:
        return self.kind.free_rep_vars()

    def free_uvars(self) -> FrozenSet[str]:
        return frozenset()

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        return self

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        return TyCon(self.name, self.kind.substitute_reps(mapping))

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return self.name


@dataclass(frozen=True)
class TyVar(SType):
    """A (rigid, user-written or skolemised) type variable with its kind."""

    name: str
    kind: Kind = TYPE_LIFTED

    def free_type_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def free_rep_vars(self) -> FrozenSet[str]:
        return self.kind.free_rep_vars()

    def free_uvars(self) -> FrozenSet[str]:
        return frozenset()

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        return mapping.get(self.name, self)

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        return TyVar(self.name, self.kind.substitute_reps(mapping))

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return self.name


@dataclass(frozen=True)
class TyUVar(SType):
    """A unification (meta) variable invented by the inference engine.

    Section 5.2: when GHC checks ``λx → e`` it invents a type unification
    variable ``α`` *and* a representation unification variable ``ρ`` and sets
    ``α :: TYPE ρ``.  The same happens here; solutions live in the
    :class:`repro.infer.unify.UnifierState` store rather than in mutable
    cells, and :meth:`repro.infer.unify.UnifierState.zonk_type` plays the
    role of GHC's zonking (Section 8.2).
    """

    name: str
    kind: Kind = TYPE_LIFTED

    def free_type_vars(self) -> FrozenSet[str]:
        return frozenset()

    def free_rep_vars(self) -> FrozenSet[str]:
        return self.kind.free_rep_vars()

    def free_uvars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        return mapping.get(self.name, self)

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        return TyUVar(self.name, self.kind.substitute_reps(mapping))

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return self.name


@dataclass(frozen=True)
class FunTy(SType):
    """The function type ``argument -> result``.

    The arrow itself is the levity-polymorphic
    ``(->) :: forall r1 r2. TYPE r1 -> TYPE r2 -> Type``; a saturated arrow
    type always has kind ``Type`` regardless of the representations of its
    argument and result (rule T_ARROW).
    """

    argument: SType
    result: SType

    def free_type_vars(self) -> FrozenSet[str]:
        return self.argument.free_type_vars() | self.result.free_type_vars()

    def free_rep_vars(self) -> FrozenSet[str]:
        return self.argument.free_rep_vars() | self.result.free_rep_vars()

    def free_uvars(self) -> FrozenSet[str]:
        return self.argument.free_uvars() | self.result.free_uvars()

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        return FunTy(self.argument.subst_types(mapping),
                     self.result.subst_types(mapping))

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        return FunTy(self.argument.subst_reps(mapping),
                     self.result.subst_reps(mapping))

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        arg = self.argument.pretty(explicit_runtime_reps)
        if isinstance(self.argument, (FunTy, ForAllTy, QualTy)):
            arg = f"({arg})"
        return f"{arg} -> {self.result.pretty(explicit_runtime_reps)}"


@dataclass(frozen=True)
class TyApp(SType):
    """Type application, e.g. ``Maybe Int`` or ``Array# Double``."""

    function: SType
    argument: SType

    def free_type_vars(self) -> FrozenSet[str]:
        return self.function.free_type_vars() | self.argument.free_type_vars()

    def free_rep_vars(self) -> FrozenSet[str]:
        return self.function.free_rep_vars() | self.argument.free_rep_vars()

    def free_uvars(self) -> FrozenSet[str]:
        return self.function.free_uvars() | self.argument.free_uvars()

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        return TyApp(self.function.subst_types(mapping),
                     self.argument.subst_types(mapping))

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        return TyApp(self.function.subst_reps(mapping),
                     self.argument.subst_reps(mapping))

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        arg = self.argument.pretty(explicit_runtime_reps)
        if isinstance(self.argument, (TyApp, FunTy, ForAllTy, QualTy)):
            arg = f"({arg})"
        return f"{self.function.pretty(explicit_runtime_reps)} {arg}"


@dataclass(frozen=True)
class UnboxedTupleTy(SType):
    """An unboxed tuple type ``(# t1, ..., tn #)`` (Section 4.2)."""

    components: Tuple[SType, ...]

    def __init__(self, components: Iterable[SType] = ()) -> None:
        object.__setattr__(self, "components", tuple(components))

    def free_type_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for component in self.components:
            out = out | component.free_type_vars()
        return out

    def free_rep_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for component in self.components:
            out = out | component.free_rep_vars()
        return out

    def free_uvars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for component in self.components:
            out = out | component.free_uvars()
        return out

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        return UnboxedTupleTy(c.subst_types(mapping) for c in self.components)

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        return UnboxedTupleTy(c.subst_reps(mapping) for c in self.components)

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        inner = ", ".join(c.pretty(explicit_runtime_reps)
                          for c in self.components)
        return f"(# {inner} #)" if inner else "(# #)"


@dataclass(frozen=True)
class Binder:
    """A quantified variable in a ``forall``: a type or representation binder."""

    name: str
    kind: Kind  # REP_KIND for representation binders, TYPE … otherwise

    def is_rep_binder(self) -> bool:
        return self.kind == REP_KIND

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return f"({self.name} :: {self.kind.pretty(explicit_runtime_reps)})"


@dataclass(frozen=True)
class ForAllTy(SType):
    """``forall (b1 :: k1) ... (bn :: kn). body``.

    Representation binders (``r :: Rep``) and type binders
    (``a :: TYPE r`` / ``a :: Type``) share this one construct, exactly as in
    GHC where ``RuntimeRep`` variables are ordinary kind-level variables.
    """

    binders: Tuple[Binder, ...]
    body: SType

    def __init__(self, binders: Iterable[Binder], body: SType) -> None:
        object.__setattr__(self, "binders", tuple(binders))
        object.__setattr__(self, "body", body)

    def free_type_vars(self) -> FrozenSet[str]:
        bound = {b.name for b in self.binders if not b.is_rep_binder()}
        return self.body.free_type_vars() - bound

    def free_rep_vars(self) -> FrozenSet[str]:
        bound = {b.name for b in self.binders if b.is_rep_binder()}
        out = self.body.free_rep_vars()
        for binder in self.binders:
            out = out | binder.kind.free_rep_vars()
        return out - bound

    def free_uvars(self) -> FrozenSet[str]:
        return self.body.free_uvars()

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        bound = {b.name for b in self.binders}
        filtered = {k: v for k, v in mapping.items() if k not in bound}
        return ForAllTy(self.binders, self.body.subst_types(filtered))

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        bound = {b.name for b in self.binders if b.is_rep_binder()}
        filtered = {k: v for k, v in mapping.items() if k not in bound}
        binders = tuple(Binder(b.name, b.kind.substitute_reps(filtered))
                        for b in self.binders)
        return ForAllTy(binders, self.body.subst_reps(filtered))

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        binders = self.binders
        if not explicit_runtime_reps:
            # Mirror GHC's display defaulting (Section 8.1): hide rep binders
            # and show their kinds as Type.
            binders = tuple(b for b in binders if not b.is_rep_binder())
        quantified = " ".join(b.pretty(explicit_runtime_reps)
                              for b in binders)
        body = self.body.pretty(explicit_runtime_reps)
        if not quantified:
            return body
        return f"forall {quantified}. {body}"


@dataclass(frozen=True)
class ClassConstraint:
    """A class constraint such as ``Num a`` (possibly at an unboxed type)."""

    class_name: str
    argument: SType

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        arg = self.argument.pretty(explicit_runtime_reps)
        if isinstance(self.argument, (TyApp, FunTy, ForAllTy)):
            arg = f"({arg})"
        return f"{self.class_name} {arg}"

    def __repr__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class QualTy(SType):
    """A qualified type ``C1, ..., Cn => body``."""

    constraints: Tuple[ClassConstraint, ...]
    body: SType

    def __init__(self, constraints: Iterable[ClassConstraint],
                 body: SType) -> None:
        object.__setattr__(self, "constraints", tuple(constraints))
        object.__setattr__(self, "body", body)

    def free_type_vars(self) -> FrozenSet[str]:
        out = self.body.free_type_vars()
        for constraint in self.constraints:
            out = out | constraint.argument.free_type_vars()
        return out

    def free_rep_vars(self) -> FrozenSet[str]:
        out = self.body.free_rep_vars()
        for constraint in self.constraints:
            out = out | constraint.argument.free_rep_vars()
        return out

    def free_uvars(self) -> FrozenSet[str]:
        out = self.body.free_uvars()
        for constraint in self.constraints:
            out = out | constraint.argument.free_uvars()
        return out

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        constraints = tuple(
            ClassConstraint(c.class_name, c.argument.subst_types(mapping))
            for c in self.constraints)
        return QualTy(constraints, self.body.subst_types(mapping))

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        constraints = tuple(
            ClassConstraint(c.class_name, c.argument.subst_reps(mapping))
            for c in self.constraints)
        return QualTy(constraints, self.body.subst_reps(mapping))

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        constraints = ", ".join(c.pretty(explicit_runtime_reps)
                                for c in self.constraints)
        if len(self.constraints) != 1:
            constraints = f"({constraints})"
        return f"{constraints} => {self.body.pretty(explicit_runtime_reps)}"


# ---------------------------------------------------------------------------
# Built-in type constructors (the surface "prelude" of types)
# ---------------------------------------------------------------------------

#: Boxed, lifted base types.
INT_TY = TyCon("Int", TYPE_LIFTED)
INTEGER_TY = TyCon("Integer", TYPE_LIFTED)
BOOL_TY = TyCon("Bool", TYPE_LIFTED)
CHAR_TY = TyCon("Char", TYPE_LIFTED)
FLOAT_TY = TyCon("Float", TYPE_LIFTED)
DOUBLE_TY = TyCon("Double", TYPE_LIFTED)
STRING_TY = TyCon("String", TYPE_LIFTED)
UNIT_TY = TyCon("()", TYPE_LIFTED)
WORD_TY = TyCon("Word", TYPE_LIFTED)
ORDERING_TY = TyCon("Ordering", TYPE_LIFTED)

#: Unboxed base types (Figure 1's bottom-right corner).
INT_HASH_TY = TyCon("Int#", TYPE_INT)
WORD_HASH_TY = TyCon("Word#", type_kind(WORD_REP))
CHAR_HASH_TY = TyCon("Char#", type_kind(CHAR_REP))
FLOAT_HASH_TY = TyCon("Float#", TYPE_FLOAT)
DOUBLE_HASH_TY = TyCon("Double#", TYPE_DOUBLE)
ADDR_HASH_TY = TyCon("Addr#", type_kind(ADDR_REP))

#: Boxed but unlifted types (Figure 1's bottom-left corner).
BYTEARRAY_HASH_TY = TyCon("ByteArray#", TYPE_UNLIFTED)
MUTABLE_BYTEARRAY_HASH_TY = TyCon(
    "MutableByteArray#", ArrowKind(TYPE_LIFTED, TYPE_UNLIFTED))
ARRAY_HASH_TY = TyCon("Array#", ArrowKind(TYPE_LIFTED, TYPE_UNLIFTED))
MUTVAR_HASH_TY = TyCon(
    "MutVar#", ArrowKind(TYPE_LIFTED, ArrowKind(TYPE_LIFTED, TYPE_UNLIFTED)))

#: Lifted type constructors.
MAYBE_TY = TyCon("Maybe", ArrowKind(TYPE_LIFTED, TYPE_LIFTED))
LIST_TY = TyCon("[]", ArrowKind(TYPE_LIFTED, TYPE_LIFTED))
PAIR_TY = TyCon("(,)", ArrowKind(TYPE_LIFTED,
                                 ArrowKind(TYPE_LIFTED, TYPE_LIFTED)))
EITHER_TY = TyCon("Either", ArrowKind(TYPE_LIFTED,
                                      ArrowKind(TYPE_LIFTED, TYPE_LIFTED)))
IO_TY = TyCon("IO", ArrowKind(TYPE_LIFTED, TYPE_LIFTED))

#: A name -> TyCon table used by the parser and the inference environment.
BUILTIN_TYCONS: Dict[str, TyCon] = {
    tycon.name: tycon
    for tycon in (
        INT_TY, INTEGER_TY, BOOL_TY, CHAR_TY, FLOAT_TY, DOUBLE_TY, STRING_TY,
        UNIT_TY, WORD_TY, ORDERING_TY,
        INT_HASH_TY, WORD_HASH_TY, CHAR_HASH_TY, FLOAT_HASH_TY,
        DOUBLE_HASH_TY, ADDR_HASH_TY,
        BYTEARRAY_HASH_TY, MUTABLE_BYTEARRAY_HASH_TY, ARRAY_HASH_TY,
        MUTVAR_HASH_TY,
        MAYBE_TY, LIST_TY, PAIR_TY, EITHER_TY, IO_TY,
    )
}


def lookup_tycon(name: str) -> TyCon:
    """Look up a built-in type constructor by name."""
    try:
        return BUILTIN_TYCONS[name]
    except KeyError:
        raise ScopeError(f"unknown type constructor {name!r}") from None


# ---------------------------------------------------------------------------
# Kinding
# ---------------------------------------------------------------------------


def kind_of_type(type_: SType,
                 rep_env: Optional[Dict[str, Rep]] = None) -> Kind:
    """Compute the kind of a surface type.

    ``rep_env`` maps in-scope representation-variable names to themselves
    (or to solutions); it is threaded by the inference engine.  Raises
    :class:`KindError` for ill-kinded types (for example an unsaturated
    type-constructor application applied to the wrong kind).
    """
    rep_env = rep_env or {}

    if isinstance(type_, (TyCon, TyVar, TyUVar)):
        return type_.kind

    if isinstance(type_, FunTy):
        # Both sides must have *some* value kind; the arrow is Type.
        for side, label in ((type_.argument, "argument"),
                            (type_.result, "result")):
            side_kind = kind_of_type(side, rep_env)
            if not isinstance(side_kind, TypeKind):
                raise KindError(
                    f"the {label} of a function arrow must have a value "
                    f"kind, but {side.pretty()} has kind {side_kind.pretty()}")
        return TYPE_LIFTED

    if isinstance(type_, TyApp):
        function_kind = kind_of_type(type_.function, rep_env)
        argument_kind = kind_of_type(type_.argument, rep_env)
        if not isinstance(function_kind, ArrowKind):
            raise KindError(
                f"{type_.function.pretty()} of kind {function_kind.pretty()} "
                "cannot be applied to a type argument")
        if function_kind.argument != argument_kind:
            raise KindError(
                f"kind mismatch in {type_.pretty()}: expected "
                f"{function_kind.argument.pretty()}, got "
                f"{argument_kind.pretty()}")
        return function_kind.result

    if isinstance(type_, UnboxedTupleTy):
        reps: List[Rep] = []
        for component in type_.components:
            component_kind = kind_of_type(component, rep_env)
            if not isinstance(component_kind, TypeKind):
                raise KindError(
                    f"unboxed tuple component {component.pretty()} has "
                    f"non-value kind {component_kind.pretty()}")
            reps.append(component_kind.rep)
        return TypeKind(TupleRep(reps))

    if isinstance(type_, ForAllTy):
        inner_env = dict(rep_env)
        for binder in type_.binders:
            if binder.is_rep_binder():
                inner_env[binder.name] = RepVar(binder.name)
        # As in L's T_ALLTY, a forall has the kind of its body (type erasure).
        return kind_of_type(type_.body, inner_env)

    if isinstance(type_, QualTy):
        return kind_of_type(type_.body, rep_env)

    raise TypeCheckError(f"unknown surface type form: {type_!r}")


def rep_of_type(type_: SType) -> Rep:
    """The runtime representation of a value type (its kind's ``Rep``)."""
    kind = kind_of_type(type_)
    if not isinstance(kind, TypeKind):
        raise KindError(
            f"{type_.pretty()} has kind {kind.pretty()}, which does not "
            "classify values")
    return kind.rep


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def fun(*types: SType) -> SType:
    """Right-nested function type: ``fun(a, b, c) == a -> (b -> c)``."""
    if not types:
        raise ValueError("fun needs at least one type")
    result = types[-1]
    for argument in reversed(types[:-1]):
        result = FunTy(argument, result)
    return result


def forall_reps(names: Sequence[str], body: SType) -> ForAllTy:
    """``forall (r1 :: Rep) ... . body``."""
    return ForAllTy(tuple(Binder(n, REP_KIND) for n in names), body)


def forall_types(binders: Sequence[Tuple[str, Kind]], body: SType) -> ForAllTy:
    """``forall (a1 :: k1) ... . body``."""
    return ForAllTy(tuple(Binder(n, k) for n, k in binders), body)


def rep_var_kind(name: str) -> TypeKind:
    """The kind ``TYPE r`` for a representation variable named ``name``."""
    return TypeKind(RepVar(name))


_uvar_counter = itertools.count()


def fresh_tyuvar(kind: Kind) -> TyUVar:
    """A fresh type unification variable of the given kind."""
    return TyUVar(f"t{next(_uvar_counter)}", kind)
