"""Surface-language types with ``TYPE r`` kinds (the Section 4 design).

This is the "GHC-flavoured" layer of the reproduction: unlike the small
formal calculus L (which has exactly two base types and two concrete
representations), the surface language has

* a table of built-in type constructors with their kinds — ``Int :: Type``,
  ``Int# :: TYPE IntRep``, ``Maybe :: Type -> Type``,
  ``Array# :: Type -> TYPE UnliftedRep`` and so on;
* the levity-polymorphic function arrow
  ``(->) :: forall r1 r2. TYPE r1 -> TYPE r2 -> Type`` (Section 4.3);
* unboxed tuple types ``(# a, b #)`` whose kinds carry ``TupleRep`` lists
  (Section 4.2);
* quantification over type variables *and* representation variables, with
  class constraints (``Num a => ...``) for Section 7.3.

Kinds are the :class:`repro.core.kinds.Kind` values, so everything the core
package knows about representations (register shapes, concreteness, the
levity restrictions) applies directly to surface types.

Performance notes (see ``docs/PERF.md``): the small, first-order type nodes
(:class:`TyCon`, :class:`TyVar`, :class:`TyUVar`, :class:`FunTy`,
:class:`TyApp`, :class:`UnboxedTupleTy`) are **hash-consed** with cached
hashes and memoised ``free_*`` queries, so structural equality usually
short-circuits on identity and substitution can skip untouched subtrees.
:func:`kind_of_type` is memoised on the interned node.  ``ForAllTy`` and
``QualTy`` are rarer and stay ordinary frozen dataclasses (with lazily
cached free-variable sets).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import KindError, ScopeError, TypeCheckError
from ..core.kinds import (
    ArrowKind,
    CONSTRAINT,
    Kind,
    REP_KIND,
    TYPE_DOUBLE,
    TYPE_FLOAT,
    TYPE_INT,
    TYPE_LIFTED,
    TYPE_UNLIFTED,
    TypeKind,
    type_kind,
)
from ..core.rep import (
    ADDR_REP,
    CHAR_REP,
    DOUBLE_REP,
    FLOAT_REP,
    INT_REP,
    LIFTED,
    Rep,
    RepVar,
    TupleRep,
    UNLIFTED,
    WORD_REP,
)

_EMPTY_NAMES: FrozenSet[str] = frozenset()

# ---------------------------------------------------------------------------
# Type AST
# ---------------------------------------------------------------------------


class SType:
    """Abstract base class of surface types."""

    __slots__ = ("_hash", "_ftv", "_frv", "_fuv")

    def _init_caches(self) -> None:
        self._hash = None
        self._ftv = None
        self._frv = None
        self._fuv = None

    def free_type_vars(self) -> FrozenSet[str]:
        free = self._ftv
        if free is None:
            free = self._compute_free_type_vars()
            self._ftv = free
        return free

    def free_rep_vars(self) -> FrozenSet[str]:
        free = self._frv
        if free is None:
            free = self._compute_free_rep_vars()
            self._frv = free
        return free

    def free_uvars(self) -> FrozenSet[str]:
        """Free *unification* variables (those invented by inference)."""
        free = self._fuv
        if free is None:
            free = self._compute_free_uvars()
            self._fuv = free
        return free

    def _compute_free_type_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def _compute_free_uvars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def subst_types(self, mapping: Dict[str, "SType"]) -> "SType":
        raise NotImplementedError

    def subst_reps(self, mapping: Dict[str, Rep]) -> "SType":
        raise NotImplementedError

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._compute_hash()
            self._hash = h
        return h

    def _compute_hash(self) -> int:
        raise NotImplementedError

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.pretty()


def _subst_untouched(type_: SType, mapping: Dict[str, object]) -> bool:
    """True when a type substitution cannot change ``type_``.

    Both :meth:`SType.subst_types` domains (rigid type variables *and*
    unification variables) must be disjoint from the mapping's keys.
    """
    if not mapping:
        return True
    return (type_.free_type_vars().isdisjoint(mapping)
            and type_.free_uvars().isdisjoint(mapping))


class TyCon(SType):
    """A type constructor with its kind, e.g. ``Int# :: TYPE IntRep``."""

    __slots__ = ("name", "kind")

    _intern: Dict[Tuple[str, Kind], "TyCon"] = {}

    def __new__(cls, name: str, kind: Kind) -> "TyCon":
        key = (name, kind)
        instance = cls._intern.get(key)
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            instance.name = name
            instance.kind = kind
            cls._intern[key] = instance
        return instance

    def __init__(self, name: str = "", kind: Kind = TYPE_LIFTED) -> None:
        pass

    def _compute_free_type_vars(self) -> FrozenSet[str]:
        return _EMPTY_NAMES

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        return self.kind.free_rep_vars()

    def _compute_free_uvars(self) -> FrozenSet[str]:
        return _EMPTY_NAMES

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        return self

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        if not mapping or self.free_rep_vars().isdisjoint(mapping):
            return self
        return TyCon(self.name, self.kind.substitute_reps(mapping))

    def __reduce__(self):
        # Hash-consed nodes have a required-argument ``__new__``, which the
        # default pickling protocol cannot call; reconstruct through the
        # constructor so unpickling re-interns in the receiving process.
        return (TyCon, (self.name, self.kind))

    def _compute_hash(self) -> int:
        return hash(("TyCon", self.name, self.kind))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (type(other) is TyCon and self.name == other.name
                and self.kind == other.kind)

    __hash__ = SType.__hash__

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return self.name


class TyVar(SType):
    """A (rigid, user-written or skolemised) type variable with its kind."""

    __slots__ = ("name", "kind")

    _intern: Dict[Tuple[str, Kind], "TyVar"] = {}

    def __new__(cls, name: str, kind: Kind = TYPE_LIFTED) -> "TyVar":
        key = (name, kind)
        instance = cls._intern.get(key)
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            instance.name = name
            instance.kind = kind
            cls._intern[key] = instance
        return instance

    def __init__(self, name: str = "", kind: Kind = TYPE_LIFTED) -> None:
        pass

    def _compute_free_type_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        return self.kind.free_rep_vars()

    def _compute_free_uvars(self) -> FrozenSet[str]:
        return _EMPTY_NAMES

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        if not mapping:
            return self
        return mapping.get(self.name, self)

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        if not mapping or self.free_rep_vars().isdisjoint(mapping):
            return self
        return TyVar(self.name, self.kind.substitute_reps(mapping))

    def __reduce__(self):
        return (TyVar, (self.name, self.kind))

    def _compute_hash(self) -> int:
        return hash(("TyVar", self.name, self.kind))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (type(other) is TyVar and self.name == other.name
                and self.kind == other.kind)

    __hash__ = SType.__hash__

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return self.name


class TyUVar(SType):
    """A unification (meta) variable invented by the inference engine.

    Section 5.2: when GHC checks ``λx → e`` it invents a type unification
    variable ``α`` *and* a representation unification variable ``ρ`` and sets
    ``α :: TYPE ρ``.  The same happens here; solutions live in the
    :class:`repro.infer.unify.UnifierState` store rather than in mutable
    cells, and :meth:`repro.infer.unify.UnifierState.zonk_type` plays the
    role of GHC's zonking (Section 8.2).

    Fresh variables made by :meth:`_fresh` carry an integer id and format
    their name lazily, so inventing a variable allocates no strings.
    """

    __slots__ = ("_name", "kind", "_fresh_id", "_fresh_prefix")

    _intern: Dict[Tuple[str, Kind], "TyUVar"] = {}

    def __new__(cls, name: str, kind: Kind = TYPE_LIFTED) -> "TyUVar":
        key = (name, kind)
        instance = cls._intern.get(key)
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            instance._name = name
            instance.kind = kind
            instance._fresh_id = None
            instance._fresh_prefix = None
            cls._intern[key] = instance
        return instance

    def __init__(self, name: str = "", kind: Kind = TYPE_LIFTED) -> None:
        pass

    @classmethod
    def _fresh(cls, uid: int, prefix: str, kind: Kind) -> "TyUVar":
        """A fresh variable whose name ``f"{prefix}{uid}"`` is formatted lazily."""
        instance = object.__new__(cls)
        instance._init_caches()
        instance._name = None
        instance.kind = kind
        instance._fresh_id = uid
        instance._fresh_prefix = prefix
        return instance

    @property
    def name(self) -> str:
        name = self._name
        if name is None:
            name = f"{self._fresh_prefix}{self._fresh_id}"
            self._name = name
        return name

    def _compute_free_type_vars(self) -> FrozenSet[str]:
        return _EMPTY_NAMES

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        return self.kind.free_rep_vars()

    def _compute_free_uvars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        if not mapping:
            return self
        return mapping.get(self.name, self)

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        if not mapping or self.free_rep_vars().isdisjoint(mapping):
            return self
        return TyUVar(self.name, self.kind.substitute_reps(mapping))

    def __reduce__(self):
        # Forces the lazily formatted name of fresh variables, which is
        # exactly what crossing a process boundary requires anyway.
        return (TyUVar, (self.name, self.kind))

    def _compute_hash(self) -> int:
        return hash(("TyUVar", self.name, self.kind))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (type(other) is TyUVar and self.name == other.name
                and self.kind == other.kind)

    __hash__ = SType.__hash__

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return self.name


class FunTy(SType):
    """The function type ``argument -> result``.

    The arrow itself is the levity-polymorphic
    ``(->) :: forall r1 r2. TYPE r1 -> TYPE r2 -> Type``; a saturated arrow
    type always has kind ``Type`` regardless of the representations of its
    argument and result (rule T_ARROW).
    """

    __slots__ = ("argument", "result")

    _intern: Dict[Tuple[SType, SType], "FunTy"] = {}

    def __new__(cls, argument: SType, result: SType) -> "FunTy":
        key = (argument, result)
        instance = cls._intern.get(key)
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            instance.argument = argument
            instance.result = result
            cls._intern[key] = instance
        return instance

    def __init__(self, argument: Optional[SType] = None,
                 result: Optional[SType] = None) -> None:
        pass

    def _compute_free_type_vars(self) -> FrozenSet[str]:
        return self.argument.free_type_vars() | self.result.free_type_vars()

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        return self.argument.free_rep_vars() | self.result.free_rep_vars()

    def _compute_free_uvars(self) -> FrozenSet[str]:
        return self.argument.free_uvars() | self.result.free_uvars()

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        if _subst_untouched(self, mapping):
            return self
        return FunTy(self.argument.subst_types(mapping),
                     self.result.subst_types(mapping))

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        if not mapping or self.free_rep_vars().isdisjoint(mapping):
            return self
        return FunTy(self.argument.subst_reps(mapping),
                     self.result.subst_reps(mapping))

    def __reduce__(self):
        return (FunTy, (self.argument, self.result))

    def _compute_hash(self) -> int:
        return hash(("FunTy", self.argument, self.result))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (type(other) is FunTy and self.argument == other.argument
                and self.result == other.result)

    __hash__ = SType.__hash__

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        arg = self.argument.pretty(explicit_runtime_reps)
        if isinstance(self.argument, (FunTy, ForAllTy, QualTy)):
            arg = f"({arg})"
        return f"{arg} -> {self.result.pretty(explicit_runtime_reps)}"


class TyApp(SType):
    """Type application, e.g. ``Maybe Int`` or ``Array# Double``."""

    __slots__ = ("function", "argument")

    _intern: Dict[Tuple[SType, SType], "TyApp"] = {}

    def __new__(cls, function: SType, argument: SType) -> "TyApp":
        key = (function, argument)
        instance = cls._intern.get(key)
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            instance.function = function
            instance.argument = argument
            cls._intern[key] = instance
        return instance

    def __init__(self, function: Optional[SType] = None,
                 argument: Optional[SType] = None) -> None:
        pass

    def _compute_free_type_vars(self) -> FrozenSet[str]:
        return self.function.free_type_vars() | self.argument.free_type_vars()

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        return self.function.free_rep_vars() | self.argument.free_rep_vars()

    def _compute_free_uvars(self) -> FrozenSet[str]:
        return self.function.free_uvars() | self.argument.free_uvars()

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        if _subst_untouched(self, mapping):
            return self
        return TyApp(self.function.subst_types(mapping),
                     self.argument.subst_types(mapping))

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        if not mapping or self.free_rep_vars().isdisjoint(mapping):
            return self
        return TyApp(self.function.subst_reps(mapping),
                     self.argument.subst_reps(mapping))

    def __reduce__(self):
        return (TyApp, (self.function, self.argument))

    def _compute_hash(self) -> int:
        return hash(("TyApp", self.function, self.argument))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (type(other) is TyApp and self.function == other.function
                and self.argument == other.argument)

    __hash__ = SType.__hash__

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        arg = self.argument.pretty(explicit_runtime_reps)
        if isinstance(self.argument, (TyApp, FunTy, ForAllTy, QualTy)):
            arg = f"({arg})"
        return f"{self.function.pretty(explicit_runtime_reps)} {arg}"


class UnboxedTupleTy(SType):
    """An unboxed tuple type ``(# t1, ..., tn #)`` (Section 4.2)."""

    __slots__ = ("components",)

    _intern: Dict[Tuple[SType, ...], "UnboxedTupleTy"] = {}

    def __new__(cls, components: Iterable[SType] = ()) -> "UnboxedTupleTy":
        key = tuple(components)
        instance = cls._intern.get(key)
        if instance is None:
            instance = object.__new__(cls)
            instance._init_caches()
            instance.components = key
            cls._intern[key] = instance
        return instance

    def __init__(self, components: Iterable[SType] = ()) -> None:
        pass

    def _compute_free_type_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = _EMPTY_NAMES
        for component in self.components:
            out = out | component.free_type_vars()
        return out

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = _EMPTY_NAMES
        for component in self.components:
            out = out | component.free_rep_vars()
        return out

    def _compute_free_uvars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = _EMPTY_NAMES
        for component in self.components:
            out = out | component.free_uvars()
        return out

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        if _subst_untouched(self, mapping):
            return self
        return UnboxedTupleTy(c.subst_types(mapping) for c in self.components)

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        if not mapping or self.free_rep_vars().isdisjoint(mapping):
            return self
        return UnboxedTupleTy(c.subst_reps(mapping) for c in self.components)

    def __reduce__(self):
        return (UnboxedTupleTy, (self.components,))

    def _compute_hash(self) -> int:
        return hash(("UnboxedTupleTy", self.components))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (type(other) is UnboxedTupleTy
                and self.components == other.components)

    __hash__ = SType.__hash__

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        inner = ", ".join(c.pretty(explicit_runtime_reps)
                          for c in self.components)
        return f"(# {inner} #)" if inner else "(# #)"


@dataclass(frozen=True)
class Binder:
    """A quantified variable in a ``forall``: a type or representation binder."""

    name: str
    kind: Kind  # REP_KIND for representation binders, TYPE … otherwise

    def is_rep_binder(self) -> bool:
        return self.kind == REP_KIND

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        return f"({self.name} :: {self.kind.pretty(explicit_runtime_reps)})"


class ForAllTy(SType):
    """``forall (b1 :: k1) ... (bn :: kn). body``.

    Representation binders (``r :: Rep``) and type binders
    (``a :: TYPE r`` / ``a :: Type``) share this one construct, exactly as in
    GHC where ``RuntimeRep`` variables are ordinary kind-level variables.
    """

    __slots__ = ("binders", "body")

    def __init__(self, binders: Iterable[Binder], body: SType) -> None:
        self._init_caches()
        self.binders = tuple(binders)
        self.body = body

    def _compute_free_type_vars(self) -> FrozenSet[str]:
        bound = {b.name for b in self.binders if not b.is_rep_binder()}
        return self.body.free_type_vars() - bound

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        bound = {b.name for b in self.binders if b.is_rep_binder()}
        out = self.body.free_rep_vars()
        for binder in self.binders:
            out = out | binder.kind.free_rep_vars()
        return out - bound

    def _compute_free_uvars(self) -> FrozenSet[str]:
        return self.body.free_uvars()

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        if _subst_untouched(self, mapping):
            return self
        bound = {b.name for b in self.binders}
        filtered = {k: v for k, v in mapping.items() if k not in bound}
        return ForAllTy(self.binders, self.body.subst_types(filtered))

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        if not mapping or self.free_rep_vars().isdisjoint(mapping):
            return self
        bound = {b.name for b in self.binders if b.is_rep_binder()}
        filtered = {k: v for k, v in mapping.items() if k not in bound}
        binders = tuple(Binder(b.name, b.kind.substitute_reps(filtered))
                        for b in self.binders)
        return ForAllTy(binders, self.body.subst_reps(filtered))

    def __reduce__(self):
        return (ForAllTy, (self.binders, self.body))

    def _compute_hash(self) -> int:
        return hash(("ForAllTy", self.binders, self.body))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (type(other) is ForAllTy and self.binders == other.binders
                and self.body == other.body)

    __hash__ = SType.__hash__

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        binders = self.binders
        if not explicit_runtime_reps:
            # Mirror GHC's display defaulting (Section 8.1): hide rep binders
            # and show their kinds as Type.
            binders = tuple(b for b in binders if not b.is_rep_binder())
        quantified = " ".join(b.pretty(explicit_runtime_reps)
                              for b in binders)
        body = self.body.pretty(explicit_runtime_reps)
        if not quantified:
            return body
        return f"forall {quantified}. {body}"


@dataclass(frozen=True)
class ClassConstraint:
    """A class constraint such as ``Num a`` (possibly at an unboxed type)."""

    class_name: str
    argument: SType

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        arg = self.argument.pretty(explicit_runtime_reps)
        if isinstance(self.argument, (TyApp, FunTy, ForAllTy)):
            arg = f"({arg})"
        return f"{self.class_name} {arg}"

    def __repr__(self) -> str:
        return self.pretty()


class QualTy(SType):
    """A qualified type ``C1, ..., Cn => body``."""

    __slots__ = ("constraints", "body")

    def __init__(self, constraints: Iterable[ClassConstraint],
                 body: SType) -> None:
        self._init_caches()
        self.constraints = tuple(constraints)
        self.body = body

    def _compute_free_type_vars(self) -> FrozenSet[str]:
        out = self.body.free_type_vars()
        for constraint in self.constraints:
            out = out | constraint.argument.free_type_vars()
        return out

    def _compute_free_rep_vars(self) -> FrozenSet[str]:
        out = self.body.free_rep_vars()
        for constraint in self.constraints:
            out = out | constraint.argument.free_rep_vars()
        return out

    def _compute_free_uvars(self) -> FrozenSet[str]:
        out = self.body.free_uvars()
        for constraint in self.constraints:
            out = out | constraint.argument.free_uvars()
        return out

    def subst_types(self, mapping: Dict[str, SType]) -> SType:
        if _subst_untouched(self, mapping):
            return self
        constraints = tuple(
            ClassConstraint(c.class_name, c.argument.subst_types(mapping))
            for c in self.constraints)
        return QualTy(constraints, self.body.subst_types(mapping))

    def subst_reps(self, mapping: Dict[str, Rep]) -> SType:
        if not mapping or self.free_rep_vars().isdisjoint(mapping):
            return self
        constraints = tuple(
            ClassConstraint(c.class_name, c.argument.subst_reps(mapping))
            for c in self.constraints)
        return QualTy(constraints, self.body.subst_reps(mapping))

    def __reduce__(self):
        return (QualTy, (self.constraints, self.body))

    def _compute_hash(self) -> int:
        return hash(("QualTy", self.constraints, self.body))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (type(other) is QualTy and self.constraints == other.constraints
                and self.body == other.body)

    __hash__ = SType.__hash__

    def pretty(self, explicit_runtime_reps: bool = True) -> str:
        constraints = ", ".join(c.pretty(explicit_runtime_reps)
                                for c in self.constraints)
        if len(self.constraints) != 1:
            constraints = f"({constraints})"
        return f"{constraints} => {self.body.pretty(explicit_runtime_reps)}"


# ---------------------------------------------------------------------------
# Built-in type constructors (the surface "prelude" of types)
# ---------------------------------------------------------------------------

#: Boxed, lifted base types.
INT_TY = TyCon("Int", TYPE_LIFTED)
INTEGER_TY = TyCon("Integer", TYPE_LIFTED)
BOOL_TY = TyCon("Bool", TYPE_LIFTED)
CHAR_TY = TyCon("Char", TYPE_LIFTED)
FLOAT_TY = TyCon("Float", TYPE_LIFTED)
DOUBLE_TY = TyCon("Double", TYPE_LIFTED)
STRING_TY = TyCon("String", TYPE_LIFTED)
UNIT_TY = TyCon("()", TYPE_LIFTED)
WORD_TY = TyCon("Word", TYPE_LIFTED)
ORDERING_TY = TyCon("Ordering", TYPE_LIFTED)

#: Unboxed base types (Figure 1's bottom-right corner).
INT_HASH_TY = TyCon("Int#", TYPE_INT)
WORD_HASH_TY = TyCon("Word#", type_kind(WORD_REP))
CHAR_HASH_TY = TyCon("Char#", type_kind(CHAR_REP))
FLOAT_HASH_TY = TyCon("Float#", TYPE_FLOAT)
DOUBLE_HASH_TY = TyCon("Double#", TYPE_DOUBLE)
ADDR_HASH_TY = TyCon("Addr#", type_kind(ADDR_REP))

#: Boxed but unlifted types (Figure 1's bottom-left corner).
BYTEARRAY_HASH_TY = TyCon("ByteArray#", TYPE_UNLIFTED)
MUTABLE_BYTEARRAY_HASH_TY = TyCon(
    "MutableByteArray#", ArrowKind(TYPE_LIFTED, TYPE_UNLIFTED))
ARRAY_HASH_TY = TyCon("Array#", ArrowKind(TYPE_LIFTED, TYPE_UNLIFTED))
MUTVAR_HASH_TY = TyCon(
    "MutVar#", ArrowKind(TYPE_LIFTED, ArrowKind(TYPE_LIFTED, TYPE_UNLIFTED)))

#: Lifted type constructors.
MAYBE_TY = TyCon("Maybe", ArrowKind(TYPE_LIFTED, TYPE_LIFTED))
LIST_TY = TyCon("[]", ArrowKind(TYPE_LIFTED, TYPE_LIFTED))
PAIR_TY = TyCon("(,)", ArrowKind(TYPE_LIFTED,
                                 ArrowKind(TYPE_LIFTED, TYPE_LIFTED)))
EITHER_TY = TyCon("Either", ArrowKind(TYPE_LIFTED,
                                      ArrowKind(TYPE_LIFTED, TYPE_LIFTED)))
IO_TY = TyCon("IO", ArrowKind(TYPE_LIFTED, TYPE_LIFTED))

#: A name -> TyCon table used by the parser and the inference environment.
BUILTIN_TYCONS: Dict[str, TyCon] = {
    tycon.name: tycon
    for tycon in (
        INT_TY, INTEGER_TY, BOOL_TY, CHAR_TY, FLOAT_TY, DOUBLE_TY, STRING_TY,
        UNIT_TY, WORD_TY, ORDERING_TY,
        INT_HASH_TY, WORD_HASH_TY, CHAR_HASH_TY, FLOAT_HASH_TY,
        DOUBLE_HASH_TY, ADDR_HASH_TY,
        BYTEARRAY_HASH_TY, MUTABLE_BYTEARRAY_HASH_TY, ARRAY_HASH_TY,
        MUTVAR_HASH_TY,
        MAYBE_TY, LIST_TY, PAIR_TY, EITHER_TY, IO_TY,
    )
}


def lookup_tycon(name: str) -> TyCon:
    """Look up a built-in type constructor by name."""
    try:
        return BUILTIN_TYCONS[name]
    except KeyError:
        raise ScopeError(f"unknown type constructor {name!r}") from None


# ---------------------------------------------------------------------------
# Kinding
# ---------------------------------------------------------------------------

#: Memo table for :func:`kind_of_type` (empty-environment calls only).
#: Sound because type nodes are immutable and a type's kind depends only on
#: its structure; keyed by the node itself (hash-consed => cached hash).
_KIND_OF_TYPE_MEMO: Dict[SType, Kind] = {}


def kind_of_type(type_: SType,
                 rep_env: Optional[Dict[str, Rep]] = None) -> Kind:
    """Compute the kind of a surface type.

    ``rep_env`` maps in-scope representation-variable names to themselves
    (or to solutions); it is threaded by the inference engine.  Raises
    :class:`KindError` for ill-kinded types (for example an unsaturated
    type-constructor application applied to the wrong kind).

    Results for the common empty-environment calls are memoised on the
    (hash-consed) node, which makes the repeated kind queries issued by the
    unifier and the levity checks O(1) after the first visit.
    """
    if not rep_env:
        kind = _KIND_OF_TYPE_MEMO.get(type_)
        if kind is None:
            kind = _kind_of_type(type_, {})
            _KIND_OF_TYPE_MEMO[type_] = kind
        return kind
    return _kind_of_type(type_, rep_env)


def _kind_of_type(type_: SType, rep_env: Dict[str, Rep]) -> Kind:
    if isinstance(type_, (TyCon, TyVar, TyUVar)):
        return type_.kind

    if isinstance(type_, FunTy):
        # Both sides must have *some* value kind; the arrow is Type.
        for side, label in ((type_.argument, "argument"),
                            (type_.result, "result")):
            side_kind = _kind_of_type(side, rep_env)
            if not isinstance(side_kind, TypeKind):
                raise KindError(
                    f"the {label} of a function arrow must have a value "
                    f"kind, but {side.pretty()} has kind {side_kind.pretty()}")
        return TYPE_LIFTED

    if isinstance(type_, TyApp):
        function_kind = _kind_of_type(type_.function, rep_env)
        argument_kind = _kind_of_type(type_.argument, rep_env)
        if not isinstance(function_kind, ArrowKind):
            raise KindError(
                f"{type_.function.pretty()} of kind {function_kind.pretty()} "
                "cannot be applied to a type argument")
        if function_kind.argument != argument_kind:
            raise KindError(
                f"kind mismatch in {type_.pretty()}: expected "
                f"{function_kind.argument.pretty()}, got "
                f"{argument_kind.pretty()}")
        return function_kind.result

    if isinstance(type_, UnboxedTupleTy):
        reps: List[Rep] = []
        for component in type_.components:
            component_kind = _kind_of_type(component, rep_env)
            if not isinstance(component_kind, TypeKind):
                raise KindError(
                    f"unboxed tuple component {component.pretty()} has "
                    f"non-value kind {component_kind.pretty()}")
            reps.append(component_kind.rep)
        return TypeKind(TupleRep(reps))

    if isinstance(type_, ForAllTy):
        inner_env = dict(rep_env)
        for binder in type_.binders:
            if binder.is_rep_binder():
                inner_env[binder.name] = RepVar(binder.name)
        # As in L's T_ALLTY, a forall has the kind of its body (type erasure).
        return _kind_of_type(type_.body, inner_env)

    if isinstance(type_, QualTy):
        return _kind_of_type(type_.body, rep_env)

    raise TypeCheckError(f"unknown surface type form: {type_!r}")


def rep_of_type(type_: SType) -> Rep:
    """The runtime representation of a value type (its kind's ``Rep``)."""
    kind = kind_of_type(type_)
    if not isinstance(kind, TypeKind):
        raise KindError(
            f"{type_.pretty()} has kind {kind.pretty()}, which does not "
            "classify values")
    return kind.rep


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def fun(*types: SType) -> SType:
    """Right-nested function type: ``fun(a, b, c) == a -> (b -> c)``."""
    if not types:
        raise ValueError("fun needs at least one type")
    result = types[-1]
    for argument in reversed(types[:-1]):
        result = FunTy(argument, result)
    return result


def forall_reps(names: Sequence[str], body: SType) -> ForAllTy:
    """``forall (r1 :: Rep) ... . body``."""
    return ForAllTy(tuple(Binder(n, REP_KIND) for n in names), body)


def forall_types(binders: Sequence[Tuple[str, Kind]], body: SType) -> ForAllTy:
    """``forall (a1 :: k1) ... . body``."""
    return ForAllTy(tuple(Binder(n, k) for n, k in binders), body)


def rep_var_kind(name: str) -> TypeKind:
    """The kind ``TYPE r`` for a representation variable named ``name``."""
    return TypeKind(RepVar(name))


_uvar_counter = itertools.count()


def fresh_tyuvar(kind: Kind) -> TyUVar:
    """A fresh type unification variable of the given kind."""
    return TyUVar._fresh(next(_uvar_counter), "t", kind)
