"""Pretty-printing of types, kinds and schemes with LiftedRep defaulting."""

from .printer import (
    PrinterOptions,
    default_reps_for_display,
    render_kind,
    render_scheme,
    render_type,
)

__all__ = [
    "PrinterOptions",
    "default_reps_for_display",
    "render_kind",
    "render_scheme",
    "render_type",
]
