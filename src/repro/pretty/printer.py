"""Pretty-printing with ``LiftedRep`` defaulting (Section 8.1).

After the type of ``($)`` was generalised, users complained that GHCi now
printed a type "far too complex" for beginners.  GHC's fix — reproduced here
— is to *default all type variables of kind Rep to LiftedRep during pretty
printing*, unless the user passes ``-fprint-explicit-runtime-reps``:

* default display:   ``($) :: (a -> b) -> a -> b``
* explicit display:  ``($) :: forall (r :: Rep) (a :: Type) (b :: TYPE r).
  (a -> b) -> a -> b``

The defaulting is purely cosmetic: the scheme itself is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.kinds import Kind, TYPE_LIFTED, TypeKind
from ..core.rep import LIFTED, Rep, RepVar
from ..infer.schemes import Scheme
from ..surface.types import ForAllTy, SType


@dataclass
class PrinterOptions:
    """Mirror of the GHC flags that affect type display."""

    #: ``-fprint-explicit-runtime-reps``: show Rep binders and TYPE r kinds.
    print_explicit_runtime_reps: bool = False
    #: ``-fprint-explicit-foralls``: show the forall telescope even when all
    #: binders are invisible/inferrable.
    print_explicit_foralls: bool = False


def default_reps_for_display(scheme: Scheme) -> Scheme:
    """Substitute ``LiftedRep`` for every quantified Rep variable (display only)."""
    mapping: Dict[str, Rep] = {name: LIFTED for name in scheme.rep_binders}
    type_binders = tuple((name, kind.substitute_reps(mapping))
                         for name, kind in scheme.type_binders)
    constraints = tuple(type(c)(c.class_name, c.argument.subst_reps(mapping))
                        for c in scheme.constraints)
    return Scheme((), type_binders, constraints,
                  scheme.body.subst_reps(mapping))


def render_scheme(scheme: Scheme,
                  options: Optional[PrinterOptions] = None) -> str:
    """Render a scheme the way GHCi's ``:type`` would."""
    options = options or PrinterOptions()
    if options.print_explicit_runtime_reps:
        return scheme.pretty(explicit_runtime_reps=True)

    displayed = default_reps_for_display(scheme)
    if options.print_explicit_foralls:
        return displayed.pretty(explicit_runtime_reps=False)

    if any(kind != TYPE_LIFTED for _, kind in displayed.type_binders):
        # A binder whose kind is not Type even after defaulting (for example
        # ``(a :: TYPE IntRep)``) carries information the bare body cannot:
        # keep the telescope so the rendering parses back to the same
        # scheme.  (Printer gap found by the frontend round-trip tests.)
        return displayed.pretty(explicit_runtime_reps=False)

    # Hide the forall telescope entirely (every binder kind is now Type, so
    # nothing is lost), as GHCi does by default.
    body = displayed.body
    if displayed.constraints:
        from ..surface.types import QualTy
        body = QualTy(displayed.constraints, body)
    return body.pretty(explicit_runtime_reps=False)


def render_type(type_: SType,
                options: Optional[PrinterOptions] = None) -> str:
    """Render a surface type under the same defaulting convention."""
    return render_scheme(Scheme.from_type(type_), options)


def render_kind(kind: Kind,
                options: Optional[PrinterOptions] = None) -> str:
    """Render a kind, hiding representation variables unless asked."""
    options = options or PrinterOptions()
    return kind.pretty(explicit_runtime_reps=options.print_explicit_runtime_reps)
