"""Typing judgments of L (Figure 3 of the paper).

Three mutually supporting judgments are implemented:

* ``Γ ⊢ κ kind``   — kind validity (:func:`check_kind`);
* ``Γ ⊢ τ : κ``    — type validity / kinding (:func:`kind_of`);
* ``Γ ⊢ e : τ``    — term validity / typing (:func:`type_of`).

The levity-polymorphism restrictions of Section 5.1 appear as the
highlighted premises of rules **E_APP** and **E_LAM**: the argument type and
the λ-bound variable's type must both have a kind ``TYPE υ`` with ``υ``
*concrete* (either ``P`` or ``I``, never a representation variable).
Violations are reported with the dedicated exceptions from
:mod:`repro.core.errors` so callers can distinguish "ordinary" type errors
from levity-polymorphism errors.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import (
    KindError,
    LevityPolymorphicArgument,
    LevityPolymorphicBinder,
    ScopeError,
    TypeCheckError,
)
from ..core.primops import INT_PRIMOPS
from .syntax import (
    App,
    Case,
    CaseLit,
    Con,
    Fix,
    PrimOp,
    Context,
    ErrorExpr,
    I,
    KIND_INT,
    KIND_PTR,
    Lam,
    LExpr,
    Lit,
    LKind,
    LRep,
    LType,
    P,
    RepApp,
    RepLam,
    RepVarL,
    TArrow,
    TForallRep,
    TForallType,
    TInt,
    TIntHash,
    TVar,
    TyApp,
    TyLam,
    Var,
    INT,
    INT_HASH,
)

# ---------------------------------------------------------------------------
# Kind validity: Γ ⊢ κ kind
# ---------------------------------------------------------------------------


def check_kind(ctx: Context, kind: LKind) -> None:
    """Check ``Γ ⊢ κ kind`` (rules K_CONST and K_VAR).

    A kind is valid when its representation is concrete (K_CONST) or is a
    representation variable bound in ``Γ`` (K_VAR).
    """
    rep = kind.rep
    if rep.is_concrete():
        return  # K_CONST
    if isinstance(rep, RepVarL):
        if ctx.has_rep(rep.name):
            return  # K_VAR
        raise ScopeError(
            f"representation variable {rep.name!r} is not in scope")
    raise KindError(f"ill-formed kind {kind.pretty()}")


# ---------------------------------------------------------------------------
# Type validity: Γ ⊢ τ : κ
# ---------------------------------------------------------------------------


def kind_of(ctx: Context, type_: LType) -> LKind:
    """Compute the kind of ``type_`` in ``ctx`` (the ``Γ ⊢ τ : κ`` judgment).

    Raises :class:`TypeCheckError` (or a subclass) if the type is ill-formed.
    """
    if isinstance(type_, TInt):
        return KIND_PTR  # T_INT:  Γ ⊢ Int : TYPE P
    if isinstance(type_, TIntHash):
        return KIND_INT  # T_INTH: Γ ⊢ Int# : TYPE I
    if isinstance(type_, TVar):
        kind = ctx.lookup_type(type_.name)  # T_VAR
        if kind is None:
            raise ScopeError(f"type variable {type_.name!r} is not in scope")
        return kind
    if isinstance(type_, TArrow):
        # T_ARROW: both sides must be well-kinded (at *any* kind, possibly a
        # levity-polymorphic one), and the arrow itself is boxed and lifted.
        kind_of(ctx, type_.argument)
        kind_of(ctx, type_.result)
        return KIND_PTR
    if isinstance(type_, TForallType):
        # T_ALLTY: the forall has the kind of its body, supporting type
        # erasure (Section 6.1).
        check_kind(ctx, type_.kind)
        return kind_of(ctx.bind_type(type_.var, type_.kind), type_.body)
    if isinstance(type_, TForallRep):
        # T_ALLREP: the body kind must not mention the bound rep variable,
        # otherwise the representation would escape its binder.
        body_kind = kind_of(ctx.bind_rep(type_.var), type_.body)
        if (isinstance(body_kind.rep, RepVarL)
                and body_kind.rep.name == type_.var):
            raise KindError(
                f"the kind of the body of {type_.pretty()} mentions the "
                f"quantified representation variable {type_.var!r} "
                "(premise κ ≠ TYPE r of rule T_ALLREP)")
        return body_kind
    raise TypeCheckError(f"unknown type form: {type_!r}")


def type_is_well_formed(ctx: Context, type_: LType) -> bool:
    """Boolean wrapper around :func:`kind_of`."""
    try:
        kind_of(ctx, type_)
        return True
    except TypeCheckError:
        return False


def _require_concrete_kind(ctx: Context, type_: LType, *, role: str,
                           exception: type) -> LKind:
    """The highlighted premise ``Γ ⊢ τ : TYPE υ`` of E_APP / E_LAM."""
    kind = kind_of(ctx, type_)
    if not kind.is_concrete():
        raise exception(
            f"{role} has type {type_.pretty()} whose kind {kind.pretty()} is "
            "levity-polymorphic (Section 5.1 restriction)")
    return kind


# ---------------------------------------------------------------------------
# Term validity: Γ ⊢ e : τ
# ---------------------------------------------------------------------------

#: The type of ``error``:  ∀r. ∀α:TYPE r. Int → α   (rule E_ERROR).
ERROR_TYPE: LType = TForallRep(
    "r", TForallType("a", LKind(RepVarL("r")), TArrow(INT, TVar("a"))))


def type_of(ctx: Context, expr: LExpr) -> LType:
    """Compute the type of ``expr`` in ``ctx`` (the ``Γ ⊢ e : τ`` judgment).

    Implements every rule of Figure 3's term-validity judgment.  Raises
    :class:`TypeCheckError` (or one of its levity-specific subclasses) when
    the expression is ill-typed.
    """
    if isinstance(expr, Var):
        type_ = ctx.lookup_term(expr.name)  # E_VAR
        if type_ is None:
            raise ScopeError(f"variable {expr.name!r} is not in scope")
        return type_

    if isinstance(expr, Lit):
        return INT_HASH  # E_INTLIT

    if isinstance(expr, Con):
        argument_type = type_of(ctx, expr.argument)  # E_CON
        if argument_type != INT_HASH:
            raise TypeCheckError(
                f"I# expects an Int# argument, got {argument_type.pretty()}")
        return INT

    if isinstance(expr, App):
        function_type = type_of(ctx, expr.function)  # E_APP
        if not isinstance(function_type, TArrow):
            raise TypeCheckError(
                f"cannot apply non-function of type {function_type.pretty()}")
        argument_type = type_of(ctx, expr.argument)
        if argument_type != function_type.argument:
            raise TypeCheckError(
                f"argument type mismatch: expected "
                f"{function_type.argument.pretty()}, got "
                f"{argument_type.pretty()}")
        _require_concrete_kind(ctx, function_type.argument,
                               role="function argument",
                               exception=LevityPolymorphicArgument)
        return function_type.result

    if isinstance(expr, Lam):
        _require_concrete_kind(ctx, expr.var_type,  # E_LAM
                               role=f"lambda binder {expr.var!r}",
                               exception=LevityPolymorphicBinder)
        body_type = type_of(ctx.bind_term(expr.var, expr.var_type), expr.body)
        return TArrow(expr.var_type, body_type)

    if isinstance(expr, TyLam):
        check_kind(ctx, expr.kind)  # E_TLAM
        body_type = type_of(ctx.bind_type(expr.var, expr.kind), expr.body)
        return TForallType(expr.var, expr.kind, body_type)

    if isinstance(expr, TyApp):
        expr_type = type_of(ctx, expr.expr)  # E_TAPP
        if not isinstance(expr_type, TForallType):
            raise TypeCheckError(
                f"cannot apply expression of type {expr_type.pretty()} to a "
                "type argument")
        argument_kind = kind_of(ctx, expr.type_argument)
        if argument_kind != expr_type.kind:
            raise KindError(
                f"kind mismatch in type application: expected "
                f"{expr_type.kind.pretty()}, got {argument_kind.pretty()}")
        return expr_type.body.substitute_type(expr_type.var,
                                              expr.type_argument)

    if isinstance(expr, RepLam):
        body_type = type_of(ctx.bind_rep(expr.var), expr.body)  # E_RLAM
        return TForallRep(expr.var, body_type)

    if isinstance(expr, RepApp):
        expr_type = type_of(ctx, expr.expr)  # E_RAPP
        if not isinstance(expr_type, TForallRep):
            raise TypeCheckError(
                f"cannot apply expression of type {expr_type.pretty()} to a "
                "representation argument")
        _check_rep_in_scope(ctx, expr.rep_argument)
        return expr_type.body.substitute_rep(expr_type.var,
                                             expr.rep_argument)

    if isinstance(expr, Case):
        scrutinee_type = type_of(ctx, expr.scrutinee)  # E_CASE
        if scrutinee_type != INT:
            raise TypeCheckError(
                f"case scrutinee must have type Int, got "
                f"{scrutinee_type.pretty()}")
        return type_of(ctx.bind_term(expr.binder, INT_HASH), expr.body)

    if isinstance(expr, Fix):
        # E_FIX: the binder must be pointer-kinded — unrolling ties the
        # knot through a thunk, and there is no thunk at TYPE I.
        kind = kind_of(ctx, expr.var_type)
        if kind != KIND_PTR:
            raise TypeCheckError(
                f"fix binder {expr.var!r} has type {expr.var_type.pretty()} "
                f"of kind {kind.pretty()}; recursion needs a pointer-kinded "
                "(TYPE P) binder")
        body_type = type_of(ctx.bind_term(expr.var, expr.var_type), expr.body)
        if body_type != expr.var_type:
            raise TypeCheckError(
                f"fix body has type {body_type.pretty()}, expected the "
                f"binder type {expr.var_type.pretty()}")
        return expr.var_type

    if isinstance(expr, PrimOp):
        arity = INT_PRIMOPS.get(expr.name)  # E_PRIMOP
        if arity is None:
            raise TypeCheckError(f"unknown primop {expr.name!r}")
        if len(expr.arguments) != arity:
            raise TypeCheckError(
                f"primop {expr.name!r} expects {arity} arguments, got "
                f"{len(expr.arguments)}")
        for argument in expr.arguments:
            argument_type = type_of(ctx, argument)
            if argument_type != INT_HASH:
                raise TypeCheckError(
                    f"primop {expr.name!r} expects Int# arguments, got "
                    f"{argument_type.pretty()}")
        return INT_HASH

    if isinstance(expr, CaseLit):
        scrutinee_type = type_of(ctx, expr.scrutinee)  # E_CASELIT
        if scrutinee_type != INT_HASH:
            raise TypeCheckError(
                f"literal-case scrutinee must have type Int#, got "
                f"{scrutinee_type.pretty()}")
        result_type = type_of(ctx, expr.default)
        for literal, branch in expr.alternatives:
            branch_type = type_of(ctx, branch)
            if branch_type != result_type:
                raise TypeCheckError(
                    f"literal-case branch {literal} has type "
                    f"{branch_type.pretty()}, expected "
                    f"{result_type.pretty()}")
        return result_type

    if isinstance(expr, ErrorExpr):
        return ERROR_TYPE  # E_ERROR

    raise TypeCheckError(f"unknown expression form: {expr!r}")


def _check_rep_in_scope(ctx: Context, rep: LRep) -> None:
    for name in rep.free_rep_vars():
        if not ctx.has_rep(name):
            raise ScopeError(
                f"representation variable {name!r} is not in scope")


def typechecks(expr: LExpr, ctx: Context = Context()) -> bool:
    """Boolean wrapper around :func:`type_of`."""
    try:
        type_of(ctx, expr)
        return True
    except TypeCheckError:
        return False
