"""Small-step operational semantics of L (Figure 4 of the paper).

The semantics is *type-directed*: whether an application ``e1 e2`` is
evaluated lazily (call-by-name, rules S_APPLAZY / S_BETAPTR) or strictly
(call-by-value, rules S_APPSTRICT / S_APPSTRICT2 / S_BETAUNBOXED) depends on
the kind of the argument's type — ``TYPE P`` means lazy, ``TYPE I`` means
strict.  This is exactly the "kinds are calling conventions" story: the kind
of a type fixes how values of that type are passed.

Evaluation happens under ``Λ`` (type and representation abstractions) so that
the language supports type erasure (Section 6.1); correspondingly, values are
recursive under ``Λ``.

The ``error`` constant steps to ⊥, modelled by the :class:`Bottom` outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..core.errors import EvaluationError
from ..core.primops import primop_delta
from .syntax import (
    App,
    Case,
    CaseLit,
    Con,
    Fix,
    PrimOp,
    Context,
    ErrorExpr,
    KIND_INT,
    KIND_PTR,
    Lam,
    LExpr,
    Lit,
    RepApp,
    RepLam,
    TyApp,
    TyLam,
    Var,
)
from .typing import kind_of, type_of


@dataclass(frozen=True)
class Step:
    """A successful small step to a new expression."""

    expr: LExpr


@dataclass(frozen=True)
class Bottom:
    """The ⊥ outcome produced by ``error`` (rule S_ERROR)."""


@dataclass(frozen=True)
class Stuck:
    """No rule applies and the expression is not a value.

    The Progress theorem guarantees this never happens for well-typed closed
    expressions; the metatheory harness checks exactly that.
    """

    reason: str = ""


StepResult = Union[Step, Bottom, Stuck]


def step(ctx: Context, expr: LExpr) -> Optional[StepResult]:
    """Perform one step of ``Γ ⊢ e −→ e'``.

    Returns ``None`` when ``expr`` is already a value, a :class:`Step` with
    the reduct, :class:`Bottom` when the program aborts via ``error``, or
    :class:`Stuck` when no rule applies (which signals an ill-typed input).
    """
    if expr.is_value():
        return None

    if isinstance(expr, ErrorExpr):
        return Bottom()  # S_ERROR

    if isinstance(expr, App):
        return _step_application(ctx, expr)

    if isinstance(expr, TyApp):
        # S_TBETA fires when the head is a type abstraction whose body is a
        # value; otherwise S_TAPP evaluates the head.
        head = expr.expr
        if isinstance(head, TyLam) and head.body.is_value():
            return Step(head.body.substitute_type(head.var,
                                                  expr.type_argument))
        inner = step(ctx, head)
        return _map_step(inner, lambda e: TyApp(e, expr.type_argument))

    if isinstance(expr, RepApp):
        head = expr.expr
        if isinstance(head, RepLam) and head.body.is_value():
            return Step(head.body.substitute_rep(head.var,
                                                 expr.rep_argument))
        inner = step(ctx, head)
        return _map_step(inner, lambda e: RepApp(e, expr.rep_argument))

    if isinstance(expr, TyLam):
        # S_TLAM: evaluate under the type abstraction (type erasure).
        inner = step(ctx.bind_type(expr.var, expr.kind), expr.body)
        return _map_step(inner, lambda e: TyLam(expr.var, expr.kind, e))

    if isinstance(expr, RepLam):
        # S_RLAM: evaluate under the representation abstraction.
        inner = step(ctx.bind_rep(expr.var), expr.body)
        return _map_step(inner, lambda e: RepLam(expr.var, e))

    if isinstance(expr, Con):
        # S_CON: evaluate the field of I#[·].
        inner = step(ctx, expr.argument)
        return _map_step(inner, Con)

    if isinstance(expr, Case):
        scrutinee = expr.scrutinee
        if isinstance(scrutinee, Con) and scrutinee.argument.is_value():
            # S_MATCH: case I#[n] of I#[x] -> e2  −→  e2[n/x]
            return Step(expr.body.substitute(expr.binder,
                                             scrutinee.argument))
        inner = step(ctx, scrutinee)  # S_CASE
        return _map_step(inner,
                         lambda e: Case(e, expr.binder, expr.body))

    if isinstance(expr, Fix):
        # S_FIX: fix x:τ. e  −→  e[fix x:τ. e / x]
        return Step(expr.body.substitute(expr.var, expr))

    if isinstance(expr, PrimOp):
        return _step_primop(ctx, expr)

    if isinstance(expr, CaseLit):
        scrutinee = expr.scrutinee
        if isinstance(scrutinee, Lit):
            # S_MATCHLIT: take the first matching branch, else the default.
            for literal, branch in expr.alternatives:
                if literal == scrutinee.value:
                    return Step(branch)
            return Step(expr.default)
        inner = step(ctx, scrutinee)  # S_CASELIT
        return _force_step(
            inner,
            lambda e: CaseLit(e, expr.alternatives, expr.default),
            "literal-case scrutinee")

    if isinstance(expr, Var):
        return Stuck(f"free variable {expr.name!r}")

    if isinstance(expr, Lam) or isinstance(expr, Lit):
        return None  # values; unreachable because of the is_value guard

    return Stuck(f"no rule applies to {expr.pretty()}")


def _step_application(ctx: Context, expr: App) -> StepResult:
    """The four application rules, selected by the kind of the argument."""
    argument_type = type_of(ctx, expr.argument)
    argument_kind = kind_of(ctx, argument_type)

    if argument_kind == KIND_PTR:
        # Lazy (call-by-name) application.
        if isinstance(expr.function, Lam):
            # S_BETAPTR: substitute the *unevaluated* argument.
            return Step(expr.function.body.substitute(expr.function.var,
                                                      expr.argument))
        inner = step(ctx, expr.function)  # S_APPLAZY
        return _force_step(inner, lambda e: App(e, expr.argument),
                           "lazy application head")

    if argument_kind == KIND_INT:
        # Strict (call-by-value) application.
        if not expr.argument.is_value():
            inner = step(ctx, expr.argument)  # S_APPSTRICT
            return _force_step(inner, lambda e: App(expr.function, e),
                               "strict application argument")
        if isinstance(expr.function, Lam):
            # S_BETAUNBOXED: the argument is a value; substitute it.
            return Step(expr.function.body.substitute(expr.function.var,
                                                      expr.argument))
        inner = step(ctx, expr.function)  # S_APPSTRICT2
        return _force_step(inner, lambda e: App(e, expr.argument),
                           "strict application head")

    return Stuck(
        f"application argument has levity-polymorphic kind "
        f"{argument_kind.pretty()}; no evaluation rule applies")


def _step_primop(ctx: Context, expr: PrimOp) -> StepResult:
    """S_PRIMARG / S_PRIM / S_PRIMBOT: strict, left-to-right primops.

    Primop operands are unboxed (``Int#``), so they evaluate strictly,
    left to right.  Once every operand is a literal the delta rule from
    :mod:`repro.core.primops` fires; a zero divisor is ⊥, exactly like
    ``error`` (the machine aborts at the same point).
    """
    for index, argument in enumerate(expr.arguments):
        if argument.is_value():
            continue
        inner = step(ctx, argument)  # S_PRIMARG

        def rebuild(e, index=index):
            arguments = (expr.arguments[:index] + (e,)
                         + expr.arguments[index + 1:])
            return PrimOp(expr.name, arguments)

        return _force_step(inner, rebuild, "primop argument")
    literals = []
    for argument in expr.arguments:
        if not isinstance(argument, Lit):
            return Stuck(
                f"primop {expr.name!r} applied to the non-literal value "
                f"{argument.pretty()}")
        literals.append(argument.value)
    try:
        result = primop_delta(expr.name, literals)
    except (KeyError, ValueError) as exc:
        return Stuck(f"ill-formed primop application: {exc}")
    if result is None:
        return Bottom()  # S_PRIMBOT: division by zero
    return Step(Lit(result))  # S_PRIM


def _map_step(inner: Optional[StepResult], rebuild) -> Optional[StepResult]:
    """Propagate an inner step outward through an evaluation context."""
    if inner is None:
        return None
    return _force_step(inner, rebuild, "sub-expression")


def _force_step(inner: Optional[StepResult], rebuild,
                what: str) -> StepResult:
    if inner is None:
        return Stuck(f"{what} is a value but no rule applies")
    if isinstance(inner, Step):
        return Step(rebuild(inner.expr))
    return inner  # Bottom and Stuck propagate unchanged


@dataclass(frozen=True)
class EvalOutcome:
    """Result of running an expression to completion (or giving up)."""

    value: Optional[LExpr]
    diverged: bool
    steps: int
    trace: Optional[list] = None

    @property
    def is_bottom(self) -> bool:
        return self.diverged

    def unwrap(self) -> LExpr:
        if self.value is None:
            raise EvaluationError("expression evaluated to ⊥ (error)")
        return self.value


def evaluate(expr: LExpr, ctx: Context = Context(), max_steps: int = 10_000,
             keep_trace: bool = False) -> EvalOutcome:
    """Run ``expr`` to a value (or to ⊥) using the Figure 4 semantics.

    Raises :class:`EvaluationError` when the expression gets stuck or does
    not terminate within ``max_steps`` steps.
    """
    current = expr
    trace = [expr] if keep_trace else None
    for count in range(max_steps):
        result = step(ctx, current)
        if result is None:
            return EvalOutcome(current, False, count, trace)
        if isinstance(result, Bottom):
            return EvalOutcome(None, True, count, trace)
        if isinstance(result, Stuck):
            raise EvaluationError(
                f"expression got stuck after {count} steps: {result.reason} "
                f"(term: {current.pretty()})")
        current = result.expr
        if trace is not None:
            trace.append(current)
    raise EvaluationError(
        f"evaluation did not finish within {max_steps} steps")
