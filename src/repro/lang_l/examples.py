"""A catalogue of canonical L programs used throughout tests and benchmarks.

The programs are grouped into:

* :data:`WELL_TYPED` — closed, well-typed expressions together with their
  expected types and (when they terminate to a value) their expected results;
* :data:`LEVITY_VIOLATIONS` — expressions that are rejected precisely
  because of the Section 5.1 restrictions (levity-polymorphic binders or
  arguments), mirroring the paper's ``bTwice``-at-``∀r`` and ``abs2``
  examples;
* :data:`ILL_TYPED` — expressions with ordinary (non-levity) type errors.

Having a single shared catalogue keeps the typing tests, the semantics
tests, the compilation tests and the metatheory benchmarks consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .syntax import (
    App,
    Case,
    Con,
    ERROR,
    I,
    INT,
    INT_HASH,
    KIND_INT,
    KIND_PTR,
    Lam,
    LExpr,
    LKind,
    LType,
    Lit,
    P,
    RepApp,
    RepLam,
    RepVarL,
    TArrow,
    TForallRep,
    TForallType,
    TVar,
    TyApp,
    TyLam,
    Var,
    app,
    arrow,
    boxed_int,
    lam,
)


@dataclass(frozen=True)
class ExampleProgram:
    """A named example: expression, expected type, expected value (if any)."""

    name: str
    expr: LExpr
    expected_type: Optional[LType] = None
    expected_value: Optional[LExpr] = None
    diverges: bool = False
    description: str = ""


# -- building blocks ---------------------------------------------------------

#: ``id_int = λx:Int. x`` — monomorphic identity on boxed integers.
ID_INT = lam("x", INT, Var("x"))

#: ``id_inthash = λx:Int#. x`` — identity on unboxed integers.
ID_INT_HASH = lam("x", INT_HASH, Var("x"))

#: ``poly_id = Λa:TYPE P. λx:a. x`` — the usual System F identity, restricted
#: to lifted types as the Instantiation Principle requires (Section 3).
POLY_ID = TyLam("a", KIND_PTR, lam("x", TVar("a"), Var("x")))

#: ``unbox = λb:Int. case b of I#[x] -> x`` — unbox an Int to an Int#.
UNBOX = lam("b", INT, Case(Var("b"), "x", Var("x")))

#: ``box = λx:Int#. I#[x]`` — box an Int#.
BOX = lam("x", INT_HASH, Con(Var("x")))

#: ``twice_int = λf:Int -> Int. λx:Int. f (f x)`` — the essence of bTwice
#: instantiated at a lifted type, which is fine.
TWICE_INT = lam("f", arrow(INT, INT),
                lam("x", INT, App(Var("f"), App(Var("f"), Var("x")))))

#: ``apply_hash = λf:Int# -> Int#. λx:Int#. f x`` — strict application.
APPLY_HASH = lam("f", arrow(INT_HASH, INT_HASH),
                 lam("x", INT_HASH, App(Var("f"), Var("x"))))

#: ``succ# = λx:Int#. case I#[x] of I#[y] -> y`` — round-trips through the
#: box; the closest L gets to arithmetic without primops.
ROUNDTRIP_HASH = lam("x", INT_HASH, Case(Con(Var("x")), "y", Var("y")))

#: The levity-polymorphic ``myError`` of Section 3.3 / 5.2, in L syntax:
#: ``Λr. Λa:TYPE r. λs:Int. error @r @a s`` — legal because the only bound
#: variable (``s``) has the fixed kind TYPE P.
MY_ERROR = RepLam(
    "r",
    TyLam("a", LKind(RepVarL("r")),
          lam("s", INT,
              App(RepApp(TyApp(ERROR, TVar("a")), RepVarL("r"))
                  if False else
                  TyApp(RepApp(ERROR, RepVarL("r")), TVar("a")),
                  Var("s")))))

#: ``error`` instantiated to return an unboxed integer and applied — the
#: Section 3.3 example of "breaking" the Instantiation Principle safely.
ERROR_AT_INT_HASH = App(TyApp(RepApp(ERROR, I), INT_HASH), boxed_int(0))

#: The application operator ``($)`` of Section 7.2 restricted to L's types:
#: result levity-polymorphic, argument lifted.
DOLLAR = RepLam(
    "r",
    TyLam("a", KIND_PTR,
          TyLam("b", LKind(RepVarL("r")),
                lam("f", TArrow(TVar("a"), TVar("b")),
                    lam("x", TVar("a"), App(Var("f"), Var("x")))))))

#: Type of ``DOLLAR``: ∀r. ∀a:TYPE P. ∀b:TYPE r. (a -> b) -> a -> b.
DOLLAR_TYPE = TForallRep(
    "r",
    TForallType(
        "a", KIND_PTR,
        TForallType(
            "b", LKind(RepVarL("r")),
            arrow(TArrow(TVar("a"), TVar("b")), TVar("a"), TVar("b")))))

#: ``abs1``-style: a levity-polymorphic result returned without binding a
#: levity-polymorphic variable (legal).
ABS1_STYLE = RepLam(
    "r", TyLam("a", LKind(RepVarL("r")),
               TyApp(RepApp(ERROR, RepVarL("r")), TVar("a"))))

#: ``abs2``-style: the η-expansion of the above which *binds* a
#: levity-polymorphic variable ``x : a :: TYPE r`` — rejected (Section 7.3).
ABS2_STYLE = RepLam(
    "r", TyLam("a", LKind(RepVarL("r")),
               lam("x", TVar("a"),
                   App(TyApp(RepApp(ERROR, RepVarL("r")), TVar("a")),
                       boxed_int(1)))))

#: The un-compilable levity-polymorphic identity of Section 5.2:
#: ``Λr. Λa:TYPE r. λx:a. x``.
LEVITY_POLY_ID = RepLam(
    "r", TyLam("a", LKind(RepVarL("r")), lam("x", TVar("a"), Var("x"))))

#: bTwice at a levity-polymorphic type (Section 5): rejected.
LEVITY_POLY_TWICE = RepLam(
    "r", TyLam("a", LKind(RepVarL("r")),
               lam("f", TArrow(TVar("a"), TVar("a")),
                   lam("x", TVar("a"),
                       App(Var("f"), App(Var("f"), Var("x")))))))


# -- catalogues --------------------------------------------------------------

WELL_TYPED: Tuple[ExampleProgram, ...] = (
    ExampleProgram(
        "literal",
        Lit(42),
        expected_type=INT_HASH,
        expected_value=Lit(42),
        description="an unboxed literal is already a value"),
    ExampleProgram(
        "boxed_literal",
        boxed_int(7),
        expected_type=INT,
        expected_value=boxed_int(7),
        description="I#[7] is a value of type Int"),
    ExampleProgram(
        "id_int_applied",
        App(ID_INT, boxed_int(3)),
        expected_type=INT,
        expected_value=boxed_int(3),
        description="lazy beta reduction at a boxed type"),
    ExampleProgram(
        "id_inthash_applied",
        App(ID_INT_HASH, Lit(5)),
        expected_type=INT_HASH,
        expected_value=Lit(5),
        description="strict beta reduction at an unboxed type"),
    ExampleProgram(
        "poly_id_at_int",
        App(TyApp(POLY_ID, INT), boxed_int(9)),
        expected_type=INT,
        expected_value=boxed_int(9),
        description="System F instantiation at a lifted type"),
    ExampleProgram(
        "unbox_boxed",
        App(UNBOX, boxed_int(11)),
        expected_type=INT_HASH,
        expected_value=Lit(11),
        description="case forces and unpacks the box"),
    ExampleProgram(
        "box_unboxed",
        App(BOX, Lit(13)),
        expected_type=INT,
        expected_value=boxed_int(13),
        description="re-boxing an unboxed value"),
    ExampleProgram(
        "box_unbox_roundtrip",
        App(UNBOX, App(BOX, Lit(21))),
        expected_type=INT_HASH,
        expected_value=Lit(21),
        description="boxing then unboxing is the identity"),
    ExampleProgram(
        "twice_identity",
        app(TWICE_INT, ID_INT, boxed_int(4)),
        expected_type=INT,
        expected_value=boxed_int(4),
        description="bTwice's essence at a lifted type"),
    ExampleProgram(
        "apply_hash",
        app(APPLY_HASH, ID_INT_HASH, Lit(8)),
        expected_type=INT_HASH,
        expected_value=Lit(8),
        description="higher-order strict application"),
    ExampleProgram(
        "roundtrip_hash",
        App(ROUNDTRIP_HASH, Lit(2)),
        expected_type=INT_HASH,
        expected_value=Lit(2),
        description="unboxed value boxed, scrutinised, and returned"),
    ExampleProgram(
        "lazy_discards_error",
        App(lam("x", INT, boxed_int(1)),
            App(TyApp(RepApp(ERROR, P), INT), boxed_int(0))),
        expected_type=INT,
        expected_value=boxed_int(1),
        description=("a lazy (pointer-kinded) argument is never forced, so "
                     "the embedded error is discarded — laziness observable "
                     "in the semantics")),
    ExampleProgram(
        "my_error",
        MY_ERROR,
        expected_type=TForallRep(
            "r", TForallType("a", LKind(RepVarL("r")),
                             arrow(INT, TVar("a")))),
        expected_value=None,
        description="the levity-polymorphic myError wrapper typechecks"),
    ExampleProgram(
        "dollar",
        DOLLAR,
        expected_type=DOLLAR_TYPE,
        expected_value=None,
        description="($) with a levity-polymorphic result type"),
    ExampleProgram(
        "dollar_applied_lifted",
        app(TyApp(TyApp(RepApp(DOLLAR, P), INT), INT), ID_INT, boxed_int(6)),
        expected_type=INT,
        expected_value=boxed_int(6),
        description="($) instantiated at lifted types and applied"),
    ExampleProgram(
        "dollar_applied_unboxed_result",
        app(TyApp(TyApp(RepApp(DOLLAR, I), INT), INT_HASH),
            UNBOX, boxed_int(17)),
        expected_type=INT_HASH,
        expected_value=Lit(17),
        description="($) with an unboxed result type — the new generality"),
    ExampleProgram(
        "abs1_style",
        ABS1_STYLE,
        expected_type=TForallRep(
            "r", TForallType("a", LKind(RepVarL("r")),
                             arrow(INT, TVar("a")))),
        expected_value=None,
        description="abs1: no levity-polymorphic binder, accepted"),
    ExampleProgram(
        "error_at_int_hash",
        ERROR_AT_INT_HASH,
        expected_type=INT_HASH,
        diverges=True,
        description="error instantiated at an unboxed type diverges cleanly"),
    ExampleProgram(
        "strict_forces_error",
        App(lam("x", INT_HASH, Lit(1)),
            App(TyApp(RepApp(ERROR, I), INT_HASH), boxed_int(0))),
        expected_type=INT_HASH,
        diverges=True,
        description=("a strict (integer-kinded) argument is forced before "
                     "the call, so the error propagates — strictness "
                     "observable in the semantics")),
)


LEVITY_VIOLATIONS: Tuple[ExampleProgram, ...] = (
    ExampleProgram(
        "levity_poly_id",
        LEVITY_POLY_ID,
        description=("λx:a with a :: TYPE r binds a levity-polymorphic "
                     "variable (Section 5.2's f x = x)")),
    ExampleProgram(
        "levity_poly_twice",
        LEVITY_POLY_TWICE,
        description="bTwice generalised over r is un-compilable (Section 5)"),
    ExampleProgram(
        "abs2_style",
        ABS2_STYLE,
        description=("abs2: the η-expansion of abs1 binds a levity-"
                     "polymorphic x and is rejected (Section 7.3)")),
    ExampleProgram(
        "levity_poly_argument",
        RepLam("r",
               TyLam("a", LKind(RepVarL("r")),
                     lam("f", TArrow(TVar("a"), INT),
                         lam("g", arrow(INT, TVar("a")),
                             App(Var("f"), App(Var("g"), boxed_int(0))))))),
        description=("passing a levity-polymorphic value as a function "
                     "argument violates restriction 2")),
)


ILL_TYPED: Tuple[ExampleProgram, ...] = (
    ExampleProgram(
        "unbound_variable",
        Var("ghost"),
        description="free variable"),
    ExampleProgram(
        "apply_non_function",
        App(Lit(1), Lit(2)),
        description="cannot apply an Int# to anything"),
    ExampleProgram(
        "constructor_wrong_field",
        Con(boxed_int(1)),
        description="I# expects an Int#, not an Int"),
    ExampleProgram(
        "case_on_unboxed",
        Case(Lit(3), "x", Var("x")),
        description="case scrutinee must be a boxed Int"),
    ExampleProgram(
        "argument_type_mismatch",
        App(ID_INT, Lit(3)),
        description="Int expected but Int# supplied"),
    ExampleProgram(
        "kind_mismatch_in_tyapp",
        App(TyApp(POLY_ID, INT_HASH), Lit(1)),
        description=("POLY_ID quantifies over TYPE P; instantiating at Int# "
                     "(kind TYPE I) is the Instantiation Principle violation "
                     "of Section 3.1")),
)


def all_programs() -> Tuple[ExampleProgram, ...]:
    """Every example, well-typed or not (useful for smoke tests)."""
    return WELL_TYPED + LEVITY_VIOLATIONS + ILL_TYPED
