"""The language **L**: System F with levity polymorphism (Section 6.1).

Modules:

* :mod:`repro.lang_l.syntax` — grammar of Figure 2 (reps, kinds, types,
  expressions, values, contexts) with capture-avoiding substitution;
* :mod:`repro.lang_l.typing` — the typing judgments of Figure 3;
* :mod:`repro.lang_l.semantics` — the small-step semantics of Figure 4;
* :mod:`repro.lang_l.examples` — a shared catalogue of example programs.
"""

from .syntax import (
    App,
    Case,
    CaseLit,
    Con,
    Context,
    EMPTY_CONTEXT,
    ERROR,
    ErrorExpr,
    Fix,
    PrimOp,
    I,
    INT,
    INT_HASH,
    IntRepL,
    KIND_INT,
    KIND_PTR,
    Lam,
    LExpr,
    Lit,
    LKind,
    LRep,
    LType,
    P,
    PtrRep,
    RepApp,
    RepLam,
    RepVarL,
    TArrow,
    TForallRep,
    TForallType,
    TInt,
    TIntHash,
    TVar,
    TyApp,
    TyLam,
    Var,
    app,
    arrow,
    boxed_int,
    lam,
    rep_to_core,
)
from .typing import ERROR_TYPE, check_kind, kind_of, type_of, typechecks
from .semantics import Bottom, EvalOutcome, Step, Stuck, evaluate, step

__all__ = [name for name in dir() if not name.startswith("_")]
