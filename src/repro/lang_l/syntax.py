"""Abstract syntax of the language **L** (Figure 2 of the paper).

L is a variant of System F extended with levity polymorphism:

* concrete representations ``υ ::= P | I`` — pointer or integer;
* runtime representations ``ρ ::= r | υ`` — a rep variable or a concrete rep;
* kinds ``κ ::= TYPE ρ``;
* base types ``B ::= Int | Int#``;
* types ``τ ::= B | τ1 → τ2 | α | ∀α:κ. τ | ∀r. τ``;
* expressions ``e ::= x | e1 e2 | λx:τ. e | Λα:κ. e | e τ | Λr. e | e ρ
  | I#[e] | case e1 of I#[x] → e2 | n | error
  | fix x:τ. e | op#(e1, …, ek) | case e of { n1 → e1; …; _ → d }``;
* values ``v ::= λx:τ. e | Λα:κ. v | Λr. v | I#[v] | n``.

The last three expression forms — ``fix``, saturated ``Int#`` primops and
literal case — extend Figure 2 so that *whole-language* surface programs
(recursion, arithmetic, comparisons) lower into L and reach the M-machine
oracle, instead of being rejected as out-of-fragment.

The paper keeps L deliberately small (a stratified type system with exactly
two concrete representations) because it "still captures the essence of
levity polymorphism in GHC".  The richer ``Rep`` algebra lives in
:mod:`repro.core.rep` and is used by the surface language; this module uses
its own two-point representation grammar, with conversions provided by
:func:`rep_to_core`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple, Union

from ..core import rep as core_rep

# ---------------------------------------------------------------------------
# Runtime representations of L: υ ::= P | I     ρ ::= r | υ
# ---------------------------------------------------------------------------


class LRep:
    """A runtime representation ``ρ`` in L."""

    def is_concrete(self) -> bool:
        raise NotImplementedError

    def free_rep_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def substitute_rep(self, name: str, replacement: "LRep") -> "LRep":
        raise NotImplementedError

    def pretty(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class PtrRep(LRep):
    """The concrete representation ``P``: a lifted heap pointer."""

    def is_concrete(self) -> bool:
        return True

    def free_rep_vars(self) -> FrozenSet[str]:
        return frozenset()

    def substitute_rep(self, name: str, replacement: LRep) -> LRep:
        return self

    def pretty(self) -> str:
        return "P"


@dataclass(frozen=True)
class IntRepL(LRep):
    """The concrete representation ``I``: an unboxed machine integer."""

    def is_concrete(self) -> bool:
        return True

    def free_rep_vars(self) -> FrozenSet[str]:
        return frozenset()

    def substitute_rep(self, name: str, replacement: LRep) -> LRep:
        return self

    def pretty(self) -> str:
        return "I"


@dataclass(frozen=True)
class RepVarL(LRep):
    """A representation variable ``r``."""

    name: str

    def is_concrete(self) -> bool:
        return False

    def free_rep_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def substitute_rep(self, name: str, replacement: LRep) -> LRep:
        return replacement if self.name == name else self

    def pretty(self) -> str:
        return self.name


#: Canonical concrete representations of L.
P = PtrRep()
I = IntRepL()


def rep_to_core(rho: LRep) -> core_rep.Rep:
    """Translate an L representation into the richer core ``Rep`` algebra."""
    if isinstance(rho, PtrRep):
        return core_rep.LIFTED
    if isinstance(rho, IntRepL):
        return core_rep.INT_REP
    if isinstance(rho, RepVarL):
        return core_rep.RepVar(rho.name)
    raise TypeError(f"unknown L representation: {rho!r}")


# ---------------------------------------------------------------------------
# Kinds of L: κ ::= TYPE ρ
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LKind:
    """A kind ``TYPE ρ`` in L."""

    rep: LRep

    def is_concrete(self) -> bool:
        return self.rep.is_concrete()

    def free_rep_vars(self) -> FrozenSet[str]:
        return self.rep.free_rep_vars()

    def substitute_rep(self, name: str, replacement: LRep) -> "LKind":
        return LKind(self.rep.substitute_rep(name, replacement))

    def pretty(self) -> str:
        return f"TYPE {self.rep.pretty()}"

    def __repr__(self) -> str:
        return self.pretty()


#: ``TYPE P`` — the kind of lifted, boxed L types (``Int``, functions, foralls).
KIND_PTR = LKind(P)
#: ``TYPE I`` — the kind of the unboxed ``Int#``.
KIND_INT = LKind(I)


# ---------------------------------------------------------------------------
# Types of L: τ ::= Int | Int# | τ1 → τ2 | α | ∀α:κ. τ | ∀r. τ
# ---------------------------------------------------------------------------


class LType:
    """Abstract base class of L types."""

    def free_type_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def free_rep_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def substitute_type(self, name: str, replacement: "LType") -> "LType":
        """Capture-avoiding substitution ``self[replacement/name]``."""
        raise NotImplementedError

    def substitute_rep(self, name: str, replacement: LRep) -> "LType":
        raise NotImplementedError

    def pretty(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class TInt(LType):
    """The boxed, lifted integer type ``Int`` (kind ``TYPE P``)."""

    def free_type_vars(self) -> FrozenSet[str]:
        return frozenset()

    def free_rep_vars(self) -> FrozenSet[str]:
        return frozenset()

    def substitute_type(self, name: str, replacement: LType) -> LType:
        return self

    def substitute_rep(self, name: str, replacement: LRep) -> LType:
        return self

    def pretty(self) -> str:
        return "Int"


@dataclass(frozen=True)
class TIntHash(LType):
    """The unboxed integer type ``Int#`` (kind ``TYPE I``)."""

    def free_type_vars(self) -> FrozenSet[str]:
        return frozenset()

    def free_rep_vars(self) -> FrozenSet[str]:
        return frozenset()

    def substitute_type(self, name: str, replacement: LType) -> LType:
        return self

    def substitute_rep(self, name: str, replacement: LRep) -> LType:
        return self

    def pretty(self) -> str:
        return "Int#"


@dataclass(frozen=True)
class TVar(LType):
    """A type variable ``α``."""

    name: str

    def free_type_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def free_rep_vars(self) -> FrozenSet[str]:
        return frozenset()

    def substitute_type(self, name: str, replacement: LType) -> LType:
        return replacement if self.name == name else self

    def substitute_rep(self, name: str, replacement: LRep) -> LType:
        return self

    def pretty(self) -> str:
        return self.name


@dataclass(frozen=True)
class TArrow(LType):
    """The function type ``τ1 → τ2`` (always of kind ``TYPE P``: T_ARROW)."""

    argument: LType
    result: LType

    def free_type_vars(self) -> FrozenSet[str]:
        return self.argument.free_type_vars() | self.result.free_type_vars()

    def free_rep_vars(self) -> FrozenSet[str]:
        return self.argument.free_rep_vars() | self.result.free_rep_vars()

    def substitute_type(self, name: str, replacement: LType) -> LType:
        return TArrow(self.argument.substitute_type(name, replacement),
                      self.result.substitute_type(name, replacement))

    def substitute_rep(self, name: str, replacement: LRep) -> LType:
        return TArrow(self.argument.substitute_rep(name, replacement),
                      self.result.substitute_rep(name, replacement))

    def pretty(self) -> str:
        arg = self.argument.pretty()
        if isinstance(self.argument, (TArrow, TForallType, TForallRep)):
            arg = f"({arg})"
        return f"{arg} -> {self.result.pretty()}"


@dataclass(frozen=True)
class TForallType(LType):
    """Universal quantification over a type variable: ``∀α:κ. τ``."""

    var: str
    kind: LKind
    body: LType

    def free_type_vars(self) -> FrozenSet[str]:
        return self.body.free_type_vars() - {self.var}

    def free_rep_vars(self) -> FrozenSet[str]:
        return self.kind.free_rep_vars() | self.body.free_rep_vars()

    def substitute_type(self, name: str, replacement: LType) -> LType:
        if name == self.var:
            return self
        if self.var in replacement.free_type_vars():
            fresh = _fresh_name(self.var,
                                replacement.free_type_vars()
                                | self.body.free_type_vars())
            renamed = self.body.substitute_type(self.var, TVar(fresh))
            return TForallType(fresh, self.kind,
                               renamed.substitute_type(name, replacement))
        return TForallType(self.var, self.kind,
                           self.body.substitute_type(name, replacement))

    def substitute_rep(self, name: str, replacement: LRep) -> LType:
        return TForallType(self.var,
                           self.kind.substitute_rep(name, replacement),
                           self.body.substitute_rep(name, replacement))

    def pretty(self) -> str:
        return f"forall {self.var}:{self.kind.pretty()}. {self.body.pretty()}"


@dataclass(frozen=True)
class TForallRep(LType):
    """Universal quantification over a representation variable: ``∀r. τ``."""

    var: str
    body: LType

    def free_type_vars(self) -> FrozenSet[str]:
        return self.body.free_type_vars()

    def free_rep_vars(self) -> FrozenSet[str]:
        return self.body.free_rep_vars() - {self.var}

    def substitute_type(self, name: str, replacement: LType) -> LType:
        return TForallRep(self.var,
                          self.body.substitute_type(name, replacement))

    def substitute_rep(self, name: str, replacement: LRep) -> LType:
        if name == self.var:
            return self
        if self.var in replacement.free_rep_vars():
            fresh = _fresh_name(self.var,
                                replacement.free_rep_vars()
                                | self.body.free_rep_vars())
            renamed = self.body.substitute_rep(self.var, RepVarL(fresh))
            return TForallRep(fresh,
                              renamed.substitute_rep(name, replacement))
        return TForallRep(self.var,
                          self.body.substitute_rep(name, replacement))

    def pretty(self) -> str:
        return f"forall {self.var}:Rep. {self.body.pretty()}"


#: Canonical base types.
INT = TInt()
INT_HASH = TIntHash()


def arrow(*types: LType) -> LType:
    """Right-nested function type: ``arrow(a, b, c) == a -> (b -> c)``."""
    if not types:
        raise ValueError("arrow needs at least one type")
    result = types[-1]
    for argument in reversed(types[:-1]):
        result = TArrow(argument, result)
    return result


# ---------------------------------------------------------------------------
# Expressions of L
# ---------------------------------------------------------------------------


class LExpr:
    """Abstract base class of L expressions."""

    def free_vars(self) -> FrozenSet[str]:
        """Free *term* variables."""
        raise NotImplementedError

    def substitute(self, name: str, replacement: "LExpr") -> "LExpr":
        """Capture-avoiding term substitution ``self[replacement/name]``."""
        raise NotImplementedError

    def substitute_type(self, name: str, replacement: LType) -> "LExpr":
        raise NotImplementedError

    def substitute_rep(self, name: str, replacement: LRep) -> "LExpr":
        raise NotImplementedError

    def is_value(self) -> bool:
        """Is this a value according to Figure 2?

        Values are ``λx:τ. e``, ``Λα:κ. v``, ``Λr. v``, ``I#[v]`` and ``n``.
        Note that type and representation abstractions are values only when
        their *bodies* are values: L evaluates under ``Λ`` to support type
        erasure (Section 6.1).
        """
        raise NotImplementedError

    def pretty(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class Var(LExpr):
    """A term variable ``x``."""

    name: str

    def free_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        return replacement if self.name == name else self

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        return self

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        return self

    def is_value(self) -> bool:
        return False

    def pretty(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lit(LExpr):
    """An unboxed integer literal ``n`` of type ``Int#``."""

    value: int

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        return self

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        return self

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        return self

    def is_value(self) -> bool:
        return True

    def pretty(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class App(LExpr):
    """Term application ``e1 e2``."""

    function: LExpr
    argument: LExpr

    def free_vars(self) -> FrozenSet[str]:
        return self.function.free_vars() | self.argument.free_vars()

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        return App(self.function.substitute(name, replacement),
                   self.argument.substitute(name, replacement))

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        return App(self.function.substitute_type(name, replacement),
                   self.argument.substitute_type(name, replacement))

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        return App(self.function.substitute_rep(name, replacement),
                   self.argument.substitute_rep(name, replacement))

    def is_value(self) -> bool:
        return False

    def pretty(self) -> str:
        fun = self.function.pretty()
        if isinstance(self.function, (Lam, TyLam, RepLam)):
            fun = f"({fun})"
        arg = self.argument.pretty()
        if isinstance(self.argument, (App, Lam, TyLam, RepLam, TyApp, RepApp,
                                      Case)):
            arg = f"({arg})"
        return f"{fun} {arg}"


@dataclass(frozen=True)
class Lam(LExpr):
    """Term abstraction ``λx:τ. e``."""

    var: str
    var_type: LType
    body: LExpr

    def free_vars(self) -> FrozenSet[str]:
        return self.body.free_vars() - {self.var}

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        if name == self.var:
            return self
        if self.var in replacement.free_vars():
            fresh = _fresh_name(self.var,
                                replacement.free_vars()
                                | self.body.free_vars())
            renamed = self.body.substitute(self.var, Var(fresh))
            return Lam(fresh, self.var_type,
                       renamed.substitute(name, replacement))
        return Lam(self.var, self.var_type,
                   self.body.substitute(name, replacement))

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        return Lam(self.var, self.var_type.substitute_type(name, replacement),
                   self.body.substitute_type(name, replacement))

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        return Lam(self.var, self.var_type.substitute_rep(name, replacement),
                   self.body.substitute_rep(name, replacement))

    def is_value(self) -> bool:
        return True

    def pretty(self) -> str:
        return f"\\{self.var}:{self.var_type.pretty()}. {self.body.pretty()}"


@dataclass(frozen=True)
class TyLam(LExpr):
    """Type abstraction ``Λα:κ. e``."""

    var: str
    kind: LKind
    body: LExpr

    def free_vars(self) -> FrozenSet[str]:
        return self.body.free_vars()

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        return TyLam(self.var, self.kind,
                     self.body.substitute(name, replacement))

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        if name == self.var:
            return self
        if self.var in replacement.free_type_vars():
            fresh = _fresh_name(self.var, replacement.free_type_vars())
            renamed = self.body.substitute_type(self.var, TVar(fresh))
            return TyLam(fresh, self.kind,
                         renamed.substitute_type(name, replacement))
        return TyLam(self.var, self.kind,
                     self.body.substitute_type(name, replacement))

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        return TyLam(self.var, self.kind.substitute_rep(name, replacement),
                     self.body.substitute_rep(name, replacement))

    def is_value(self) -> bool:
        return self.body.is_value()

    def pretty(self) -> str:
        return f"/\\{self.var}:{self.kind.pretty()}. {self.body.pretty()}"


@dataclass(frozen=True)
class TyApp(LExpr):
    """Type application ``e τ``."""

    expr: LExpr
    type_argument: LType

    def free_vars(self) -> FrozenSet[str]:
        return self.expr.free_vars()

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        return TyApp(self.expr.substitute(name, replacement),
                     self.type_argument)

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        return TyApp(self.expr.substitute_type(name, replacement),
                     self.type_argument.substitute_type(name, replacement))

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        return TyApp(self.expr.substitute_rep(name, replacement),
                     self.type_argument.substitute_rep(name, replacement))

    def is_value(self) -> bool:
        return False

    def pretty(self) -> str:
        expr = self.expr.pretty()
        if isinstance(self.expr, (Lam, TyLam, RepLam, App)):
            expr = f"({expr})"
        return f"{expr} @{self.type_argument.pretty()}"


@dataclass(frozen=True)
class RepLam(LExpr):
    """Representation abstraction ``Λr. e`` — the novel form of L."""

    var: str
    body: LExpr

    def free_vars(self) -> FrozenSet[str]:
        return self.body.free_vars()

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        return RepLam(self.var, self.body.substitute(name, replacement))

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        return RepLam(self.var,
                      self.body.substitute_type(name, replacement))

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        if name == self.var:
            return self
        if self.var in replacement.free_rep_vars():
            fresh = _fresh_name(self.var, replacement.free_rep_vars())
            renamed = self.body.substitute_rep(self.var, RepVarL(fresh))
            return RepLam(fresh, renamed.substitute_rep(name, replacement))
        return RepLam(self.var, self.body.substitute_rep(name, replacement))

    def is_value(self) -> bool:
        return self.body.is_value()

    def pretty(self) -> str:
        return f"/\\{self.var}:Rep. {self.body.pretty()}"


@dataclass(frozen=True)
class RepApp(LExpr):
    """Representation application ``e ρ``."""

    expr: LExpr
    rep_argument: LRep

    def free_vars(self) -> FrozenSet[str]:
        return self.expr.free_vars()

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        return RepApp(self.expr.substitute(name, replacement),
                      self.rep_argument)

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        return RepApp(self.expr.substitute_type(name, replacement),
                      self.rep_argument)

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        return RepApp(self.expr.substitute_rep(name, replacement),
                      self.rep_argument.substitute_rep(name, replacement))

    def is_value(self) -> bool:
        return False

    def pretty(self) -> str:
        expr = self.expr.pretty()
        if isinstance(self.expr, (Lam, TyLam, RepLam, App)):
            expr = f"({expr})"
        return f"{expr} @{self.rep_argument.pretty()}"


@dataclass(frozen=True)
class Con(LExpr):
    """The data constructor application ``I#[e]`` building a boxed ``Int``."""

    argument: LExpr

    def free_vars(self) -> FrozenSet[str]:
        return self.argument.free_vars()

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        return Con(self.argument.substitute(name, replacement))

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        return Con(self.argument.substitute_type(name, replacement))

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        return Con(self.argument.substitute_rep(name, replacement))

    def is_value(self) -> bool:
        return self.argument.is_value()

    def pretty(self) -> str:
        return f"I#[{self.argument.pretty()}]"


@dataclass(frozen=True)
class Case(LExpr):
    """``case e1 of I#[x] → e2`` — force and unpack a boxed integer."""

    scrutinee: LExpr
    binder: str
    body: LExpr

    def free_vars(self) -> FrozenSet[str]:
        return self.scrutinee.free_vars() | (self.body.free_vars()
                                             - {self.binder})

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        scrut = self.scrutinee.substitute(name, replacement)
        if name == self.binder:
            return Case(scrut, self.binder, self.body)
        if self.binder in replacement.free_vars():
            fresh = _fresh_name(self.binder,
                                replacement.free_vars()
                                | self.body.free_vars())
            renamed = self.body.substitute(self.binder, Var(fresh))
            return Case(scrut, fresh, renamed.substitute(name, replacement))
        return Case(scrut, self.binder,
                    self.body.substitute(name, replacement))

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        return Case(self.scrutinee.substitute_type(name, replacement),
                    self.binder,
                    self.body.substitute_type(name, replacement))

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        return Case(self.scrutinee.substitute_rep(name, replacement),
                    self.binder,
                    self.body.substitute_rep(name, replacement))

    def is_value(self) -> bool:
        return False

    def pretty(self) -> str:
        return (f"case {self.scrutinee.pretty()} of I#[{self.binder}] -> "
                f"{self.body.pretty()}")


@dataclass(frozen=True)
class Fix(LExpr):
    """The fixpoint form ``fix x:τ. e`` — recursion, added on top of Figure 2.

    The seed L was strongly normalising; recursive surface bindings could
    not lower, so the M machine never saw programs like ``sumTo#``.  ``fix``
    closes that gap.  The binder must live at a *pointer-kinded* type
    (``TYPE P``): unrolling substitutes the whole ``fix`` term for ``x``,
    and on the machine the knot is tied through a heap thunk — there is no
    thunk (and no evaluation rule) at an unboxed type.
    """

    var: str
    var_type: LType
    body: LExpr

    def free_vars(self) -> FrozenSet[str]:
        return self.body.free_vars() - {self.var}

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        if name == self.var:
            return self
        if self.var in replacement.free_vars():
            fresh = _fresh_name(self.var,
                                replacement.free_vars()
                                | self.body.free_vars())
            renamed = self.body.substitute(self.var, Var(fresh))
            return Fix(fresh, self.var_type,
                       renamed.substitute(name, replacement))
        return Fix(self.var, self.var_type,
                   self.body.substitute(name, replacement))

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        return Fix(self.var, self.var_type.substitute_type(name, replacement),
                   self.body.substitute_type(name, replacement))

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        return Fix(self.var, self.var_type.substitute_rep(name, replacement),
                   self.body.substitute_rep(name, replacement))

    def is_value(self) -> bool:
        return False

    def pretty(self) -> str:
        return (f"fix {self.var}:{self.var_type.pretty()}. "
                f"{self.body.pretty()}")


@dataclass(frozen=True)
class PrimOp(LExpr):
    """A saturated primop application ``op#(e1, …, ek)`` at ``Int#``.

    The operator set and its delta rules live in
    :mod:`repro.core.primops`; every operand and the result are ``Int#``.
    Arguments evaluate strictly, left to right — they are unboxed, so
    call-by-value is forced (the same reasoning as rule S_APP2 for
    ``TYPE I`` arguments).
    """

    name: str
    arguments: Tuple[LExpr, ...]

    def free_vars(self) -> FrozenSet[str]:
        free: FrozenSet[str] = frozenset()
        for argument in self.arguments:
            free |= argument.free_vars()
        return free

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        return PrimOp(self.name,
                      tuple(a.substitute(name, replacement)
                            for a in self.arguments))

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        return PrimOp(self.name,
                      tuple(a.substitute_type(name, replacement)
                            for a in self.arguments))

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        return PrimOp(self.name,
                      tuple(a.substitute_rep(name, replacement)
                            for a in self.arguments))

    def is_value(self) -> bool:
        return False

    def pretty(self) -> str:
        args = ", ".join(a.pretty() for a in self.arguments)
        return f"{self.name}({args})"


@dataclass(frozen=True)
class CaseLit(LExpr):
    """``case e of { n1 → e1; …; _ → d }`` — branch on an ``Int#`` literal.

    The scrutinee is unboxed, hence strict; exactly one branch is taken
    (the first alternative whose literal equals the scrutinee, else the
    default).  This is what surface programs like ``sumTo#`` compile
    their ``case n ==# 0# of { 1# -> …; _ -> … }`` conditionals into.
    """

    scrutinee: LExpr
    alternatives: Tuple[Tuple[int, LExpr], ...]
    default: LExpr

    def free_vars(self) -> FrozenSet[str]:
        free = self.scrutinee.free_vars() | self.default.free_vars()
        for _, branch in self.alternatives:
            free |= branch.free_vars()
        return free

    def _map(self, fn) -> "CaseLit":
        return CaseLit(fn(self.scrutinee),
                       tuple((lit, fn(branch))
                             for lit, branch in self.alternatives),
                       fn(self.default))

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        return self._map(lambda e: e.substitute(name, replacement))

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        return self._map(lambda e: e.substitute_type(name, replacement))

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        return self._map(lambda e: e.substitute_rep(name, replacement))

    def is_value(self) -> bool:
        return False

    def pretty(self) -> str:
        alts = "; ".join(f"{lit} -> {branch.pretty()}"
                         for lit, branch in self.alternatives)
        if alts:
            alts += "; "
        return (f"case {self.scrutinee.pretty()} of {{ {alts}"
                f"_ -> {self.default.pretty()} }}")


@dataclass(frozen=True)
class ErrorExpr(LExpr):
    """The ``error`` constant: ``∀r. ∀α:TYPE r. Int → α`` (rule E_ERROR)."""

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, name: str, replacement: LExpr) -> LExpr:
        return self

    def substitute_type(self, name: str, replacement: LType) -> LExpr:
        return self

    def substitute_rep(self, name: str, replacement: LRep) -> LExpr:
        return self

    def is_value(self) -> bool:
        return False

    def pretty(self) -> str:
        return "error"


ERROR = ErrorExpr()


# ---------------------------------------------------------------------------
# Typing contexts Γ ::= ∅ | Γ, x:τ | Γ, α:κ | Γ, r
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Context:
    """A typing context ``Γ`` for L.

    Stored as immutable tuples so extended contexts share structure with the
    original, matching the inductive definition in Figure 2.
    """

    term_vars: Tuple[Tuple[str, LType], ...] = ()
    type_vars: Tuple[Tuple[str, LKind], ...] = ()
    rep_vars: Tuple[str, ...] = ()

    def bind_term(self, name: str, type_: LType) -> "Context":
        return Context(self.term_vars + ((name, type_),),
                       self.type_vars, self.rep_vars)

    def bind_type(self, name: str, kind: LKind) -> "Context":
        return Context(self.term_vars, self.type_vars + ((name, kind),),
                       self.rep_vars)

    def bind_rep(self, name: str) -> "Context":
        return Context(self.term_vars, self.type_vars,
                       self.rep_vars + (name,))

    def lookup_term(self, name: str) -> Optional[LType]:
        for var, type_ in reversed(self.term_vars):
            if var == name:
                return type_
        return None

    def lookup_type(self, name: str) -> Optional[LKind]:
        for var, kind in reversed(self.type_vars):
            if var == name:
                return kind
        return None

    def has_rep(self, name: str) -> bool:
        return name in self.rep_vars

    def has_term_bindings(self) -> bool:
        """Used by the Progress and Simulation theorems, which require a
        context with no term-variable bindings."""
        return bool(self.term_vars)

    def pretty(self) -> str:
        parts = [f"{n}:{t.pretty()}" for n, t in self.term_vars]
        parts += [f"{n}:{k.pretty()}" for n, k in self.type_vars]
        parts += [f"{n}:Rep" for n in self.rep_vars]
        return ", ".join(parts) if parts else "∅"

    def __repr__(self) -> str:
        return f"Context({self.pretty()})"


EMPTY_CONTEXT = Context()


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

_fresh_counter = itertools.count()


def _fresh_name(base: str, avoid: FrozenSet[str]) -> str:
    """A variable name based on ``base`` that is not in ``avoid``."""
    candidate = f"{base}'"
    while candidate in avoid:
        candidate = f"{base}_{next(_fresh_counter)}"
    return candidate


def lam(var: str, var_type: LType, body: LExpr) -> Lam:
    """Convenience constructor for ``λvar:var_type. body``."""
    return Lam(var, var_type, body)


def app(function: LExpr, *arguments: LExpr) -> LExpr:
    """Left-nested application ``function a1 a2 ...``."""
    expr = function
    for argument in arguments:
        expr = App(expr, argument)
    return expr


def boxed_int(n: int) -> Con:
    """The boxed integer value ``I#[n]``."""
    return Con(Lit(n))
