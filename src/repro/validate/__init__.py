"""Whole-program translation validation for the Figure-7 compiler.

The metatheory suite checks the Simulation theorem on *random L terms*;
this package checks it on *your program*: every step the L evaluator
takes is compiled and discharged as a joinability obligation against the
next step's compilation, and the machine's final answer is compared with
the evaluator's (agreement on ⊥ included).  The first obligation that
fails is reported with its step index — a per-program counterexample,
not a batch statistic.

Entry points:

* :func:`validate_term` — validate an already-lowered L expression;
* :func:`validate_check` / :func:`validate_paths` — validate surface
  modules, files and project directories (``python -m repro validate``);
* ``Session.run(..., options.validate=True)`` attaches a
  :class:`ValidationReport` to every cross-checked :class:`RunResult`;
* the fuzz harness discharges obligations for every fragment program in
  the corpus (see docs/VALIDATION.md).
"""

from .alignment import Obligation, ValidationReport, validate_term
from .runner import validate_check, validate_paths

__all__ = [
    "Obligation",
    "ValidationReport",
    "validate_check",
    "validate_paths",
    "validate_term",
]
