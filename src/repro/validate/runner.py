"""Run the translation validator over files, projects and check results.

This is the glue between :mod:`repro.validate.alignment` (which works on
an already-lowered L term) and the pipeline's surface: ``.lev`` files,
project directories with ``module``/``import`` headers, and in-memory
:class:`~repro.driver.session.CheckResult` values (what the fuzz harness
holds).  ``python -m repro validate`` is a thin shell over
:func:`validate_paths`.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from .alignment import ValidationReport, validate_term

__all__ = ["validate_check", "validate_paths"]


def validate_check(session, check, entry: str = "main",
                   align_steps: int = 64) -> ValidationReport:
    """Validate one already-checked module's entry point.

    A module that fails to check, or whose entry does not lower (its
    types leave the L fragment), produces a *skipped* report — the caller
    distinguishes "could not validate" from "validated and diverged" via
    ``report.engaged``.
    """
    from ..driver.lower import LoweringError, lower_entry

    if not check.ok:
        report = ValidationReport(filename=check.filename, entry=entry)
        report.engaged = False
        report.reason = "module did not type-check"
        return report
    schemes = {b.name: b.scheme for b in check.bindings
               if b.scheme is not None}
    try:
        term = lower_entry(check.parsed.module, schemes, entry)
    except LoweringError as exc:
        report = ValidationReport(filename=check.filename, entry=entry)
        report.engaged = False
        report.reason = f"out of the L fragment: {exc}"
        return report
    return validate_term(
        term, filename=check.filename, entry=entry,
        align_steps=align_steps,
        machine_steps=session.options.max_machine_steps)


def validate_paths(paths: Sequence[str], options=None,
                   entry: str = "main",
                   align_steps: int = 64) -> List[ValidationReport]:
    """Validate ``.lev`` files and/or project directories.

    Directories are treated as multi-module projects (checked through the
    module DAG, then validated over the merged project); plain files are
    single modules.  One report per input path, in order.
    """
    from ..driver import Session
    from ..driver.project import (
        check_project,
        discover_sources,
        merged_check,
    )

    session = Session(options)
    reports: List[ValidationReport] = []
    for path in paths:
        if os.path.isdir(path):
            sources = discover_sources([path])
            if not sources:
                report = ValidationReport(filename=path, entry=entry)
                report.engaged = False
                report.reason = "no .lev files found"
                reports.append(report)
                continue
            project = check_project(sources, session=session)
            merged = merged_check(project, session.pipeline)
            if merged is None:
                report = ValidationReport(filename=path, entry=entry)
                report.engaged = False
                report.reason = "project did not build"
                reports.append(report)
                continue
            merged.filename = path
            reports.append(validate_check(session, merged, entry=entry,
                                          align_steps=align_steps))
        else:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            check = session.check(source, path)
            reports.append(validate_check(session, check, entry=entry,
                                          align_steps=align_steps))
    return reports
