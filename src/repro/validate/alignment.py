"""Per-program translation validation for the Figure-7 compiler.

The paper's Simulation theorem (§6.3) says: if ``e −→ e'`` in L, then
``C(e)`` and ``C(e')`` are *joinable* in M — compiling every expression
along an L evaluation has a common machine reduct, so the compiled
program cannot drift away from the source semantics.  The proof in the
paper is by induction on the step relation; this module *mechanically
discharges* the theorem's obligations for one concrete program:

* evaluate the lowered L entry with a recorded trace ``e₀ −→ e₁ −→ …``;
* for each consecutive pair, compile both sides and run the
  :func:`repro.lang_m.joinability.joinable` test;
* independently run ``C(e₀)`` to completion and compare the machine's
  final answer against the evaluator's (including *agreement on ⊥* —
  an L run that bottoms must abort the machine, and vice versa).

The first obligation that fails is reported with its step index and the
two L expressions involved, which is exactly the counterexample shape a
translation-validation tool hands to a compiler engineer: not "the
answers differ" but "the simulation broke *here*".

Obligation discharge is quadratic-ish in trace length (each check runs
two machines), so callers cap it with ``align_steps``; the end-to-end
answer comparison is unconditional, so a capped run still validates the
final result — the cap only bounds how precisely a divergence would be
localised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.errors import CompilationError, EvaluationError, MachineError
from ..lang_l.semantics import evaluate
from ..lang_l.syntax import Context, LExpr
from ..lang_m.joinability import joinable
from ..compile.compiler import compile_expr

__all__ = [
    "Obligation",
    "ValidationReport",
    "validate_term",
]


@dataclass(frozen=True)
class Obligation:
    """One Simulation obligation ``C(eᵢ) ⇔ C(eᵢ₊₁)`` and its verdict."""

    index: int
    discharged: bool
    reason: str
    before: str = ""
    after: str = ""


@dataclass
class ValidationReport:
    """Everything the validator learned about one program."""

    filename: str = "<input>"
    entry: str = "main"
    ok: bool = True
    #: False when validation could not engage at all (the entry did not
    #: lower, or L evaluation exceeded its step budget).
    engaged: bool = True
    reason: str = ""
    l_steps: int = 0
    obligations_checked: int = 0
    #: Index of the first L step whose obligation failed, if any.
    first_divergence: Optional[int] = None
    failed: List[Obligation] = field(default_factory=list)
    #: End-to-end machine verdict: True (same answer, or both ⊥),
    #: False (observable disagreement), None (not comparable/not run).
    machine_agrees: Optional[bool] = None
    machine_value: str = ""
    l_value: str = ""

    def as_dict(self) -> dict:
        return {
            "filename": self.filename,
            "entry": self.entry,
            "ok": self.ok,
            "engaged": self.engaged,
            "reason": self.reason,
            "l_steps": self.l_steps,
            "obligations_checked": self.obligations_checked,
            "first_divergence": self.first_divergence,
            "machine_agrees": self.machine_agrees,
            "machine_value": self.machine_value,
            "l_value": self.l_value,
        }

    def pretty(self) -> str:
        if not self.engaged:
            return (f"validate {self.filename}: skipped ({self.reason})")
        if self.ok:
            agreement = {True: f"machine agrees: {self.machine_value}",
                         False: "machine DISAGREES",
                         None: "machine result not comparable"}
            return (f"validate {self.filename}: ok — {self.l_steps} L "
                    f"step(s), {self.obligations_checked} obligation(s) "
                    f"discharged, {agreement[self.machine_agrees]}")
        lines = [f"validate {self.filename}: FAILED — {self.reason}"]
        for obligation in self.failed[:3]:
            lines.append(f"  step {obligation.index}: {obligation.reason}")
            if obligation.before:
                lines.append(f"    before: {obligation.before}")
                lines.append(f"    after : {obligation.after}")
        return "\n".join(lines)


def _clip(text: str, width: int = 120) -> str:
    return text if len(text) <= width else text[:width - 1] + "…"


def validate_term(term: LExpr, *,
                  filename: str = "<input>",
                  entry: str = "main",
                  align_steps: int = 64,
                  probe_depth: int = 2,
                  eval_steps: int = 10_000,
                  machine_steps: int = 1_000_000) -> ValidationReport:
    """Discharge the Simulation obligations for one lowered L entry."""
    report = ValidationReport(filename=filename, entry=entry)
    ctx = Context()

    try:
        outcome = evaluate(term, ctx, max_steps=eval_steps, keep_trace=True)
    except EvaluationError as exc:
        report.engaged = False
        report.reason = f"L evaluation did not settle: {exc}"
        return report
    trace = outcome.trace or [term]
    report.l_steps = outcome.steps
    report.l_value = ("⊥" if outcome.is_bottom
                      else outcome.unwrap().pretty())

    # Per-step obligations: C(eᵢ) ⇔ C(eᵢ₊₁) for a prefix of the trace.
    budget = min(len(trace) - 1, max(align_steps, 0))
    for index in range(budget):
        before, after = trace[index], trace[index + 1]
        obligation = _discharge(index, before, after, ctx,
                                probe_depth, machine_steps)
        report.obligations_checked += 1
        if not obligation.discharged:
            report.failed.append(obligation)
            if report.first_divergence is None:
                report.first_divergence = index
    # The machine validates the *answer* even when align_steps capped the
    # per-step sweep (or an obligation already failed mid-trace).
    report.machine_agrees, report.machine_value = _final_agreement(
        trace[0], outcome, ctx, machine_steps)

    if report.first_divergence is not None:
        report.ok = False
        report.reason = (f"first diverging step is "
                         f"{report.first_divergence} of {report.l_steps}")
    elif report.machine_agrees is False:
        report.ok = False
        report.reason = (f"machine answer {report.machine_value!r} "
                         f"disagrees with L's {report.l_value!r}")
    return report


def _discharge(index: int, before: LExpr, after: LExpr, ctx: Context,
               probe_depth: int, machine_steps: int) -> Obligation:
    try:
        compiled_before = compile_expr(before, ctx).code
        compiled_after = compile_expr(after, ctx).code
    except CompilationError as exc:
        # Preservation + Compilation say every trace expression compiles;
        # failing to is itself a validation counterexample.
        return Obligation(index, False,
                          f"trace expression failed to compile: {exc}",
                          _clip(before.pretty()), _clip(after.pretty()))
    verdict = joinable(compiled_before, compiled_after,
                       probe_depth=probe_depth, max_steps=machine_steps)
    if verdict.joinable:
        return Obligation(index, True, verdict.reason)
    return Obligation(index, False, f"not joinable: {verdict.reason}",
                      _clip(before.pretty()), _clip(after.pretty()))


def _final_agreement(term: LExpr, outcome, ctx: Context,
                     machine_steps: int):
    """Run ``C(e₀)`` to its final answer and compare with L's."""
    from ..lang_m.machine import run as run_machine
    from ..lang_m.syntax import MConLit, MLit
    from ..lang_l.syntax import Con, Lit

    try:
        code = compile_expr(term, ctx).code
        machine = run_machine(code, max_steps=machine_steps)
    except (CompilationError, MachineError) as exc:
        return False, f"machine run failed: {exc}"

    if outcome.is_bottom:
        if machine.aborted:
            return True, "error"
        return False, machine.unwrap().pretty()
    if machine.aborted:
        return False, "error"

    value = outcome.unwrap()
    answer = machine.unwrap()
    if isinstance(answer, MLit):
        agrees = isinstance(value, Lit) and value.value == answer.value
        return agrees, answer.pretty()
    if isinstance(answer, MConLit):
        # Boxed integer: the L value is the `I#[n]` constructor form.
        if isinstance(value, Con) and isinstance(value.argument, Lit):
            return value.argument.value == answer.value, answer.pretty()
        return False, answer.pretty()
    # λ and anything else: no canonical comparison.
    return None, answer.pretty()
