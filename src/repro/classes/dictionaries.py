"""Dictionary-passing elaboration of type classes (Section 7.3).

The paper explains *why* a levity-polymorphic class is compilable by
appealing to how classes are implemented: a constraint ``Num a`` becomes an
ordinary **lifted record** of method implementations::

    data Num (a :: TYPE r) = MkNum { (+) :: a -> a -> a, abs :: a -> a }

so a "levity-polymorphic" method selector such as

``(+) :: forall (r :: Rep) (a :: TYPE r). Num a => a -> a -> a``

takes a *lifted* argument (the dictionary) and returns a *lifted* result
(the function ``a -> a -> a``), never binding a levity-polymorphic value.
The per-instance method implementations (``plusInt#``, ``absInt#``) are
fully monomorphic, and the dictionary ``$dNumInt#`` is an entirely
monomorphic record.

This module makes that elaboration concrete:

* :func:`dictionary_data_decl` — the record type for a class;
* :func:`dictionary_binding` — the ``$dC T`` dictionary value for an
  instance, as a surface expression (a saturated record construction);
* :func:`selector_arity` / :func:`method_reference_arity` — the arity
  analysis that explains why ``abs1 = abs`` (arity 1: just the dictionary)
  is accepted while its η-expansion ``abs2 x = abs x`` (arity 2: dictionary
  *and* a levity-polymorphic value) is rejected;
* :class:`Dictionary` — the runtime representation used by the cost-model
  evaluator: a boxed, lifted record mapping method names to closures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..core.kinds import REP_KIND, TYPE_LIFTED
from ..surface.ast import ConstructorDecl, DataDecl, EApp, EVar, Expr
from ..surface.types import Binder, FunTy, SType, TyVar
from .declarations import ClassInfo, InstanceInfo


def dictionary_constructor_name(class_name: str) -> str:
    """The record constructor name, e.g. ``MkNum``."""
    return f"Mk{class_name}"


def dictionary_data_decl(info: ClassInfo) -> DataDecl:
    """The dictionary record type of a class.

    For the generalised ``Num`` of Section 7.3 this is::

        data Num (a :: TYPE r) = MkNum (a -> a -> a) (a -> a)

    Note that the record itself is an ordinary lifted data type regardless of
    the representation of ``a`` — its fields are function types, and function
    types are always boxed and lifted (rule T_ARROW).
    """
    binders = tuple(Binder(name, REP_KIND) for name in info.rep_binders) + (
        Binder(info.class_var, info.class_var_kind),)
    fields = tuple(method.signature for method in info.methods)
    constructor = ConstructorDecl(dictionary_constructor_name(info.name),
                                  fields)
    return DataDecl(info.name, binders, (constructor,))


def dictionary_binding(info: ClassInfo,
                       instance: InstanceInfo) -> Tuple[str, Expr]:
    """The monomorphic dictionary value for an instance.

    Returns the pair ``("$dNumInt#", MkNum plusInt# absInt#)`` — "this
    snippet is indeed entirely monomorphic" (Section 7.3).
    """
    expr: Expr = EVar(dictionary_constructor_name(info.name))
    implementations = instance.methods()
    for method in info.methods:
        expr = EApp(expr, implementations[method.name])
    return instance.dictionary_name, expr


def selector_arity(info: ClassInfo, method_name: str) -> int:
    """The compiled arity of a bare method selector.

    A selector such as ``abs`` takes exactly one argument: the dictionary.
    Its result — whatever function the dictionary stores — is returned as a
    heap pointer.  This is the arity-1 reading of ``abs1 = abs``.
    """
    del method_name  # every selector takes only the dictionary
    return 1 if info.methods else 0


def method_reference_arity(info: ClassInfo, method_name: str,
                           eta_expanded_args: int) -> int:
    """The compiled arity of an η-expanded method reference.

    ``abs2 x = abs x`` has arity 2: the dictionary *and* the value ``x``.
    The extra argument is the levity-polymorphic one, which is why the
    Section 5.1 argument/binder restrictions reject ``abs2`` but not
    ``abs1``: "when compiling, η-equivalent definitions are not equivalent!"
    """
    return selector_arity(info, method_name) + eta_expanded_args


def eta_expansion_binds_levity_polymorphic_value(
        info: ClassInfo, method_name: str, eta_expanded_args: int) -> bool:
    """Does η-expanding a selector by ``n`` arguments bind a levity-polymorphic value?

    It does exactly when the class is levity-polymorphic (its class variable
    has a representation-variable kind) and at least one value argument is
    bound — the formal content of the ``abs1``/``abs2`` contrast.
    """
    method = info.method(method_name)
    if eta_expanded_args <= 0:
        return False
    if not info.is_levity_polymorphic():
        return False
    # Count how many of the first `eta_expanded_args` arguments of the
    # method's signature mention the class variable (and hence have a
    # levity-polymorphic kind once the class is generalised).
    current: SType = method.signature
    for _ in range(eta_expanded_args):
        if not isinstance(current, FunTy):
            break
        if info.class_var in current.argument.free_type_vars():
            return True
        current = current.result
    return False


@dataclass
class Dictionary:
    """A runtime dictionary: a boxed, lifted record of method closures.

    The cost-model runtime (:mod:`repro.runtime`) allocates these on its heap
    like any other boxed value; selecting a method is one field read — which
    is precisely why passing a dictionary never runs afoul of the levity
    restrictions even when the class variable is instantiated at ``Int#``.
    """

    class_name: str
    instance_head: str
    methods: Dict[str, object] = field(default_factory=dict)

    def select(self, method_name: str) -> object:
        try:
            return self.methods[method_name]
        except KeyError:
            raise KeyError(
                f"dictionary {self.class_name} {self.instance_head} has no "
                f"method {method_name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        methods = ", ".join(sorted(self.methods))
        return f"<${self.class_name}{self.instance_head} {{{methods}}}>"
