"""Built-in levity-polymorphic classes and instances (Section 7.3).

This module constructs, programmatically, the declarations the paper uses:

* the **generalised** ``Num`` class, ``class Num (a :: TYPE r)``, with
  ``(+)``, ``(-)``, ``(*)``, ``negate`` and ``abs``;
* the generalised ``Eq`` class (``(==)`` returning ``Bool``) — another of
  the 34 generalisable classes of Section 8.1;
* the classic, lifted-only versions of both (``a :: Type``), used as the
  baseline for comparisons;
* instances ``Num Int#``, ``Num Double#``, ``Num Int`` (the boxed one defined
  exactly as in Section 2.1 via pattern matching on ``I#``), and matching
  ``Eq`` instances;
* the ``abs1``/``abs2`` pair of Section 7.3.

Everything is ordinary surface syntax, so the same declarations flow through
inference, the levity checks, dictionary elaboration and the cost-model
runtime.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.kinds import REP_KIND, TYPE_LIFTED, TypeKind
from ..core.rep import RepVar
from ..infer.schemes import Scheme, TypeEnv
from ..surface.ast import (
    Alternative,
    ClassDecl,
    ECase,
    EApp,
    ELam,
    EVar,
    Expr,
    FunBind,
    InstanceDecl,
    Module,
    TypeSig,
    apply,
    lams,
)
from ..surface.types import (
    BOOL_TY,
    Binder,
    ClassConstraint,
    DOUBLE_HASH_TY,
    ForAllTy,
    FunTy,
    INT_HASH_TY,
    INT_TY,
    SType,
    TyVar,
    fun,
    rep_var_kind,
)
from .declarations import ClassEnv, ClassInfo


def _class_var(levity_polymorphic: bool) -> Tuple[Tuple[Binder, ...], Binder, SType]:
    """The class-variable binder for the generalised or classic form."""
    if levity_polymorphic:
        kind = rep_var_kind("r")
        return (Binder("r", REP_KIND),), Binder("a", kind), TyVar("a", kind)
    return (), Binder("a", TYPE_LIFTED), TyVar("a")


def make_num_class(levity_polymorphic: bool = True) -> ClassDecl:
    """``class Num (a :: TYPE r)`` (or the classic ``a :: Type`` version)."""
    rep_binders, class_binder, a = _class_var(levity_polymorphic)
    return ClassDecl(
        name="Num",
        class_var="a",
        class_var_binder=class_binder,
        class_var_kind_binders=rep_binders,
        methods=(
            ("+", fun(a, a, a)),
            ("-", fun(a, a, a)),
            ("*", fun(a, a, a)),
            ("negate", fun(a, a)),
            ("abs", fun(a, a)),
        ))


def make_eq_class(levity_polymorphic: bool = True) -> ClassDecl:
    """``class Eq (a :: TYPE r)`` with ``(==)`` and ``(/=)``."""
    rep_binders, class_binder, a = _class_var(levity_polymorphic)
    return ClassDecl(
        name="Eq",
        class_var="a",
        class_var_binder=class_binder,
        class_var_kind_binders=rep_binders,
        methods=(
            ("==", fun(a, a, BOOL_TY)),
            ("/=", fun(a, a, BOOL_TY)),
        ))


# ---------------------------------------------------------------------------
# Instances
# ---------------------------------------------------------------------------


def _int_hash_bool(primop: str) -> Expr:
    """Wrap an ``Int#``-returning comparison primop into a Bool result."""
    return lams(["x", "y"],
                ECase(apply(EVar(primop), EVar("x"), EVar("y")),
                      [Alternative("1#", [], EVar("True")),
                       Alternative("_", [], EVar("False"))]))


def num_int_hash_instance() -> InstanceDecl:
    """``instance Num Int#`` — the Section 7.3 example, method by method."""
    return InstanceDecl(
        "Num", INT_HASH_TY,
        methods=(
            ("+", EVar("+#")),
            ("-", EVar("-#")),
            ("*", EVar("*#")),
            ("negate", EVar("negateInt#")),
            # abs n | n <# 0# = negateInt# n | otherwise = n
            ("abs", ELam("n",
                         ECase(apply(EVar("<#"), EVar("n"), ELitIntHash0()),
                               [Alternative("1#", [],
                                            EApp(EVar("negateInt#"),
                                                 EVar("n"))),
                                Alternative("_", [], EVar("n"))]))),
        ))


def num_double_hash_instance() -> InstanceDecl:
    """``instance Num Double#`` over the ``Double#`` primops."""
    return InstanceDecl(
        "Num", DOUBLE_HASH_TY,
        methods=(
            ("+", EVar("+##")),
            ("-", EVar("-##")),
            ("*", EVar("*##")),
            ("negate", EVar("negateDouble#")),
            ("abs", ELam("d",
                         ECase(apply(EVar("<##"), EVar("d"),
                                     ELitDoubleHash0()),
                               [Alternative("1#", [],
                                            EApp(EVar("negateDouble#"),
                                                 EVar("d"))),
                                Alternative("_", [], EVar("d"))]))),
        ))


def num_int_instance() -> InstanceDecl:
    """``instance Num Int`` via unboxing, exactly as ``plusInt`` in §2.1."""

    def boxed_binop(primop: str) -> Expr:
        return lams(["x", "y"],
                    ECase(EVar("x"),
                          [Alternative("I#", ["i1"],
                                       ECase(EVar("y"),
                                             [Alternative(
                                                 "I#", ["i2"],
                                                 EApp(EVar("I#"),
                                                      apply(EVar(primop),
                                                            EVar("i1"),
                                                            EVar("i2"))))]))]))

    def boxed_unop(primop: str) -> Expr:
        return ELam("x",
                    ECase(EVar("x"),
                          [Alternative("I#", ["i"],
                                       EApp(EVar("I#"),
                                            EApp(EVar(primop), EVar("i"))))]))

    abs_impl = ELam(
        "x",
        ECase(EVar("x"),
              [Alternative("I#", ["i"],
                           ECase(apply(EVar("<#"), EVar("i"), ELitIntHash0()),
                                 [Alternative("1#", [],
                                              EApp(EVar("I#"),
                                                   EApp(EVar("negateInt#"),
                                                        EVar("i")))),
                                  Alternative("_", [], EVar("x"))]))]))

    return InstanceDecl(
        "Num", INT_TY,
        methods=(
            ("+", boxed_binop("+#")),
            ("-", boxed_binop("-#")),
            ("*", boxed_binop("*#")),
            ("negate", boxed_unop("negateInt#")),
            ("abs", abs_impl),
        ))


def eq_int_hash_instance() -> InstanceDecl:
    return InstanceDecl(
        "Eq", INT_HASH_TY,
        methods=(("==", _int_hash_bool("==#")),
                 ("/=", _int_hash_bool("/=#"))))


def eq_int_instance() -> InstanceDecl:
    def boxed_cmp(primop: str) -> Expr:
        return lams(["x", "y"],
                    ECase(EVar("x"),
                          [Alternative("I#", ["i1"],
                                       ECase(EVar("y"),
                                             [Alternative(
                                                 "I#", ["i2"],
                                                 ECase(apply(EVar(primop),
                                                             EVar("i1"),
                                                             EVar("i2")),
                                                       [Alternative(
                                                           "1#", [],
                                                           EVar("True")),
                                                        Alternative(
                                                            "_", [],
                                                            EVar("False"))]))]))]))

    return InstanceDecl(
        "Eq", INT_TY,
        methods=(("==", boxed_cmp("==#")), ("/=", boxed_cmp("/=#"))))


# Small helpers so the instance builders above read like the paper.

def ELitIntHash0() -> Expr:
    from ..surface.ast import ELitIntHash
    return ELitIntHash(0)


def ELitDoubleHash0() -> Expr:
    from ..surface.ast import ELitDoubleHash
    return ELitDoubleHash(0.0)


# ---------------------------------------------------------------------------
# abs1 / abs2 (Section 7.3)
# ---------------------------------------------------------------------------

def _abs_signature() -> SType:
    """``forall (r :: Rep) (a :: TYPE r). Num a => a -> a``."""
    from ..surface.types import QualTy

    a = TyVar("a", rep_var_kind("r"))
    return ForAllTy(
        (Binder("r", REP_KIND), Binder("a", rep_var_kind("r"))),
        QualTy((ClassConstraint("Num", a),), fun(a, a)))


#: ``abs1, abs2 :: forall (r :: Rep) (a :: TYPE r). Num a => a -> a``
ABS_SIGNATURE: SType = _abs_signature()

#: ``abs1 = abs`` — accepted (no levity-polymorphic binder).
ABS1_BINDING = FunBind("abs1", (), EVar("abs"))
#: ``abs2 x = abs x`` — rejected (binds the levity-polymorphic ``x``).
ABS2_BINDING = FunBind("abs2", ("x",), EApp(EVar("abs"), EVar("x")))


# ---------------------------------------------------------------------------
# Assembled environments
# ---------------------------------------------------------------------------


def standard_class_env(levity_polymorphic: bool = True,
                       inferencer=None,
                       env: TypeEnv = None) -> ClassEnv:
    """A class environment with Num/Eq registered and their instances.

    With ``levity_polymorphic=False`` only the lifted instances are legal —
    registering ``Num Int#`` then raises, which is the pre-levity-polymorphism
    world the paper is escaping (see the E8 bench and the classes tests).
    """
    class_env = ClassEnv()
    class_env.register_class(make_num_class(levity_polymorphic))
    class_env.register_class(make_eq_class(levity_polymorphic))
    class_env.register_instance(num_int_instance(), inferencer, env)
    class_env.register_instance(eq_int_instance(), inferencer, env)
    if levity_polymorphic:
        class_env.register_instance(num_int_hash_instance(), inferencer, env)
        class_env.register_instance(num_double_hash_instance(), inferencer,
                                    env)
        class_env.register_instance(eq_int_hash_instance(), inferencer, env)
    return class_env


def class_prelude_module(levity_polymorphic: bool = True) -> Module:
    """A surface module declaring the classes, instances and abs1/abs2."""
    decls = [
        make_num_class(levity_polymorphic),
        make_eq_class(levity_polymorphic),
        num_int_instance(),
        eq_int_instance(),
    ]
    if levity_polymorphic:
        decls.extend([num_int_hash_instance(), num_double_hash_instance(),
                      eq_int_hash_instance()])
    decls.extend([TypeSig("abs1", ABS_SIGNATURE), ABS1_BINDING])
    return Module("ClassPrelude", decls)
