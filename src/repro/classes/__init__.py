"""Levity-polymorphic type classes compiled via dictionaries (Section 7.3)."""

from .builtin import (
    ABS1_BINDING,
    ABS2_BINDING,
    ABS_SIGNATURE,
    class_prelude_module,
    eq_int_hash_instance,
    eq_int_instance,
    make_eq_class,
    make_num_class,
    num_double_hash_instance,
    num_int_hash_instance,
    num_int_instance,
    standard_class_env,
)
from .declarations import ClassEnv, ClassInfo, InstanceInfo, MethodInfo
from .dictionaries import (
    Dictionary,
    dictionary_binding,
    dictionary_constructor_name,
    dictionary_data_decl,
    eta_expansion_binds_levity_polymorphic_value,
    method_reference_arity,
    selector_arity,
)

__all__ = [name for name in dir() if not name.startswith("_")]
