"""Type classes, instances and the class environment (Section 7.3).

The paper's headline application of levity polymorphism is the generalised
``Num`` class::

    class Num (a :: TYPE r) where
      (+) :: a -> a -> a
      abs :: a -> a

whose methods get levity-polymorphic *selector* types such as::

    (+) :: forall (r :: Rep) (a :: TYPE r). Num a => a -> a -> a

This module implements the class system around that idea:

* :class:`ClassInfo` — a registered class: its representation binders, its
  class variable (with kind), its method signatures and superclasses;
* :class:`InstanceInfo` — a registered instance: the head type, the compiled
  method implementations and the name of the dictionary it builds;
* :class:`ClassEnv` — the environment the inference engine talks to.  It
  produces the levity-polymorphic selector schemes, type-checks instance
  method implementations (which are always fully monomorphic — exactly why
  the scheme's levity polymorphism is harmless), resolves constraints, and
  records dictionaries for the runtime.

The dictionary story itself (the lifted record, its selectors, and why
``abs1``/``abs2`` differ in arity) lives in
:mod:`repro.classes.dictionaries`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import InstanceResolutionError, TypeCheckError
from ..core.kinds import Kind, REP_KIND, TYPE_LIFTED, TypeKind
from ..core.rep import Rep, RepVar
from ..infer.schemes import Scheme, TypeEnv
from ..surface.ast import ClassDecl, Expr, InstanceDecl
from ..surface.types import (
    ClassConstraint,
    FunTy,
    SType,
    TyApp,
    TyCon,
    TyUVar,
    TyVar,
    kind_of_type,
)


@dataclass(frozen=True)
class MethodInfo:
    """One method of a class: its name and its signature.

    The signature is written with the class variable free (as in the source
    declaration); :meth:`ClassInfo.selector_scheme` closes over it.
    """

    name: str
    signature: SType


@dataclass(frozen=True)
class ClassInfo:
    """A registered type class."""

    name: str
    rep_binders: Tuple[str, ...]            # e.g. ("r",) for the generalised Num
    class_var: str                           # e.g. "a"
    class_var_kind: Kind                     # TYPE r  or  Type
    methods: Tuple[MethodInfo, ...]
    superclasses: Tuple[ClassConstraint, ...] = ()

    def is_levity_polymorphic(self) -> bool:
        """Can this class be instantiated at unlifted/unboxed types?"""
        return bool(self.rep_binders) or not (
            isinstance(self.class_var_kind, TypeKind)
            and self.class_var_kind.is_lifted_type_kind())

    def method(self, name: str) -> MethodInfo:
        for method in self.methods:
            if method.name == name:
                return method
        raise KeyError(f"class {self.name} has no method {name!r}")

    def method_names(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self.methods)

    def selector_scheme(self, method: MethodInfo) -> Scheme:
        """The levity-polymorphic selector type of a method.

        For the generalised ``Num`` this is
        ``forall (r :: Rep) (a :: TYPE r). Num a => a -> a -> a`` — the type
        the paper displays in Section 7.3.  Crucially the selector's own
        *argument* is the dictionary (a lifted record) and its result is a
        function type (also lifted), so the selector respects the Section 5.1
        restrictions even though its type is levity-polymorphic.
        """
        constraint = ClassConstraint(
            self.name, TyVar(self.class_var, self.class_var_kind))
        return Scheme(self.rep_binders,
                      ((self.class_var, self.class_var_kind),),
                      (constraint,),
                      method.signature)

    def dictionary_field_types(self, instance_type: SType
                               ) -> Dict[str, SType]:
        """The (monomorphic) field types of the dictionary for one instance."""
        substitution = {self.class_var: instance_type}
        rep_substitution: Dict[str, Rep] = {}
        instance_kind = kind_of_type(instance_type)
        if self.rep_binders and isinstance(instance_kind, TypeKind):
            rep_substitution = {self.rep_binders[0]: instance_kind.rep}
        return {
            method.name: method.signature
            .subst_reps(rep_substitution)
            .subst_types(substitution)
            for method in self.methods}


@dataclass(frozen=True)
class InstanceInfo:
    """A registered instance together with its compiled dictionary."""

    class_name: str
    head: SType                              # e.g. Int#  or  Maybe a (head tycon applied)
    method_implementations: Tuple[Tuple[str, Expr], ...]
    dictionary_name: str                     # e.g. "$dNumInt#"

    def head_constructor(self) -> str:
        return _head_tycon_name(self.head)

    def methods(self) -> Dict[str, Expr]:
        return dict(self.method_implementations)


def _head_tycon_name(type_: SType) -> str:
    current = type_
    while isinstance(current, TyApp):
        current = current.function
    if isinstance(current, TyCon):
        return current.name
    if isinstance(current, FunTy):
        return "->"
    raise TypeCheckError(
        f"instance head {type_.pretty()} does not start with a type "
        "constructor")


class ClassEnv:
    """The class environment used by inference, elaboration and the runtime."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        self.instances: Dict[Tuple[str, str], InstanceInfo] = {}

    # -- registration ---------------------------------------------------------

    def register_class_info(self, info: ClassInfo) -> None:
        if info.name in self.classes:
            raise TypeCheckError(f"duplicate class declaration {info.name!r}")
        self.classes[info.name] = info

    def register_class(self, decl: ClassDecl) -> ClassInfo:
        """Register a class from a surface declaration."""
        rep_binders = tuple(b.name for b in decl.class_var_kind_binders
                            if b.kind == REP_KIND)
        info = ClassInfo(
            name=decl.name,
            rep_binders=rep_binders,
            class_var=decl.class_var,
            class_var_kind=decl.class_var_binder.kind,
            methods=tuple(MethodInfo(name, sig) for name, sig in decl.methods),
            superclasses=decl.superclasses)
        self.register_class_info(info)
        return info

    def register_instance(self, decl: InstanceDecl, inferencer=None,
                          env: Optional[TypeEnv] = None) -> InstanceInfo:
        """Register (and optionally type-check) an instance declaration.

        When an inference engine and environment are supplied, every method
        implementation is checked against the method signature instantiated
        at the instance head — producing exactly the "fully monomorphic"
        top-level functions the paper describes (``plusInt#``, ``absInt#``).
        """
        info = self.class_info(decl.class_name)
        provided = dict(decl.methods)
        missing = [m for m in info.method_names() if m not in provided]
        if missing:
            raise TypeCheckError(
                f"instance {decl.class_name} {decl.instance_type.pretty()} "
                f"is missing methods: {', '.join(missing)}")
        unexpected = [m for m in provided if m not in info.method_names()]
        if unexpected:
            raise TypeCheckError(
                f"instance {decl.class_name} {decl.instance_type.pretty()} "
                f"defines unknown methods: {', '.join(unexpected)}")

        # Kind check: the instance head must fit the class variable's kind.
        # For a classic class (a :: Type) this is what forbids `Num Int#` —
        # the restriction levity polymorphism lifts (Section 7.3).
        instance_kind = kind_of_type(decl.instance_type)
        if not isinstance(instance_kind, TypeKind):
            raise TypeCheckError(
                f"instance head {decl.instance_type.pretty()} has non-value "
                f"kind {instance_kind.pretty()}")
        if not info.rep_binders:
            if instance_kind != info.class_var_kind:
                raise TypeCheckError(
                    f"cannot make {decl.instance_type.pretty()} (kind "
                    f"{instance_kind.pretty()}) an instance of "
                    f"{info.name}: its class variable has kind "
                    f"{info.class_var_kind.pretty()}; generalise the class "
                    "with levity polymorphism to allow unlifted instances")

        if inferencer is not None and env is not None:
            field_types = info.dictionary_field_types(decl.instance_type)
            for method_name, implementation in decl.methods:
                expected = field_types[method_name]
                inferencer.check(env, implementation, expected)

        head_name = _head_tycon_name(decl.instance_type)
        dictionary_name = f"$d{decl.class_name}{head_name}"
        instance = InstanceInfo(decl.class_name, decl.instance_type,
                                tuple(decl.methods), dictionary_name)
        key = (decl.class_name, head_name)
        if key in self.instances:
            raise TypeCheckError(
                f"duplicate instance {decl.class_name} {head_name}")
        self.instances[key] = instance
        return instance

    # -- queries ------------------------------------------------------------------

    def class_info(self, name: str) -> ClassInfo:
        try:
            return self.classes[name]
        except KeyError:
            raise TypeCheckError(f"unknown class {name!r}") from None

    def method_schemes(self, decl_or_info) -> Dict[str, Scheme]:
        """Selector schemes for every method of a class (for the type env)."""
        if isinstance(decl_or_info, ClassInfo):
            info = decl_or_info
        else:
            info = self.class_info(decl_or_info.name)
        return {method.name: info.selector_scheme(method)
                for method in info.methods}

    def all_method_schemes(self) -> Dict[str, Scheme]:
        out: Dict[str, Scheme] = {}
        for info in self.classes.values():
            out.update(self.method_schemes(info))
        return out

    def lookup_instance(self, class_name: str,
                        type_: SType) -> Optional[InstanceInfo]:
        try:
            head = _head_tycon_name(type_)
        except TypeCheckError:
            return None
        return self.instances.get((class_name, head))

    def resolve(self, constraint: ClassConstraint, state=None) -> bool:
        """Can ``constraint`` be discharged by a registered instance?

        Constraints whose argument is still an unsolved unification variable
        or a rigid type variable cannot be resolved here (they stay as
        residual/given constraints), mirroring GHC's behaviour.
        """
        argument = constraint.argument
        if state is not None:
            argument = state.zonk_type(argument)
        if isinstance(argument, (TyUVar, TyVar)):
            return False
        return self.lookup_instance(constraint.class_name, argument) is not None

    def method_implementation(self, class_name: str, method: str,
                              type_: SType) -> Expr:
        """Look up the implementation of a method at a concrete type."""
        instance = self.lookup_instance(class_name, type_)
        if instance is None:
            raise InstanceResolutionError(
                f"no instance for {class_name} {type_.pretty()}")
        try:
            return instance.methods()[method]
        except KeyError:
            raise InstanceResolutionError(
                f"instance {class_name} {type_.pretty()} has no method "
                f"{method!r}") from None
