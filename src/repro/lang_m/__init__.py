"""The machine language **M**: ANF with an explicit stack and heap (Section 6.2).

Modules:

* :mod:`repro.lang_m.syntax` — the grammar of Figure 5 (two variable sorts,
  ANF applications, lazy ``let`` and strict ``let!``);
* :mod:`repro.lang_m.machine` — machine states ⟨t; S; H⟩ and the transition
  rules of Figure 6, with cost counters;
* :mod:`repro.lang_m.joinability` — an executable approximation of the
  joinability relation used by the Simulation theorem.
"""

from .joinability import JoinReport, alpha_equivalent, joinable
from .machine import (
    AppLitFrame,
    AppVarFrame,
    CaseFrame,
    ForceFrame,
    Frame,
    LetFrame,
    Machine,
    MachineCosts,
    MachineResult,
    MachineState,
    run,
)
from .syntax import (
    M_ERROR,
    MAppLit,
    MAppVar,
    MCase,
    MConLit,
    MConVar,
    MError,
    MExpr,
    MLam,
    MLet,
    MLetStrict,
    MLit,
    MVar,
    MVarRef,
    VarSort,
    fresh_integer_var,
    fresh_pointer_var,
    is_answer,
)

__all__ = [name for name in dir() if not name.startswith("_")]
