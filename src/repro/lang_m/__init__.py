"""The machine language **M**: ANF with an explicit stack and heap (Section 6.2).

Modules:

* :mod:`repro.lang_m.syntax` — the grammar of Figure 5 (two variable sorts,
  ANF applications, lazy ``let`` and strict ``let!``);
* :mod:`repro.lang_m.machine` — machine states ⟨t; S; H⟩ and the transition
  rules of Figure 6, with cost counters;
* :mod:`repro.lang_m.joinability` — an executable approximation of the
  joinability relation used by the Simulation theorem.
"""

from .joinability import JoinReport, alpha_equivalent, joinable
from .machine import (
    AppLitFrame,
    AppVarFrame,
    CaseFrame,
    CaseLitFrame,
    ForceFrame,
    Frame,
    LetFrame,
    Machine,
    MachineCosts,
    MachineResult,
    MachineState,
    PrimFrame,
    run,
)
from .syntax import (
    M_ERROR,
    MAppLit,
    MAppVar,
    MCase,
    MCaseLit,
    MConLit,
    MConVar,
    MError,
    MExpr,
    MFix,
    MLam,
    MLet,
    MLetStrict,
    MLit,
    MPrimOp,
    MVar,
    MVarRef,
    VarSort,
    fresh_integer_var,
    fresh_pointer_var,
    is_answer,
)

__all__ = [name for name in dir() if not name.startswith("_")]
