"""The M abstract machine: states ⟨t; S; H⟩ and transitions (Figure 6).

A machine state is a triple of the expression under evaluation, a stack of
continuation frames, and a heap mapping pointer variables to (possibly
unevaluated) expressions.  The transition rules split into two groups:

* when the expression is **not** a value, the rule is chosen by the shape of
  the expression (PAPP, IAPP, VAL, EVAL, LET, SLET, CASE, ERR, and — for
  the whole-language extension — FIX, PRIM/PRIMARG, CASELIT);
* when the expression **is** a value, the rule is chosen by the top stack
  frame (PPOP, IPOP, FCE, ILET, IMAT, PRIMPOP, LMAT).

Rule EVAL pops the heap binding while the thunk is being forced and rule FCE
writes the computed value back — this is exactly GHC's thunk update
("blackholing" plus update frames), and is what makes lazy evaluation share
work.  The machine optionally counts work (allocations, thunk forces, stack
pushes) so the cost-model experiments can compare boxed and unboxed code on
the very semantics the paper formalises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.errors import MachineError
from ..core.primops import primop_delta
from .syntax import (
    MAppLit,
    MAppVar,
    MCase,
    MCaseLit,
    MConLit,
    MConVar,
    MError,
    MExpr,
    MFix,
    MLam,
    MLet,
    MLetStrict,
    MLit,
    MPrimOp,
    MVar,
    MVarRef,
)

# ---------------------------------------------------------------------------
# Stack frames S ::= ∅ | Force(p),S | App(p),S | App(n),S | Let(y,t),S | Case(y,t),S
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Frame:
    """Abstract base class of stack frames."""


@dataclass(frozen=True)
class ForceFrame(Frame):
    """``Force(p)`` — update pointer ``p`` with the value being computed."""

    pointer: MVar


@dataclass(frozen=True)
class AppVarFrame(Frame):
    """``App(p)`` — a pending application to the pointer variable ``p``."""

    pointer: MVar


@dataclass(frozen=True)
class AppLitFrame(Frame):
    """``App(n)`` — a pending application to the integer literal ``n``."""

    value: int


@dataclass(frozen=True)
class LetFrame(Frame):
    """``Let(y, t)`` — continue with ``t`` once the strict RHS is a value."""

    var: MVar
    body: MExpr


@dataclass(frozen=True)
class CaseFrame(Frame):
    """``Case(y, t)`` — continue with ``t`` once the scrutinee is ``I#[n]``."""

    var: MVar
    body: MExpr


@dataclass(frozen=True)
class PrimFrame(Frame):
    """``Prim(op, n̄; t̄)`` — a primop waiting for its next operand.

    ``done`` holds the literals already computed (left to right) and
    ``pending`` the operand expressions still to evaluate.
    """

    name: str
    done: Tuple[int, ...]
    pending: Tuple[MExpr, ...]


@dataclass(frozen=True)
class CaseLitFrame(Frame):
    """``CaseLit(alts, d)`` — select a branch once the scrutinee is ``n``."""

    alternatives: Tuple[Tuple[int, MExpr], ...]
    default: MExpr


Stack = Tuple[Frame, ...]
Heap = Dict[MVar, MExpr]


# ---------------------------------------------------------------------------
# Machine states and outcomes
# ---------------------------------------------------------------------------


@dataclass
class MachineCosts:
    """Operation counters recorded while the machine runs.

    These counters are the basis of the E1/E4 benchmarks: a boxed program
    performs many heap allocations and thunk forces where the unboxed
    version performs none.
    """

    steps: int = 0
    heap_allocations: int = 0
    thunk_forces: int = 0
    thunk_updates: int = 0
    heap_lookups: int = 0
    stack_pushes: int = 0
    stack_pops: int = 0
    substitutions: int = 0
    primops: int = 0
    fix_unrollings: int = 0
    branches: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "steps": self.steps,
            "heap_allocations": self.heap_allocations,
            "thunk_forces": self.thunk_forces,
            "thunk_updates": self.thunk_updates,
            "heap_lookups": self.heap_lookups,
            "stack_pushes": self.stack_pushes,
            "stack_pops": self.stack_pops,
            "substitutions": self.substitutions,
            "primops": self.primops,
            "fix_unrollings": self.fix_unrollings,
            "branches": self.branches,
        }


@dataclass(frozen=True)
class MachineState:
    """A machine state µ = ⟨t; S; H⟩."""

    expr: MExpr
    stack: Stack = ()
    heap: Tuple[Tuple[MVar, MExpr], ...] = ()

    def heap_dict(self) -> Heap:
        return dict(self.heap)

    def pretty(self) -> str:
        stack = ", ".join(type(f).__name__ for f in self.stack) or "∅"
        heap = ", ".join(f"{v.name}↦{e.pretty()}" for v, e in self.heap) or "∅"
        return f"⟨{self.expr.pretty()} ; {stack} ; {heap}⟩"

    def __repr__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class MachineResult:
    """Outcome of running the machine to completion."""

    value: Optional[MExpr]          # final value w, or None if the machine aborted
    aborted: bool                   # True when ERR fired (the ⊥ outcome)
    heap: Tuple[Tuple[MVar, MExpr], ...]
    costs: MachineCosts

    @property
    def is_bottom(self) -> bool:
        return self.aborted

    def unwrap(self) -> MExpr:
        if self.value is None:
            raise MachineError("the machine aborted via error")
        return self.value


class Machine:
    """A mutable M machine implementing the Figure 6 transition rules."""

    def __init__(self, expr: MExpr,
                 heap: Optional[Dict[MVar, MExpr]] = None,
                 stack: Optional[List[Frame]] = None) -> None:
        self.expr: MExpr = expr
        self.stack: List[Frame] = list(stack or [])
        self.heap: Dict[MVar, MExpr] = dict(heap or {})
        self.costs = MachineCosts()
        self.aborted = False

    # -- state inspection ----------------------------------------------------

    def state(self) -> MachineState:
        return MachineState(self.expr, tuple(self.stack),
                            tuple(self.heap.items()))

    def is_final(self) -> bool:
        """Final states: aborted, or a value with an empty stack."""
        return self.aborted or (self.expr.is_value() and not self.stack)

    # -- the transition function ----------------------------------------------

    def step(self) -> bool:
        """Perform one transition.  Returns False when already final.

        Raises :class:`MachineError` when no rule applies (a stuck machine),
        which for compiled well-typed programs never happens.
        """
        if self.is_final():
            return False
        self.costs.steps += 1
        expr = self.expr

        if not expr.is_value():
            self._step_expression(expr)
        else:
            self._step_value(expr)
        return True

    def _step_expression(self, expr: MExpr) -> None:
        if isinstance(expr, MAppVar):  # PAPP
            self.stack.insert(0, AppVarFrame(expr.argument))
            self.costs.stack_pushes += 1
            self.expr = expr.function
            return
        if isinstance(expr, MAppLit):  # IAPP
            self.stack.insert(0, AppLitFrame(expr.argument))
            self.costs.stack_pushes += 1
            self.expr = expr.function
            return
        if isinstance(expr, MVarRef):
            binding = self.heap.get(expr.var)
            if binding is None:
                raise MachineError(
                    f"pointer variable {expr.var.name!r} is not in the heap")
            self.costs.heap_lookups += 1
            if binding.is_value():  # VAL
                self.expr = binding
                return
            # EVAL: blackhole the binding and push an update frame.
            del self.heap[expr.var]
            self.stack.insert(0, ForceFrame(expr.var))
            self.costs.stack_pushes += 1
            self.costs.thunk_forces += 1
            self.expr = binding
            return
        if isinstance(expr, MLet):  # LET
            self.heap[expr.var] = expr.rhs
            self.costs.heap_allocations += 1
            self.expr = expr.body
            return
        if isinstance(expr, MLetStrict):  # SLET
            self.stack.insert(0, LetFrame(expr.var, expr.body))
            self.costs.stack_pushes += 1
            self.expr = expr.rhs
            return
        if isinstance(expr, MCase):  # CASE
            self.stack.insert(0, CaseFrame(expr.binder, expr.body))
            self.costs.stack_pushes += 1
            self.expr = expr.scrutinee
            return
        if isinstance(expr, MFix):  # FIX
            # Tie the knot through the heap: allocate the fix term itself
            # as a thunk under its binder and continue with the body, so
            # recursive occurrences force it like any other pointer.
            self.heap[expr.var] = expr
            self.costs.heap_allocations += 1
            self.costs.fix_unrollings += 1
            self.expr = expr.body
            return
        if isinstance(expr, MPrimOp):  # PRIM / PRIMARG
            done: List[int] = []
            rest = expr.arguments
            while rest and isinstance(rest[0], MLit):
                done.append(rest[0].value)
                rest = rest[1:]
            if rest:
                self.stack.insert(0, PrimFrame(expr.name, tuple(done),
                                               tuple(rest[1:])))
                self.costs.stack_pushes += 1
                self.expr = rest[0]
                return
            self._apply_primop(expr.name, done)
            return
        if isinstance(expr, MCaseLit):  # CASELIT
            self.stack.insert(0, CaseLitFrame(expr.alternatives,
                                              expr.default))
            self.costs.stack_pushes += 1
            self.expr = expr.scrutinee
            return
        if isinstance(expr, MError):  # ERR
            self.aborted = True
            return
        if isinstance(expr, MConVar):
            # I#[i] with i unsubstituted can only mean a free variable; the
            # compiler never produces it for closed programs.
            raise MachineError(
                f"I#[{expr.var.name}] has an unbound field variable")
        raise MachineError(f"no rule applies to expression {expr.pretty()}")

    def _step_value(self, value: MExpr) -> None:
        if not self.stack:
            raise MachineError("value with empty stack should be final")
        frame = self.stack.pop(0)
        self.costs.stack_pops += 1

        if isinstance(frame, AppVarFrame):  # PPOP
            if not isinstance(value, MLam):
                raise MachineError(
                    f"applied a non-function value {value.pretty()}")
            if not value.var.is_pointer():
                raise MachineError(
                    f"pointer argument {frame.pointer.name} passed to a "
                    f"lambda expecting an integer register")
            self.costs.substitutions += 1
            self.expr = value.body.substitute_var(value.var, frame.pointer)
            return
        if isinstance(frame, AppLitFrame):  # IPOP
            if not isinstance(value, MLam):
                raise MachineError(
                    f"applied a non-function value {value.pretty()}")
            if not value.var.is_integer():
                raise MachineError(
                    f"integer literal {frame.value} passed to a lambda "
                    "expecting a pointer register")
            self.costs.substitutions += 1
            self.expr = value.body.substitute_literal(value.var, frame.value)
            return
        if isinstance(frame, ForceFrame):  # FCE
            self.heap[frame.pointer] = value
            self.costs.thunk_updates += 1
            self.expr = value
            return
        if isinstance(frame, LetFrame):  # ILET
            if isinstance(value, MLit) and frame.var.is_integer():
                self.costs.substitutions += 1
                self.expr = frame.body.substitute_literal(frame.var,
                                                          value.value)
                return
            raise MachineError(
                f"strict let expected an integer value for "
                f"{frame.var.name!r}, got {value.pretty()}")
        if isinstance(frame, CaseFrame):  # IMAT
            if isinstance(value, MConLit):
                self.costs.substitutions += 1
                self.expr = frame.body.substitute_literal(frame.var,
                                                          value.value)
                return
            raise MachineError(
                f"case expected I#[n], got {value.pretty()}")
        if isinstance(frame, PrimFrame):  # PRIMPOP
            if not isinstance(value, MLit):
                raise MachineError(
                    f"primop {frame.name!r} expected an integer operand, "
                    f"got {value.pretty()}")
            done = frame.done + (value.value,)
            pending = frame.pending
            while pending and isinstance(pending[0], MLit):
                done += (pending[0].value,)
                pending = pending[1:]
            if pending:
                self.stack.insert(0, PrimFrame(frame.name, done,
                                               pending[1:]))
                self.costs.stack_pushes += 1
                self.expr = pending[0]
                return
            self._apply_primop(frame.name, list(done))
            return
        if isinstance(frame, CaseLitFrame):  # LMAT
            if not isinstance(value, MLit):
                raise MachineError(
                    f"literal case expected an integer scrutinee, got "
                    f"{value.pretty()}")
            self.costs.branches += 1
            for literal, branch in frame.alternatives:
                if literal == value.value:
                    self.expr = branch
                    return
            self.expr = frame.default
            return
        raise MachineError(f"unknown stack frame {frame!r}")

    def _apply_primop(self, name: str, operands: List[int]) -> None:
        """The delta rule (PRIM); division by zero aborts like ERR."""
        try:
            result = primop_delta(name, operands)
        except (KeyError, ValueError) as exc:
            raise MachineError(f"ill-formed primop application: {exc}")
        self.costs.primops += 1
        if result is None:  # PRIMBOT: quot/rem by zero is ⊥
            self.aborted = True
            return
        self.expr = MLit(result)

    # -- drivers ---------------------------------------------------------------

    def run(self, max_steps: int = 1_000_000) -> MachineResult:
        """Run until a final state (or raise after ``max_steps`` steps)."""
        for _ in range(max_steps):
            if not self.step():
                break
        else:
            raise MachineError(
                f"machine did not halt within {max_steps} steps")
        value = None if self.aborted else self.expr
        return MachineResult(value, self.aborted, tuple(self.heap.items()),
                             self.costs)

    def trace(self, max_steps: int = 10_000) -> List[MachineState]:
        """Run and collect every intermediate state (for debugging/tests)."""
        states = [self.state()]
        for _ in range(max_steps):
            if not self.step():
                break
            states.append(self.state())
        return states


def run(expr: MExpr, max_steps: int = 1_000_000,
        heap: Optional[Dict[MVar, MExpr]] = None) -> MachineResult:
    """Run ``expr`` on a fresh machine with an empty stack."""
    return Machine(expr, heap=heap).run(max_steps=max_steps)
