"""An executable approximation of the paper's joinability relation (§6.3).

Two M-expressions ``t1`` and ``t2`` are *joinable* (written ``t1 ⇔ t2``) when
they have a common reduct for any stack and heap.  The paper uses joinability
to state the Simulation theorem, because compiling an L redex and its reduct
may differ by administrative ``let`` bindings that need a few extra machine
steps before the common behaviour is visible.

A fully general decision procedure does not exist (the relation quantifies
over all stacks and heaps and the expressions may contain λs), so this module
implements a sound *testing* approximation, which is what the metatheory
harness needs:

* run both expressions on fresh machines (empty stack, given heap);
* if both abort, they are joinable;
* if both reach integer or boxed-integer values, compare the numbers;
* if both reach λ-values, *probe* them: apply each to the same argument
  (a literal for integer binders, a heap-allocated boxed value for pointer
  binders) and recurse, up to a configurable probe depth.

When the probe depth is exhausted the values are compared up to
α-equivalence as a last resort.  A ``False`` answer therefore really means
"observably different"; a ``True`` answer means "indistinguishable by the
probes we ran" — exactly the right polarity for property-based testing of
the Simulation theorem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.errors import MachineError
from .machine import Machine, MachineResult
from .syntax import (
    MAppLit,
    MAppVar,
    MCase,
    MCaseLit,
    MConLit,
    MConVar,
    MError,
    MExpr,
    MFix,
    MLam,
    MLet,
    MLetStrict,
    MLit,
    MPrimOp,
    MVar,
    MVarRef,
    fresh_pointer_var,
)

#: Literal used to probe integer-expecting λ values.
_PROBE_LITERAL = 17
#: Boxed value used to probe pointer-expecting λ values.
_PROBE_BOXED = MConLit(23)


@dataclass(frozen=True)
class JoinReport:
    """The outcome of a joinability check, with an explanation for failures."""

    joinable: bool
    reason: str = ""


def alpha_equivalent(t1: MExpr, t2: MExpr,
                     env: Optional[Dict[MVar, MVar]] = None) -> bool:
    """Structural equality of M expressions up to renaming of bound variables."""
    env = env or {}
    if isinstance(t1, MVarRef) and isinstance(t2, MVarRef):
        return env.get(t1.var, t1.var) == t2.var
    if isinstance(t1, MLit) and isinstance(t2, MLit):
        return t1.value == t2.value
    if isinstance(t1, MConLit) and isinstance(t2, MConLit):
        return t1.value == t2.value
    if isinstance(t1, MConVar) and isinstance(t2, MConVar):
        return env.get(t1.var, t1.var) == t2.var
    if isinstance(t1, MError) and isinstance(t2, MError):
        return True
    if isinstance(t1, MLam) and isinstance(t2, MLam):
        if t1.var.sort != t2.var.sort:
            return False
        inner = dict(env)
        inner[t1.var] = t2.var
        return alpha_equivalent(t1.body, t2.body, inner)
    if isinstance(t1, MAppVar) and isinstance(t2, MAppVar):
        return (env.get(t1.argument, t1.argument) == t2.argument
                and alpha_equivalent(t1.function, t2.function, env))
    if isinstance(t1, MAppLit) and isinstance(t2, MAppLit):
        return (t1.argument == t2.argument
                and alpha_equivalent(t1.function, t2.function, env))
    if isinstance(t1, MLet) and isinstance(t2, MLet):
        if not alpha_equivalent(t1.rhs, t2.rhs, env):
            return False
        inner = dict(env)
        inner[t1.var] = t2.var
        return alpha_equivalent(t1.body, t2.body, inner)
    if isinstance(t1, MLetStrict) and isinstance(t2, MLetStrict):
        if t1.var.sort != t2.var.sort:
            return False
        if not alpha_equivalent(t1.rhs, t2.rhs, env):
            return False
        inner = dict(env)
        inner[t1.var] = t2.var
        return alpha_equivalent(t1.body, t2.body, inner)
    if isinstance(t1, MCase) and isinstance(t2, MCase):
        if not alpha_equivalent(t1.scrutinee, t2.scrutinee, env):
            return False
        inner = dict(env)
        inner[t1.binder] = t2.binder
        return alpha_equivalent(t1.body, t2.body, inner)
    if isinstance(t1, MFix) and isinstance(t2, MFix):
        inner = dict(env)
        inner[t1.var] = t2.var
        return alpha_equivalent(t1.body, t2.body, inner)
    if isinstance(t1, MPrimOp) and isinstance(t2, MPrimOp):
        return (t1.name == t2.name
                and len(t1.arguments) == len(t2.arguments)
                and all(alpha_equivalent(a1, a2, env)
                        for a1, a2 in zip(t1.arguments, t2.arguments)))
    if isinstance(t1, MCaseLit) and isinstance(t2, MCaseLit):
        if not alpha_equivalent(t1.scrutinee, t2.scrutinee, env):
            return False
        if len(t1.alternatives) != len(t2.alternatives):
            return False
        for (lit1, branch1), (lit2, branch2) in zip(t1.alternatives,
                                                    t2.alternatives):
            if lit1 != lit2 or not alpha_equivalent(branch1, branch2, env):
                return False
        return alpha_equivalent(t1.default, t2.default, env)
    return False


def _run(expr: MExpr, heap: Optional[Dict[MVar, MExpr]],
         max_steps: int) -> Optional[MachineResult]:
    try:
        return Machine(expr, heap=heap).run(max_steps=max_steps)
    except MachineError:
        return None


def joinable(t1: MExpr, t2: MExpr,
             heap1: Optional[Dict[MVar, MExpr]] = None,
             heap2: Optional[Dict[MVar, MExpr]] = None,
             probe_depth: int = 3,
             max_steps: int = 100_000) -> JoinReport:
    """Test whether ``t1 ⇔ t2`` by running both and probing the results."""
    result1 = _run(t1, heap1, max_steps)
    result2 = _run(t2, heap2, max_steps)

    if result1 is None or result2 is None:
        if result1 is None and result2 is None:
            return JoinReport(True, "both machines got stuck identically")
        return JoinReport(False, "one machine got stuck and the other did not")

    if result1.aborted or result2.aborted:
        if result1.aborted and result2.aborted:
            return JoinReport(True, "both aborted via error")
        return JoinReport(False, "only one side aborted via error")

    return _values_joinable(result1.unwrap(), dict(result1.heap),
                            result2.unwrap(), dict(result2.heap),
                            probe_depth, max_steps)


def _values_joinable(v1: MExpr, heap1: Dict[MVar, MExpr],
                     v2: MExpr, heap2: Dict[MVar, MExpr],
                     probe_depth: int, max_steps: int) -> JoinReport:
    if isinstance(v1, MLit) and isinstance(v2, MLit):
        if v1.value == v2.value:
            return JoinReport(True, "equal integer results")
        return JoinReport(False, f"integers differ: {v1.value} vs {v2.value}")

    if isinstance(v1, MConLit) and isinstance(v2, MConLit):
        if v1.value == v2.value:
            return JoinReport(True, "equal boxed-integer results")
        return JoinReport(False,
                          f"boxed integers differ: {v1.value} vs {v2.value}")

    if isinstance(v1, MLam) and isinstance(v2, MLam):
        if v1.var.sort != v2.var.sort:
            return JoinReport(False, "λ binders expect different registers")
        if probe_depth <= 0:
            if alpha_equivalent(v1, v2):
                return JoinReport(True, "α-equivalent λ values")
            return JoinReport(
                True, "probe depth exhausted on λ values; assumed joinable")
        if v1.var.is_integer():
            probed1, new_heap1 = MAppLit(v1, _PROBE_LITERAL), heap1
            probed2, new_heap2 = MAppLit(v2, _PROBE_LITERAL), heap2
        else:
            pointer1 = fresh_pointer_var("probe")
            pointer2 = fresh_pointer_var("probe")
            new_heap1 = dict(heap1)
            new_heap1[pointer1] = _PROBE_BOXED
            new_heap2 = dict(heap2)
            new_heap2[pointer2] = _PROBE_BOXED
            probed1 = MAppVar(v1, pointer1)
            probed2 = MAppVar(v2, pointer2)
        return joinable(probed1, probed2, new_heap1, new_heap2,
                        probe_depth - 1, max_steps)

    return JoinReport(False,
                      f"result shapes differ: {v1.pretty()} vs {v2.pretty()}")
