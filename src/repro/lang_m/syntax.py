"""Abstract syntax of the machine language **M** (Figure 5 of the paper).

M is a λ-calculus in A-normal form: functions can be applied only to
*variables* or *integer literals*, so every intermediate computation must be
named by a ``let`` (lazy, heap-allocating) or a ``let!`` (strict,
stack-evaluating).  Variables come in two flavours, reflecting the two
machine register classes of L's concrete representations:

* ``p`` — pointer variables (heap pointers, garbage-collected registers);
* ``i`` — integer variables (unboxed machine integers).

Everything in M has a *known, fixed width*; M has no levity polymorphism, no
types, and no representation abstraction.  That is the point: Figure 7's
compilation erases all of L's type structure and the Section 5.1 restrictions
guarantee the erasure never needs to know an unknown width.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Union


class VarSort:
    """Marker constants for the two variable sorts of M."""

    POINTER = "pointer"
    INTEGER = "integer"


@dataclass(frozen=True)
class MVar:
    """An M variable ``y``, which is either a pointer ``p`` or an integer ``i``."""

    name: str
    sort: str  # VarSort.POINTER or VarSort.INTEGER

    def is_pointer(self) -> bool:
        return self.sort == VarSort.POINTER

    def is_integer(self) -> bool:
        return self.sort == VarSort.INTEGER

    def pretty(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"{self.name}:{'p' if self.is_pointer() else 'i'}"


_var_counter = itertools.count()


def fresh_pointer_var(prefix: str = "p") -> MVar:
    """A fresh pointer variable."""
    return MVar(f"{prefix}{next(_var_counter)}", VarSort.POINTER)


def fresh_integer_var(prefix: str = "i") -> MVar:
    """A fresh integer variable."""
    return MVar(f"{prefix}{next(_var_counter)}", VarSort.INTEGER)


class MExpr:
    """Abstract base class of M expressions ``t``."""

    def free_vars(self) -> FrozenSet[MVar]:
        raise NotImplementedError

    def substitute_var(self, var: MVar, replacement: MVar) -> "MExpr":
        """Substitute a variable for a variable (rule PPOP)."""
        raise NotImplementedError

    def substitute_literal(self, var: MVar, value: int) -> "MExpr":
        """Substitute an integer literal for an integer variable (IPOP/ILET/IMAT)."""
        raise NotImplementedError

    def is_value(self) -> bool:
        """Is this a value ``w ::= λy.t | I#[n] | n``?"""
        return False

    def pretty(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class MVarRef(MExpr):
    """A variable occurrence ``y``."""

    var: MVar

    def free_vars(self) -> FrozenSet[MVar]:
        return frozenset({self.var})

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        return MVarRef(replacement) if self.var == var else self

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        return MLit(value) if self.var == var else self

    def pretty(self) -> str:
        return self.var.name


@dataclass(frozen=True)
class MLit(MExpr):
    """An integer literal ``n`` — a value."""

    value: int

    def free_vars(self) -> FrozenSet[MVar]:
        return frozenset()

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        return self

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        return self

    def is_value(self) -> bool:
        return True

    def pretty(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class MLam(MExpr):
    """A λ-abstraction ``λy.t`` — a value.

    The binder carries its sort, so the machine knows whether the argument
    arrives in a pointer register (rule PPOP) or an integer register (IPOP).
    """

    var: MVar
    body: MExpr

    def free_vars(self) -> FrozenSet[MVar]:
        return self.body.free_vars() - {self.var}

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        if var == self.var:
            return self
        if replacement == self.var:
            fresh = (fresh_pointer_var(self.var.name + "_")
                     if self.var.is_pointer()
                     else fresh_integer_var(self.var.name + "_"))
            renamed = self.body.substitute_var(self.var, fresh)
            return MLam(fresh, renamed.substitute_var(var, replacement))
        return MLam(self.var, self.body.substitute_var(var, replacement))

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        if var == self.var:
            return self
        return MLam(self.var, self.body.substitute_literal(var, value))

    def is_value(self) -> bool:
        return True

    def pretty(self) -> str:
        return f"\\{self.var.name}. {self.body.pretty()}"


@dataclass(frozen=True)
class MAppVar(MExpr):
    """Application to a variable: ``t y`` (A-normal form)."""

    function: MExpr
    argument: MVar

    def free_vars(self) -> FrozenSet[MVar]:
        return self.function.free_vars() | {self.argument}

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        argument = replacement if self.argument == var else self.argument
        return MAppVar(self.function.substitute_var(var, replacement),
                       argument)

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        function = self.function.substitute_literal(var, value)
        if self.argument == var:
            return MAppLit(function, value)
        return MAppVar(function, self.argument)

    def pretty(self) -> str:
        fun = self.function.pretty()
        if isinstance(self.function, MLam):
            fun = f"({fun})"
        return f"{fun} {self.argument.name}"


@dataclass(frozen=True)
class MAppLit(MExpr):
    """Application to an integer literal: ``t n``."""

    function: MExpr
    argument: int

    def free_vars(self) -> FrozenSet[MVar]:
        return self.function.free_vars()

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        return MAppLit(self.function.substitute_var(var, replacement),
                       self.argument)

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        return MAppLit(self.function.substitute_literal(var, value),
                       self.argument)

    def pretty(self) -> str:
        fun = self.function.pretty()
        if isinstance(self.function, MLam):
            fun = f"({fun})"
        return f"{fun} {self.argument}"


@dataclass(frozen=True)
class MLet(MExpr):
    """Lazy let: ``let p = t1 in t2`` — allocates a thunk on the heap."""

    var: MVar
    rhs: MExpr
    body: MExpr

    def __post_init__(self) -> None:
        if not self.var.is_pointer():
            raise ValueError("lazy let binds pointer variables only")

    def free_vars(self) -> FrozenSet[MVar]:
        return self.rhs.free_vars() | (self.body.free_vars() - {self.var})

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        rhs = self.rhs.substitute_var(var, replacement)
        if var == self.var:
            return MLet(self.var, rhs, self.body)
        if replacement == self.var:
            fresh = fresh_pointer_var(self.var.name + "_")
            renamed = self.body.substitute_var(self.var, fresh)
            return MLet(fresh, rhs, renamed.substitute_var(var, replacement))
        return MLet(self.var, rhs,
                    self.body.substitute_var(var, replacement))

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        rhs = self.rhs.substitute_literal(var, value)
        if var == self.var:
            return MLet(self.var, rhs, self.body)
        return MLet(self.var, rhs,
                    self.body.substitute_literal(var, value))

    def pretty(self) -> str:
        return (f"let {self.var.name} = {self.rhs.pretty()} in "
                f"{self.body.pretty()}")


@dataclass(frozen=True)
class MLetStrict(MExpr):
    """Strict let: ``let! y = t1 in t2`` — evaluates ``t1`` on the stack."""

    var: MVar
    rhs: MExpr
    body: MExpr

    def free_vars(self) -> FrozenSet[MVar]:
        return self.rhs.free_vars() | (self.body.free_vars() - {self.var})

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        rhs = self.rhs.substitute_var(var, replacement)
        if var == self.var:
            return MLetStrict(self.var, rhs, self.body)
        if replacement == self.var:
            fresh = (fresh_pointer_var(self.var.name + "_")
                     if self.var.is_pointer()
                     else fresh_integer_var(self.var.name + "_"))
            renamed = self.body.substitute_var(self.var, fresh)
            return MLetStrict(fresh, rhs,
                              renamed.substitute_var(var, replacement))
        return MLetStrict(self.var, rhs,
                          self.body.substitute_var(var, replacement))

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        rhs = self.rhs.substitute_literal(var, value)
        if var == self.var:
            return MLetStrict(self.var, rhs, self.body)
        return MLetStrict(self.var, rhs,
                          self.body.substitute_literal(var, value))

    def pretty(self) -> str:
        return (f"let! {self.var.name} = {self.rhs.pretty()} in "
                f"{self.body.pretty()}")


@dataclass(frozen=True)
class MCase(MExpr):
    """``case t1 of I#[y] → t2`` — force and unpack a boxed integer."""

    scrutinee: MExpr
    binder: MVar
    body: MExpr

    def free_vars(self) -> FrozenSet[MVar]:
        return self.scrutinee.free_vars() | (self.body.free_vars()
                                             - {self.binder})

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        scrutinee = self.scrutinee.substitute_var(var, replacement)
        if var == self.binder:
            return MCase(scrutinee, self.binder, self.body)
        if replacement == self.binder:
            fresh = fresh_integer_var(self.binder.name + "_")
            renamed = self.body.substitute_var(self.binder, fresh)
            return MCase(scrutinee, fresh,
                         renamed.substitute_var(var, replacement))
        return MCase(scrutinee, self.binder,
                     self.body.substitute_var(var, replacement))

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        scrutinee = self.scrutinee.substitute_literal(var, value)
        if var == self.binder:
            return MCase(scrutinee, self.binder, self.body)
        return MCase(scrutinee, self.binder,
                     self.body.substitute_literal(var, value))

    def pretty(self) -> str:
        return (f"case {self.scrutinee.pretty()} of I#[{self.binder.name}] "
                f"-> {self.body.pretty()}")


@dataclass(frozen=True)
class MConVar(MExpr):
    """``I#[y]`` — a boxed integer whose field is still a variable."""

    var: MVar

    def free_vars(self) -> FrozenSet[MVar]:
        return frozenset({self.var})

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        return MConVar(replacement) if self.var == var else self

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        return MConLit(value) if self.var == var else self

    def pretty(self) -> str:
        return f"I#[{self.var.name}]"


@dataclass(frozen=True)
class MConLit(MExpr):
    """``I#[n]`` — a fully evaluated boxed integer: a value."""

    value: int

    def free_vars(self) -> FrozenSet[MVar]:
        return frozenset()

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        return self

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        return self

    def is_value(self) -> bool:
        return True

    def pretty(self) -> str:
        return f"I#[{self.value}]"


@dataclass(frozen=True)
class MFix(MExpr):
    """``fix p. t`` — recursion, compiled from L's ``fix x:τ. e``.

    The binder is always a *pointer* variable: the machine ties the knot
    by allocating the ``fix`` term itself as a heap thunk under ``p`` and
    continuing with the body (rule FIX), so recursive occurrences go
    through an ordinary heap lookup / EVAL force.
    """

    var: MVar
    body: MExpr

    def __post_init__(self) -> None:
        if not self.var.is_pointer():
            raise ValueError("fix binds pointer variables only")

    def free_vars(self) -> FrozenSet[MVar]:
        return self.body.free_vars() - {self.var}

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        if var == self.var:
            return self
        if replacement == self.var:
            fresh = fresh_pointer_var(self.var.name + "_")
            renamed = self.body.substitute_var(self.var, fresh)
            return MFix(fresh, renamed.substitute_var(var, replacement))
        return MFix(self.var, self.body.substitute_var(var, replacement))

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        if var == self.var:
            return self
        return MFix(self.var, self.body.substitute_literal(var, value))

    def pretty(self) -> str:
        return f"fix {self.var.name}. {self.body.pretty()}"


@dataclass(frozen=True)
class MPrimOp(MExpr):
    """``op#(a1, …, ak)`` — a saturated integer primop.

    Compiled code keeps the operands in A-normal form (literals or
    integer variables that strict lets substitute away), but the machine
    also evaluates arbitrary operand expressions via ``PrimFrame``, so
    hand-written M terms work too.
    """

    name: str
    arguments: "tuple[MExpr, ...]"

    def free_vars(self) -> FrozenSet[MVar]:
        free: FrozenSet[MVar] = frozenset()
        for argument in self.arguments:
            free |= argument.free_vars()
        return free

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        return MPrimOp(self.name,
                       tuple(a.substitute_var(var, replacement)
                             for a in self.arguments))

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        return MPrimOp(self.name,
                       tuple(a.substitute_literal(var, value)
                             for a in self.arguments))

    def pretty(self) -> str:
        args = ", ".join(a.pretty() for a in self.arguments)
        return f"{self.name}({args})"


@dataclass(frozen=True)
class MCaseLit(MExpr):
    """``case t of { n1 → t1; …; _ → d }`` — branch on an integer literal."""

    scrutinee: MExpr
    alternatives: "tuple[tuple[int, MExpr], ...]"
    default: MExpr

    def free_vars(self) -> FrozenSet[MVar]:
        free = self.scrutinee.free_vars() | self.default.free_vars()
        for _, branch in self.alternatives:
            free |= branch.free_vars()
        return free

    def _map(self, fn) -> "MCaseLit":
        return MCaseLit(fn(self.scrutinee),
                        tuple((lit, fn(branch))
                              for lit, branch in self.alternatives),
                        fn(self.default))

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        return self._map(lambda e: e.substitute_var(var, replacement))

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        return self._map(lambda e: e.substitute_literal(var, value))

    def pretty(self) -> str:
        alts = "; ".join(f"{lit} -> {branch.pretty()}"
                         for lit, branch in self.alternatives)
        if alts:
            alts += "; "
        return (f"case {self.scrutinee.pretty()} of {{ {alts}"
                f"_ -> {self.default.pretty()} }}")


@dataclass(frozen=True)
class MError(MExpr):
    """The ``error`` constant — aborts the machine (rule ERR)."""

    def free_vars(self) -> FrozenSet[MVar]:
        return frozenset()

    def substitute_var(self, var: MVar, replacement: MVar) -> MExpr:
        return self

    def substitute_literal(self, var: MVar, value: int) -> MExpr:
        return self

    def pretty(self) -> str:
        return "error"


M_ERROR = MError()


def is_answer(expr: MExpr) -> bool:
    """Is ``expr`` one of the value forms ``w``?"""
    return expr.is_value()
