"""repro — a reproduction of *Levity Polymorphism* (Eisenberg & Peyton Jones, PLDI 2017).

The package is organised around the paper's structure:

* :mod:`repro.core` — runtime representations (``Rep``), kinds
  (``TYPE r``), and the levity-polymorphism restrictions (Sections 4-5);
* :mod:`repro.lang_l` — the formal source calculus **L** (Figures 2-4);
* :mod:`repro.lang_m` — the machine-level ANF calculus **M** (Figures 5-6);
* :mod:`repro.compile` — the type-directed compilation L -> M (Figure 7);
* :mod:`repro.metatheory` — executable checks of the paper's theorems
  (Preservation, Progress, Compilation, Simulation — Section 6);
* :mod:`repro.surface` — a Haskell-like surface language with unboxed types,
  unboxed tuples and levity-polymorphic signatures;
* :mod:`repro.infer` — type/kind/representation inference with the
  "never infer levity polymorphism" defaulting of Section 5.2;
* :mod:`repro.classes` — levity-polymorphic type classes compiled via
  dictionaries (Section 7.3);
* :mod:`repro.subkind` — the old GHC ``OpenKind`` sub-kinding story
  (Section 3.2), kept as the baseline comparator;
* :mod:`repro.runtime` — a cost-model abstract machine that substitutes for
  native-code measurements (Section 2.1);
* :mod:`repro.corpus` — the Section 8.1 survey of GHC's ``base``/``ghc-prim``
  classes and functions;
* :mod:`repro.pretty` — pretty-printing with ``LiftedRep`` defaulting
  (Section 8.1);
* :mod:`repro.frontend` — lexer + parser for the textual ``.lev`` surface
  syntax, elaborating into :mod:`repro.surface` with source spans;
* :mod:`repro.driver` — the end-to-end pipeline (parse → infer →
  levity-check → default → compile/run) behind ``python -m repro``.
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "lang_l",
    "lang_m",
    "compile",
    "metatheory",
    "surface",
    "infer",
    "classes",
    "subkind",
    "runtime",
    "corpus",
    "pretty",
    "frontend",
    "driver",
]
