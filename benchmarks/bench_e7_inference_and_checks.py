"""E7 (Sections 5.1-5.2, 7.2, 8.1): inference, defaulting, the levity checks
and pretty-printing.

Paper claims reproduced:
* ``f x = x`` without a signature infers ``forall (a :: Type). a -> a`` —
  levity polymorphism is never inferred, the rep variable is defaulted;
* the ablation (generalising rep variables instead) yields exactly the
  un-compilable ``forall (r :: Rep) (a :: TYPE r). a -> a``, which the
  Section 5.1 checks then reject;
* declared levity polymorphism is checked: ``myError`` accepted, the
  levity-polymorphic ``f``/``bTwice`` rejected;
* ``($)`` and ``(.)`` get their generalised types and work with unboxed
  results; GHCi-style printing defaults the rep variables away.
"""

import pytest

from benchreport import emit, record_counter, time_op
from repro.core.errors import LevityError
from repro.core.kinds import REP_KIND, TYPE_LIFTED
from repro.infer import InferOptions, infer_binding
from repro.pretty import PrinterOptions, render_scheme
from repro.surface.ast import Alternative, ECase, EVar, apply, ELitInt
from repro.surface.prelude import COMPOSE_SCHEME, DOLLAR_SCHEME, prelude_env
from repro.surface.types import (
    Binder,
    ForAllTy,
    INT_HASH_TY,
    INT_TY,
    TyVar,
    fun,
    rep_var_kind,
)

ENV = prelude_env()
LEVITY_ID_SIG = ForAllTy(
    (Binder("r", REP_KIND), Binder("a", rep_var_kind("r"))),
    fun(TyVar("a", rep_var_kind("r")), TyVar("a", rep_var_kind("r"))))


def _accepted(callable_):
    try:
        callable_()
        return "accepted"
    except LevityError:
        return "rejected (levity)"


def test_report_inference_and_checks():
    inferred = infer_binding("f", ["x"], EVar("x"), env=ENV)
    ablation = infer_binding(
        "f", [], EVar("error"), env=ENV,
        options=InferOptions(generalise_reps=True, run_levity_check=False))
    rows = [
        ("f x = x (no signature)", "forall (a :: Type). a -> a",
         inferred.scheme.pretty()),
        ("rep variables defaulted", "yes (never infer levity poly)",
         "yes" if inferred.defaulted_rep_vars else "no"),
        ("ablation: generalise reps instead", "un-compilable scheme",
         ablation.scheme.pretty()),
        ("f with declared levity-poly signature", "rejected",
         _accepted(lambda: infer_binding("f", ["x"], EVar("x"),
                                         signature=LEVITY_ID_SIG, env=ENV))),
        ("($) display (default)", "(a -> b) -> a -> b",
         render_scheme(DOLLAR_SCHEME)),
        ("($) display (-fprint-explicit-runtime-reps)",
         "forall r a (b :: TYPE r). ...",
         render_scheme(DOLLAR_SCHEME,
                       PrinterOptions(print_explicit_runtime_reps=True))),
        ("(.) generalised result kind", "TYPE r",
         dict(COMPOSE_SCHEME.type_binders)["c"].pretty()),
    ]
    emit("E7: inference, defaulting, levity checks, display", rows)
    assert not inferred.scheme.is_levity_polymorphic()
    assert ablation.scheme.is_levity_polymorphic()


def test_report_dollar_with_unboxed_result():
    unbox = ECase(EVar("b"), [Alternative("I#", ["x"], EVar("x"))])
    unbox_scheme = infer_binding("unboxInt", ["b"], unbox,
                                 signature=fun(INT_TY, INT_HASH_TY),
                                 env=ENV).scheme
    env = ENV.bind("unboxInt", unbox_scheme)
    from repro.infer import infer_expr
    result_type = infer_expr(apply(EVar("$"), EVar("unboxInt"), ELitInt(42)),
                             env=env)
    emit("E7: ($) at an unboxed result type (Section 7.2)", [
        ("unboxInt $ 42", "Int# (accepted)", result_type.pretty()),
    ])
    assert result_type == INT_HASH_TY


def test_perf_record_inference():
    """Wall-clock record of the E7 inference workloads for BENCH_perf.json."""
    from repro.infer import Inferencer
    from repro.surface.ast import ELitIntHash

    def unsigned(rounds=100):
        for _ in range(rounds):
            infer_binding("f", ["x", "y"], EVar("x"), env=ENV)

    sig = fun(INT_HASH_TY, INT_HASH_TY, INT_HASH_TY)
    rhs = ECase(apply(EVar("==#"), EVar("n"), ELitIntHash(0)),
                [Alternative("1#", [], EVar("acc")),
                 Alternative("_", [],
                             apply(EVar("sumTo#"),
                                   apply(EVar("+#"), EVar("acc"), EVar("n")),
                                   apply(EVar("-#"), EVar("n"),
                                         ELitIntHash(1))))])

    def signature_checked(rounds=100):
        for _ in range(rounds):
            infer_binding("sumTo#", ["acc", "n"], rhs, signature=sig, env=ENV)

    time_op("e7.unsigned_inference.current", unsigned, 100,
            meta={"rounds": 100})
    time_op("e7.signature_checked.current", signature_checked, 100,
            meta={"rounds": 100})

    # Solver op counters for one representative signature-checked binding.
    inferencer = Inferencer()
    inferencer.infer_binding(ENV, "sumTo#", ["acc", "n"], rhs, signature=sig)
    record_counter("e7.signature_checked.solver_ops",
                   inferencer.state.stats.as_dict())


@pytest.mark.benchmark(group="e7-inference")
def test_bench_unsigned_inference(benchmark):
    def run():
        return infer_binding("f", ["x", "y"], EVar("x"), env=ENV).scheme
    scheme = benchmark(run)
    assert all(kind == TYPE_LIFTED for _, kind in scheme.type_binders)


@pytest.mark.benchmark(group="e7-inference")
def test_bench_signature_checked_binding(benchmark):
    sig = fun(INT_HASH_TY, INT_HASH_TY, INT_HASH_TY)
    from repro.surface.ast import ELitIntHash
    rhs = ECase(apply(EVar("==#"), EVar("n"), ELitIntHash(0)),
                [Alternative("1#", [], EVar("acc")),
                 Alternative("_", [],
                             apply(EVar("sumTo#"),
                                   apply(EVar("+#"), EVar("acc"), EVar("n")),
                                   apply(EVar("-#"), EVar("n"),
                                         ELitIntHash(1))))])

    def run():
        return infer_binding("sumTo#", ["acc", "n"], rhs, signature=sig,
                             env=ENV).ok
    assert benchmark(run)
