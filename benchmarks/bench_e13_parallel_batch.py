"""E13: sharded parallel batch checking + incremental cache throughput.

The scaling story on top of E12: the same generated corpus is pushed
through :meth:`repro.driver.Session.check_many` with

* ``e13.jobs1`` / ``e13.jobs2`` / ``e13.jobs4`` — the corpus checked at 1,
  2 and 4 requested workers through **one shared session** (the worker
  pool is owned by the session and reused across calls; the serial-cutoff
  heuristics may keep small batches or 1-CPU hosts in-process — that is
  the point: ``--jobs`` must never be a pessimisation);
* ``e13.cache_cold`` / ``e13.cache_warm`` — the incremental cache
  (``cache=PATH``, keyed by SHA-256 of each source text): a cold run that
  checks and stores everything, then a warm re-run over the unchanged
  corpus that must be answered entirely from the cache.

``programs_per_sec`` counters, the jobs-N speedup ratios, and the
session's ``pool_stats`` land in ``BENCH_perf.json`` under ``e13.*``.
Correctness (ordering, ok-ness, cache hit counts, byte-identical warm
results, pool reuse under ``REPRO_PARALLEL=always``) is asserted always.

Wall-clock gates are two-sided now that the pool persists: ``--jobs 2``
must be **no slower than 0.9x serial on any machine** (on a 1-CPU
container the cutoff keeps it literally serial), and must deliver real
speedup (>= 1.5x) where the hardware has >= 4 CPUs.  Everything is
skipped under ``BENCH_REPORT_ONLY`` like every other wall-clock gate.
"""

import os
import tempfile

import pytest

from benchreport import emit, record_counter, report_only, time_op
from bench_e12_frontend_pipeline import make_corpus
from repro.driver import Session
from repro.driver.batch import (
    PARALLEL_MODE_ENV,
    ResultCache,
    payload_bytes,
    result_to_payload,
)

CORPUS_SIZE = 150

#: Two-sided --jobs 2 gates: never a pessimisation anywhere, a real
#: speedup where the hardware can deliver one.
JOBS2_NO_SLOWER_FLOOR = 0.9
JOBS2_SPEEDUP_FLOOR = 1.5
JOBS4_SPEEDUP_FLOOR = 2.0
MIN_CPUS_FOR_SPEEDUP_GATE = 4

#: A warm-cache re-run must cost less than this fraction of the cold run.
WARM_CACHE_FRACTION = 0.10


def _check_jobs(session, corpus, jobs):
    results = session.check_many(corpus, jobs=jobs)
    assert [result.filename for result in results] == \
        [filename for filename, _ in corpus], "input order lost"
    bad = [result.filename for result in results if not result.ok]
    assert not bad, f"corpus programs failed to check: {bad[:3]}"
    return results


def test_report_parallel_batch_throughput(tmp_path):
    corpus = make_corpus(CORPUS_SIZE)

    session = Session()
    timings = {}
    for jobs in (1, 2, 4):
        results = time_op(f"e13.jobs{jobs}", _check_jobs, session, corpus,
                          jobs, repeats=2, meta={"programs": CORPUS_SIZE,
                                                 "jobs": jobs})
        assert all(len(result.bindings) == 6 for result in results)

    import benchreport
    for jobs in (1, 2, 4):
        seconds = benchreport._TIMINGS[f"e13.jobs{jobs}"]["seconds"]
        timings[jobs] = seconds
        record_counter(f"e13.jobs{jobs}.programs_per_sec",
                       round(CORPUS_SIZE / seconds, 1))
    speedup2 = timings[1] / timings[2]
    speedup4 = timings[1] / timings[4]
    record_counter("e13.speedup.jobs2_vs_jobs1", round(speedup2, 2))
    record_counter("e13.speedup.jobs4_vs_jobs1", round(speedup4, 2))
    record_counter("e13.cpu_count", os.cpu_count() or 1)
    for key, value in session.pool_stats.items():
        record_counter(f"e13.pool.{key}", value)
    session.close()

    # -- pool reuse, proven by counters (forced past the serial cutoff) -----
    previous = os.environ.get(PARALLEL_MODE_ENV)
    os.environ[PARALLEL_MODE_ENV] = "always"
    try:
        forced = Session()
        serial_results = Session().check_many(corpus)
        first = _check_jobs(forced, corpus, 2)
        second = _check_jobs(forced, corpus[: CORPUS_SIZE // 2], 2)
        assert forced.pool_stats["pools_created"] == 1, forced.pool_stats
        assert forced.pool_stats["pools_reused"] >= 1, forced.pool_stats
        assert forced.pool_stats["parallel_batches"] == 2, forced.pool_stats
        assert [payload_bytes(result_to_payload(r)) for r in first] == \
            [payload_bytes(result_to_payload(r)) for r in serial_results], \
            "pooled results must be byte-identical to serial results"
        assert len(second) == CORPUS_SIZE // 2
        forced.close()
        assert forced._pool is None
    finally:
        if previous is None:
            del os.environ[PARALLEL_MODE_ENV]
        else:
            os.environ[PARALLEL_MODE_ENV] = previous

    # -- incremental cache: cold run, then a warm re-run ---------------------
    cache_path = str(tmp_path / "e13-cache.json")
    cold = time_op("e13.cache_cold",
                   lambda: Session().check_many(corpus, cache=cache_path),
                   repeats=1, meta={"programs": CORPUS_SIZE})
    warm_cache = ResultCache(cache_path)
    warm = time_op("e13.cache_warm",
                   lambda: Session().check_many(corpus, cache=warm_cache),
                   repeats=1, meta={"programs": CORPUS_SIZE})
    # The cache is hierarchical since schema v2: an unchanged file is
    # answered whole from its file-level entry (never re-parsed), so a
    # fully warm run hits once per file and never touches the unit layer.
    assert warm_cache.file_hits == CORPUS_SIZE \
        and warm_cache.misses == 0, \
        "warm run was not answered entirely from the cache"
    assert [payload_bytes(result_to_payload(r)) for r in cold] == \
        [payload_bytes(result_to_payload(r)) for r in warm], \
        "cache hits must be byte-identical to the results they cached"
    # Store-level shape of the warm run (schema v4): answered from the
    # file-entry shards alone, and a no-op save writes nothing back.
    assert warm_cache.shards_written == 0
    record_counter("e13.store.warm_shards_read", warm_cache.shards_read)
    record_counter("e13.store.warm_shards_written",
                   warm_cache.shards_written)

    cold_seconds = benchreport._TIMINGS["e13.cache_cold"]["seconds"]
    warm_seconds = benchreport._TIMINGS["e13.cache_warm"]["seconds"]
    warm_fraction = warm_seconds / cold_seconds
    record_counter("e13.cache.warm_fraction_of_cold", round(warm_fraction, 4))

    rows = [
        (f"jobs=1 ({CORPUS_SIZE} programs)", "baseline",
         f"{timings[1] * 1000:.1f}ms "
         f"({CORPUS_SIZE / timings[1]:.0f} programs/s)"),
        ("jobs=2", f"{speedup2:.2f}x vs jobs=1",
         f"{timings[2] * 1000:.1f}ms"),
        ("jobs=4", f"{speedup4:.2f}x vs jobs=1",
         f"{timings[4] * 1000:.1f}ms"),
        ("cache cold", "checks + stores all",
         f"{cold_seconds * 1000:.1f}ms"),
        ("cache warm", f"{warm_fraction:.1%} of cold",
         f"{warm_seconds * 1000:.1f}ms"),
    ]
    emit("E13: sharded parallel batch checking + incremental cache", rows)

    if report_only():
        pytest.skip("BENCH_REPORT_ONLY set: timings recorded, gate skipped")
    assert warm_fraction < WARM_CACHE_FRACTION, (
        f"warm-cache re-run took {warm_fraction:.1%} of the cold run "
        f"(floor: {WARM_CACHE_FRACTION:.0%})")
    assert speedup2 >= JOBS2_NO_SLOWER_FLOOR, (
        f"--jobs 2 ran at {speedup2:.2f}x of serial; the serial cutoff "
        f"must keep it above {JOBS2_NO_SLOWER_FLOOR}x on any machine")
    cpus = os.cpu_count() or 1
    if cpus >= MIN_CPUS_FOR_SPEEDUP_GATE:
        assert speedup2 >= JOBS2_SPEEDUP_FLOOR, (
            f"--jobs 2 speedup {speedup2:.2f}x fell below "
            f"{JOBS2_SPEEDUP_FLOOR}x on a {cpus}-CPU machine")
        assert speedup4 >= JOBS4_SPEEDUP_FLOOR, (
            f"--jobs 4 speedup {speedup4:.2f}x fell below "
            f"{JOBS4_SPEEDUP_FLOOR}x on a {cpus}-CPU machine")


def test_cache_invalidation_is_per_binding():
    """Adding one binding to one program re-checks exactly that binding:
    the edited file drops to the unit layer where its pre-existing units
    all hit, and every other file short-circuits on its file entry."""
    corpus = make_corpus(8)
    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "cache.json")
        cold = Session().check_many(corpus, cache=path)
        edited = list(corpus)
        filename, source = edited[5]
        edited[5] = (filename, source + "\nextra :: Int\nextra = 1 + 1\n")
        cache = ResultCache(path)
        results = Session().check_many(edited, cache=cache)
        assert cache.file_hits == len(corpus) - 1
        assert cache.hits == len(cold[5].bindings) and cache.misses == 1
        assert any(b.name == "extra" for b in results[5].bindings)
